//! Rules allocation — Algorithm 2 of the paper (Section 4.2.2).
//!
//! Rules are organized into **groupings** of quadtree layers. Rules whose
//! layers share a grouping are partitioned together (at the grouping's
//! highest layer, Section 4.2.1), so an incoming tuple is transmitted to
//! **one engine per grouping**: fewer groupings mean fewer
//! re-transmissions, but cramming every rule into one grouping makes each
//! engine run every rule, inflating its latency (Function 2). Algorithm 2
//! navigates that trade-off: give each grouping one engine, then hand the
//! remaining engines one by one to the grouping whose score grows the
//! most.
//!
//! **Score interpretation.** Equation 1 gives the time to process a
//! rule's input on an engine, `time = inputRate × latency`; Equation 2
//! weights rules by operator-assigned importance. We score a grouping
//! with `k` engines as the weighted fraction of its input rate its
//! engines can sustain: partition the grouping's regions over `k` engines
//! (Algorithm 1), cap every engine at `1/latency` tuples per unit time,
//! and sum. This keeps Equation 1's quantities and Algorithm 2's greedy
//! structure while making "maximize the score" well-defined.

// `!(x > 0.0)` is used deliberately in validations: unlike `x <= 0.0`
// it also rejects NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

use crate::error::CoreError;
use crate::latency::EstimationModel;
use crate::partitioning::{partition_rule, RegionRate};
use crate::rules::RuleSpec;
use serde::{Deserialize, Serialize};

/// One grouping: a set of quadtree layers, the rules monitoring them, and
/// the region rates at the grouping's partition layer.
#[derive(Debug, Clone, PartialEq)]
pub struct Grouping {
    /// Display name (e.g. `layers 0-2` or `bus stops`).
    pub name: String,
    /// The layers merged into this grouping.
    pub layers: Vec<u8>,
    /// Rules of this grouping.
    pub rules: Vec<RuleSpec>,
    /// Regions of the partition layer (the grouping's *highest possible
    /// layer*, Section 4.2.2) with their input rates.
    pub regions: Vec<RegionRate>,
    /// Thresholds each rule joins with (Function 1's `t`), parallel to
    /// `rules`.
    pub thresholds: Vec<usize>,
}

impl Grouping {
    /// Total input rate of the grouping (every grouping sees the whole
    /// stream — each tuple belongs to one region of each layer).
    pub fn total_rate(&self) -> f64 {
        self.regions.iter().map(|r| r.rate).sum()
    }

    /// Sum of rule weights.
    pub fn total_weight(&self) -> f64 {
        self.rules.iter().map(|r| r.weight).sum()
    }

    /// Engine latency (ms/tuple) for an engine running all of this
    /// grouping's rules — the Function 2 fold.
    pub fn engine_latency(&self, model: &EstimationModel) -> Result<f64, CoreError> {
        let lats = self
            .rules
            .iter()
            .zip(&self.thresholds)
            .map(|(r, &t)| model.rule_latency(r.load(t)))
            .collect::<Result<Vec<_>, _>>()?;
        model.engine_latency(&lats)
    }

    /// Input rate (tuples/s) the grouping's `k` engines can sustain:
    /// Algorithm 1 partitions the regions, every engine is capped at
    /// `1/latency`, and the sustained rates add up.
    pub fn sustained(&self, model: &EstimationModel, k: usize) -> Result<f64, CoreError> {
        if k == 0 {
            return Ok(0.0);
        }
        if self.rules.is_empty() {
            return Err(CoreError::Config {
                reason: format!("grouping {} has no rules", self.name),
            });
        }
        let latency_ms = self.engine_latency(model)?;
        let capacity = if latency_ms > 0.0 { 1000.0 / latency_ms } else { f64::INFINITY };
        let partition = partition_rule(&self.regions, k)?;
        Ok(partition.rates.iter().map(|&r| r.min(capacity)).sum())
    }

    /// Score with `k` engines: weighted sustained fraction of the input.
    pub fn score(&self, model: &EstimationModel, k: usize) -> Result<f64, CoreError> {
        let total: f64 = self.total_rate();
        if total <= 0.0 {
            return Ok(0.0);
        }
        Ok(self.total_weight() * self.sustained(model, k)? / total)
    }
}

/// The allocation computed by Algorithm 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Engines per grouping, parallel to the input groupings.
    pub engines: Vec<usize>,
    /// Final score per grouping.
    pub scores: Vec<f64>,
}

impl Allocation {
    /// Sum of per-grouping scores.
    pub fn total_score(&self) -> f64 {
        self.scores.iter().sum()
    }

    /// `(grouping, engine-within-grouping)` → global engine index ranges:
    /// grouping `g`'s engines start at `offsets[g]`.
    pub fn offsets(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.engines.len());
        let mut acc = 0;
        for &e in &self.engines {
            out.push(acc);
            acc += e;
        }
        out
    }
}

/// Algorithm 2: allocates `n_engines` to the groupings greedily.
///
/// Every tuple visits **one engine of every grouping**, so the system's
/// end-to-end rate is the *slowest grouping's* sustained rate. The greedy
/// step therefore hands each extra engine to the grouping whose upgrade
/// yields the largest system improvement — in practice, the current
/// bottleneck (this is the consistent reading of the paper's "grouping
/// that leads to the greater score increase": a non-bottleneck grouping's
/// upgrade does not move Equation 2's min-time term at all).
pub fn allocate(
    model: &EstimationModel,
    groupings: &[Grouping],
    n_engines: usize,
) -> Result<Allocation, CoreError> {
    if groupings.is_empty() {
        return Err(CoreError::Config { reason: "no groupings to allocate".into() });
    }
    if n_engines < groupings.len() {
        return Err(CoreError::Config {
            reason: format!(
                "{} engines cannot cover {} groupings",
                n_engines,
                groupings.len()
            ),
        });
    }
    // Each grouping starts with one engine. The bottleneck measure is
    // the *fraction of its own offered stream* a grouping sustains — a
    // grouping already keeping up with its input (fraction 1) is never a
    // bottleneck, regardless of absolute rates.
    let fraction = |g: &Grouping, sustained: f64| -> f64 {
        let total = g.total_rate();
        if total > 0.0 {
            sustained / total
        } else {
            1.0
        }
    };
    let mut engines = vec![1usize; groupings.len()];
    let mut fractions = groupings
        .iter()
        .map(|g| g.sustained(model, 1).map(|s| fraction(g, s)))
        .collect::<Result<Vec<_>, _>>()?;
    for _ in 0..(n_engines - groupings.len()) {
        // Candidate system fraction if grouping gi gets the extra engine.
        let mut best: Option<(usize, f64, f64)> = None; // (gi, system, new_fraction)
        for (gi, g) in groupings.iter().enumerate() {
            let upgraded = fraction(g, g.sustained(model, engines[gi] + 1)?);
            let system = fractions
                .iter()
                .enumerate()
                .map(|(i, &f)| if i == gi { upgraded } else { f })
                .fold(f64::INFINITY, f64::min);
            let better = match best {
                None => true,
                Some((bi, best_system, _)) => {
                    system > best_system
                        // Tie-break towards the weakest grouping so ties
                        // still shrink the bottleneck eventually.
                        || (system == best_system && fractions[gi] < fractions[bi])
                }
            };
            if better {
                best = Some((gi, system, upgraded));
            }
        }
        let (gi, _, upgraded) = best.expect("groupings is non-empty");
        engines[gi] += 1;
        fractions[gi] = upgraded;
    }
    let scores = groupings
        .iter()
        .zip(&engines)
        .map(|(g, &k)| g.score(model, k))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Allocation { engines, scores })
}

/// The end-to-end sustained *fraction* of an allocation: the slowest
/// grouping's sustained share of its offered stream (every tuple must
/// clear every grouping). 1.0 means the system keeps up everywhere.
pub fn system_rate(
    model: &EstimationModel,
    groupings: &[Grouping],
    allocation: &Allocation,
) -> Result<f64, CoreError> {
    let mut min = f64::INFINITY;
    for (g, &k) in groupings.iter().zip(&allocation.engines) {
        let total = g.total_rate();
        let f = if total > 0.0 { g.sustained(model, k)? / total } else { 1.0 };
        min = min.min(f);
    }
    Ok(min)
}

/// The round-robin baseline of Figure 11: engines are dealt to the
/// groupings (per-layer, as the paper describes) in turn, ignoring load.
pub fn round_robin(groupings: &[Grouping], n_engines: usize) -> Result<Allocation, CoreError> {
    if groupings.is_empty() {
        return Err(CoreError::Config { reason: "no groupings to allocate".into() });
    }
    if n_engines < groupings.len() {
        return Err(CoreError::Config {
            reason: format!(
                "{} engines cannot cover {} groupings",
                n_engines,
                groupings.len()
            ),
        });
    }
    let mut engines = vec![0usize; groupings.len()];
    for i in 0..n_engines {
        engines[i % groupings.len()] += 1;
    }
    Ok(Allocation { engines, scores: vec![0.0; groupings.len()] })
}

/// Builds candidate grouping sets from per-layer rule sets and returns
/// the one Algorithm 2 scores best.
///
/// `layer_groups` lists `(layer, rules, regions, thresholds)` sorted by
/// layer. Candidates are the contiguous-range partitions of the layer
/// sequence (merging hierarchically adjacent layers is what saves
/// re-transmissions); each candidate's merged grouping partitions at its
/// highest layer, i.e. uses that layer's regions.
pub fn best_grouping_allocation(
    model: &EstimationModel,
    layer_groups: &[Grouping],
    n_engines: usize,
) -> Result<(Vec<Grouping>, Allocation), CoreError> {
    if layer_groups.is_empty() {
        return Err(CoreError::Config { reason: "no layer groups".into() });
    }
    let n = layer_groups.len();
    let mut best: Option<(Vec<Grouping>, Allocation, f64)> = None;
    // 2^(n-1) contiguous partitions, masked by split points.
    for mask in 0..(1u32 << (n - 1)) {
        let mut candidate: Vec<Grouping> = Vec::new();
        let mut current: Option<Grouping> = None;
        for (i, lg) in layer_groups.iter().enumerate() {
            match current.as_mut() {
                None => current = Some(lg.clone()),
                Some(c) => {
                    c.layers.extend(lg.layers.iter().copied());
                    c.rules.extend(lg.rules.iter().cloned());
                    c.thresholds.extend(lg.thresholds.iter().copied());
                    // Partition at the *first* (coarsest) layer's regions:
                    // coarser regions contain the finer ones, so the
                    // merged grouping keeps `c.regions` as is.
                    c.name = format!("{}+{}", c.name, lg.name);
                }
            }
            let split_here = i + 1 < n && (mask >> i) & 1 == 1;
            if split_here {
                candidate.push(current.take().expect("current is set"));
            }
        }
        candidate.push(current.take().expect("current is set"));
        if n_engines < candidate.len() {
            continue;
        }
        let allocation = allocate(model, &candidate, n_engines)?;
        let rate = system_rate(model, &candidate, &allocation)?;
        let better = match &best {
            None => true,
            // Prefer the higher end-to-end rate; on ties, fewer groupings
            // (fewer re-transmissions of every tuple).
            Some((g, _, r)) => rate > *r || (rate == *r && candidate.len() < g.len()),
        };
        if better {
            best = Some((candidate, allocation, rate));
        }
    }
    best.map(|(g, a, _)| (g, a)).ok_or_else(|| CoreError::Config {
        reason: format!("{n_engines} engines cannot cover even one grouping"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::LocationSelector;
    use tms_traffic::Attribute;

    fn regions(n: usize, rate: f64) -> Vec<RegionRate> {
        (0..n).map(|i| RegionRate { region: format!("R{i}"), rate }).collect()
    }

    fn rule(name: &str, window: usize) -> RuleSpec {
        RuleSpec::new(name, Attribute::Delay, LocationSelector::QuadtreeLeaves, window)
    }

    fn grouping(name: &str, windows: &[usize], n_regions: usize, rate: f64) -> Grouping {
        Grouping {
            name: name.into(),
            layers: vec![0],
            rules: windows.iter().enumerate().map(|(i, &w)| rule(&format!("{name}-{i}"), w)).collect(),
            regions: regions(n_regions, rate),
            thresholds: vec![100; windows.len()],
        }
    }

    fn model() -> EstimationModel {
        EstimationModel::default_paper_shaped()
    }

    #[test]
    fn score_increases_with_engines_until_saturation() {
        // 16 regions × 400 t/s = 6400 t/s total; one engine (capacity
        // ~970 t/s at two l=100 rules) cannot sustain it alone.
        let g = grouping("g", &[100, 100], 16, 400.0);
        let m = model();
        let s1 = g.score(&m, 1).unwrap();
        let s4 = g.score(&m, 4).unwrap();
        let s16 = g.score(&m, 16).unwrap();
        assert!(s4 > s1, "more engines, more sustained load: {s1} vs {s4}");
        assert!(s16 >= s4);
        // Fully sustained: score caps at total weight.
        assert!(s16 <= g.total_weight() + 1e-9);
        // Zero engines: zero score.
        assert_eq!(g.score(&m, 0).unwrap(), 0.0);
    }

    #[test]
    fn heavier_windows_score_lower() {
        let light = grouping("light", &[1], 16, 50.0);
        let heavy = grouping("heavy", &[1000], 16, 50.0);
        let m = model();
        assert!(light.score(&m, 2).unwrap() > heavy.score(&m, 2).unwrap());
    }

    #[test]
    fn algorithm2_gives_extra_engines_to_the_needier_grouping() {
        // A heavy grouping (large windows, high rate) and a light one.
        let g = vec![grouping("heavy", &[1000, 1000], 16, 60.0), grouping("light", &[1], 16, 5.0)];
        let m = model();
        let a = allocate(&m, &g, 10).unwrap();
        assert_eq!(a.engines.iter().sum::<usize>(), 10);
        assert!(a.engines[0] > a.engines[1], "heavy grouping needs more engines: {:?}", a.engines);
        assert!(a.engines[1] >= 1, "every grouping keeps at least one engine");
    }

    #[test]
    fn allocation_uses_every_engine_and_beats_round_robin() {
        let g = vec![
            grouping("quadtree", &[100, 100, 100], 32, 40.0),
            grouping("stops", &[1], 50, 2.0),
        ];
        let m = model();
        let ours = allocate(&m, &g, 12).unwrap();
        let rr = round_robin(&g, 12).unwrap();
        assert_eq!(rr.engines, vec![6, 6]);
        // Compare on the end-to-end system rate.
        let ours_rate = system_rate(&m, &g, &ours).unwrap();
        let rr_rate = system_rate(&m, &g, &rr).unwrap();
        assert!(
            ours_rate >= rr_rate - 1e-9,
            "greedy {ours_rate} must be at least round-robin {rr_rate}"
        );
    }

    #[test]
    fn error_cases() {
        let m = model();
        assert!(allocate(&m, &[], 3).is_err());
        let g = vec![grouping("a", &[1], 4, 1.0), grouping("b", &[1], 4, 1.0)];
        assert!(allocate(&m, &g, 1).is_err(), "fewer engines than groupings");
        assert!(round_robin(&[], 3).is_err());
        let empty_rules = Grouping {
            name: "empty".into(),
            layers: vec![0],
            rules: vec![],
            regions: regions(2, 1.0),
            thresholds: vec![],
        };
        assert!(empty_rules.score(&m, 1).is_err());
    }

    #[test]
    fn best_grouping_merges_when_engines_are_scarce() {
        // Three layer groups; with barely enough engines, merging wins
        // because each grouping sees the full stream.
        let layer_groups = vec![
            grouping("L2", &[100], 16, 40.0),
            grouping("L3", &[100], 16, 40.0),
            grouping("stops", &[100], 16, 40.0),
        ];
        let m = model();
        let (merged, alloc) = best_grouping_allocation(&m, &layer_groups, 3).unwrap();
        assert!(merged.len() <= 3);
        assert_eq!(alloc.engines.iter().sum::<usize>(), 3);
        // With plenty of engines the optimizer may split; whatever it
        // does must score at least the all-merged baseline.
        let (gs, alloc_many) = best_grouping_allocation(&m, &layer_groups, 20).unwrap();
        let all_merged = {
            let mut g = layer_groups[0].clone();
            for lg in &layer_groups[1..] {
                g.rules.extend(lg.rules.iter().cloned());
                g.thresholds.extend(lg.thresholds.iter().copied());
            }
            g
        };
        let merged_fraction =
            all_merged.sustained(&m, 20).unwrap() / all_merged.total_rate();
        let chosen_fraction = system_rate(&m, &gs, &alloc_many).unwrap();
        assert!(
            chosen_fraction >= merged_fraction - 1e-9,
            "chosen {chosen_fraction} vs all-merged {merged_fraction}"
        );
    }

    #[test]
    fn offsets_partition_the_engine_range() {
        let a = Allocation { engines: vec![3, 1, 4], scores: vec![0.0; 3] };
        assert_eq!(a.offsets(), vec![0, 3, 4]);
    }
}
