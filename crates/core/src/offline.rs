//! The off-line computation component (Section 4.1): spatial indexing,
//! bus-stop recovery, historical statistics via MapReduce, and region
//! input-rate estimation.
//!
//! Data flow, matching Figure 3: pre-processed traces are stored to the
//! DFS (arrow 2); the batch layer periodically runs the statistics job
//! over them (arrows 3–4), computing `mean` and `stdv` of every Table 6
//! attribute per (location, hour, day-type); results land in the storage
//! medium (arrow 4) where the on-line layer fetches them as thresholds
//! (arrow 5).

use crate::error::CoreError;
use crate::partitioning::RegionRate;
use crate::rules::{LocationSelector, SpatialContext};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tms_batch::{run_job, Combiner, Dfs, JobConfig, Mapper, Reducer};
use tms_geo::{
    busstops::SubclusterConfig, BusStopIndex, DenclueConfig, GeoPoint, QuadtreeConfig,
    RegionQuadtree, StopObservation,
};
use tms_storage::{DayType, StatRecord, TableStore, ThresholdStore};
use tms_traffic::{Attribute, BusTrace, EnrichedTrace, Preprocessor};

/// Configuration of the off-line component.
#[derive(Debug, Clone)]
pub struct OfflineConfig {
    /// Quadtree construction parameters (Section 4.1.1).
    pub quadtree: QuadtreeConfig,
    /// DENCLUE parameters for bus-stop recovery (Section 4.1.2).
    pub denclue: DenclueConfig,
    /// Angle sub-clustering parameters.
    pub subcluster: SubclusterConfig,
    /// MapReduce job sizing for the statistics job.
    pub job: JobConfig,
    /// Minimum observations before a (location, hour, day-type) cell gets
    /// statistics (tiny cells produce garbage thresholds).
    pub min_samples: u64,
}

impl Default for OfflineConfig {
    fn default() -> Self {
        OfflineConfig {
            quadtree: QuadtreeConfig::default(),
            denclue: DenclueConfig::default(),
            subcluster: SubclusterConfig::default(),
            job: JobConfig::default(),
            min_samples: 10,
        }
    }
}

/// Everything the off-line component produces.
#[derive(Debug, Clone)]
pub struct OfflineArtifacts {
    /// Quadtree + recovered bus stops.
    pub spatial: SpatialContext,
    /// Expected input rate (tuples/s) per location id, from history.
    pub region_rates: HashMap<String, f64>,
    /// The threshold store fed by the statistics job.
    pub thresholds: ThresholdStore,
    /// How many times [`Self::rates_for`] defaulted a location to rate 0
    /// because the history never saw it. Used to default silently for a
    /// long time; the counter makes that visible (metrics gauge
    /// `unseen_locations`) — a high value means the partitioner planned
    /// on guesses. Shared across clones, so the system's gauge sees
    /// counts from planning done before the run started.
    unseen_locations: Arc<AtomicU64>,
}

impl OfflineArtifacts {
    /// Assembles the artifacts with a fresh unseen-location counter.
    pub fn new(
        spatial: SpatialContext,
        region_rates: HashMap<String, f64>,
        thresholds: ThresholdStore,
    ) -> Self {
        OfflineArtifacts {
            spatial,
            region_rates,
            thresholds,
            unseen_locations: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Rates for the locations of a selector, defaulting unseen locations
    /// to 0 (they still get routed, just assumed quiet). Each default is
    /// counted in [`Self::unseen_location_count`].
    pub fn rates_for(&self, selector: &LocationSelector) -> Vec<RegionRate> {
        self.spatial
            .resolve(selector)
            .into_iter()
            .map(|region| {
                let rate = match self.region_rates.get(&region) {
                    Some(r) => *r,
                    None => {
                        self.unseen_locations.fetch_add(1, Ordering::Relaxed);
                        0.0
                    }
                };
                RegionRate { rate, region }
            })
            .collect()
    }

    /// Total locations defaulted to rate 0 so far (across clones).
    pub fn unseen_location_count(&self) -> u64 {
        self.unseen_locations.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Spatial indexing (Sections 4.1.1, 4.1.2)
// ---------------------------------------------------------------------------

/// Builds the quadtree (from "important coordinates", e.g. route
/// vertices) and the bus-stop index (from noisy stop observations).
pub fn build_spatial(
    bbox: tms_geo::BoundingBox,
    seeds: &[GeoPoint],
    stop_observations: &[StopObservation],
    config: &OfflineConfig,
) -> Result<SpatialContext, CoreError> {
    let quadtree = RegionQuadtree::build(bbox, seeds, config.quadtree)?;
    let stops = BusStopIndex::build(stop_observations, config.denclue, config.subcluster)?;
    Ok(SpatialContext { quadtree, stops })
}

/// Extracts stop observations from raw traces: reports flagged `at_stop`,
/// with the entry bearing taken from the previous report of the vehicle.
pub fn stop_observations(traces: &[BusTrace]) -> Vec<StopObservation> {
    let mut last_pos: HashMap<u32, GeoPoint> = HashMap::new();
    let mut out = Vec::new();
    for t in traces {
        let prev = last_pos.insert(t.vehicle_id, t.position);
        if t.at_stop {
            let bearing = prev
                .filter(|p| p.haversine_m(&t.position) > 1.0)
                .map(|p| p.bearing_deg(&t.position))
                .unwrap_or(0.0);
            out.push(StopObservation {
                line_id: t.line_id,
                direction: t.direction,
                position: t.position,
                entry_bearing_deg: bearing,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Enrichment + DFS storage (Figure 3, arrow 2)
// ---------------------------------------------------------------------------

/// Enriches raw traces (speed, actual delay, areas, bus stop) exactly as
/// the on-line bolts would, and appends them to a DFS file as CSV — the
/// historical data the statistics job consumes.
pub fn enrich_and_store(
    traces: &[BusTrace],
    spatial: &SpatialContext,
    dfs: &Dfs,
    path: &str,
) -> Result<u64, CoreError> {
    let mut pre = Preprocessor::new();
    let mut buf = String::new();
    let mut n = 0u64;
    for t in traces {
        let e = enrich(&mut pre, spatial, *t);
        buf.push_str(&enriched_csv_line(&e));
        buf.push('\n');
        n += 1;
        if buf.len() > 1 << 20 {
            dfs.append(path, buf.as_bytes())?;
            buf.clear();
        }
    }
    if !buf.is_empty() {
        dfs.append(path, buf.as_bytes())?;
    }
    Ok(n)
}

/// Applies the PreProcess + AreaTracker + BusStopsTracker logic to one
/// trace.
pub fn enrich(pre: &mut Preprocessor, spatial: &SpatialContext, t: BusTrace) -> EnrichedTrace {
    let mut e = pre.enrich(t);
    e.areas = spatial
        .quadtree
        .locate_all_layers(&e.trace.position)
        .iter()
        .map(|r| SpatialContext::region_id(r.id))
        .collect();
    e.bus_stop = spatial
        .stops
        .closest_stop(e.trace.line_id, e.trace.direction, &e.trace.position)
        .map(|s| SpatialContext::stop_id(s.id));
    e
}

/// CSV line of an enriched trace, as stored in the DFS:
/// `hour,day_type,areas(; separated),stop,delay,actual_delay,speed,congestion`.
pub fn enriched_csv_line(e: &EnrichedTrace) -> String {
    let day = DayType::from_weekday_index((e.trace.day_index() % 7) as u8);
    format!(
        "{},{},{},{},{:.3},{},{},{}",
        e.trace.hour_of_day(),
        day.as_str(),
        e.areas.join(";"),
        e.bus_stop.clone().unwrap_or_default(),
        e.trace.delay_s,
        e.actual_delay_s.map(|v| format!("{v:.3}")).unwrap_or_default(),
        e.speed_kmh.map(|v| format!("{v:.3}")).unwrap_or_default(),
        e.trace.congestion,
    )
}

// ---------------------------------------------------------------------------
// The statistics MapReduce job (Section 4.1.3)
// ---------------------------------------------------------------------------

/// Intermediate value: partial (count, sum, sum of squares).
type Moments = (u64, f64, f64);

struct StatsMapper;

impl Mapper for StatsMapper {
    /// `attribute|location|hour|day_type`
    type Key = String;
    type Value = Moments;

    fn map(&self, record: &str, emit: &mut dyn FnMut(String, Moments)) {
        let fields: Vec<&str> = record.split(',').collect();
        if fields.len() != 8 {
            return; // skip malformed historical lines
        }
        let (hour, day, areas, stop) = (fields[0], fields[1], fields[2], fields[3]);
        let values = [
            (Attribute::Delay, fields[4].parse::<f64>().ok()),
            (Attribute::ActualDelay, fields[5].parse::<f64>().ok()),
            (Attribute::Speed, fields[6].parse::<f64>().ok()),
            (
                Attribute::DelayAndCongestion,
                if fields[7] == "true" { fields[4].parse::<f64>().ok() } else { None },
            ),
        ];
        let mut locations: Vec<&str> = areas.split(';').filter(|a| !a.is_empty()).collect();
        if !stop.is_empty() {
            locations.push(stop);
        }
        for (attr, value) in values {
            let Some(v) = value else { continue };
            for loc in &locations {
                emit(format!("{}|{}|{}|{}", attr.name(), loc, hour, day), (1, v, v * v));
            }
        }
    }
}

struct MomentsCombiner;

impl Combiner<String, Moments> for MomentsCombiner {
    fn combine(&self, _key: &String, values: Vec<Moments>) -> Vec<Moments> {
        let mut acc = (0u64, 0.0f64, 0.0f64);
        for (c, s, sq) in values {
            acc.0 += c;
            acc.1 += s;
            acc.2 += sq;
        }
        vec![acc]
    }
}

struct StatsReducer {
    min_samples: u64,
}

impl Reducer<String, Moments> for StatsReducer {
    type OutKey = String;
    /// `(mean, stdv, count)`
    type OutValue = (f64, f64, u64);

    fn reduce(
        &self,
        key: &String,
        values: &[Moments],
        emit: &mut dyn FnMut(String, (f64, f64, u64)),
    ) {
        let mut count = 0u64;
        let (mut sum, mut sum_sq) = (0.0f64, 0.0f64);
        for (c, s, sq) in values {
            count += c;
            sum += s;
            sum_sq += sq;
        }
        if count < self.min_samples {
            return;
        }
        let n = count as f64;
        let mean = sum / n;
        let var = (sum_sq / n - mean * mean).max(0.0);
        emit(key.clone(), (mean, var.sqrt(), count));
    }
}

/// Runs the statistics job over enriched-history files and publishes the
/// resulting thresholds, one snapshot per attribute.
pub fn run_statistics_job(
    dfs: &Dfs,
    inputs: &[&str],
    store: &TableStore,
    config: &OfflineConfig,
) -> Result<HashMap<Attribute, usize>, CoreError> {
    let (outputs, _stats) = run_job(
        dfs,
        inputs,
        &StatsMapper,
        &StatsReducer { min_samples: config.min_samples },
        Some(&MomentsCombiner),
        config.job,
    )?;
    let mut per_attr: HashMap<Attribute, Vec<StatRecord>> = HashMap::new();
    for (key, (mean, stdv, count)) in outputs.into_iter().flatten() {
        let parts: Vec<&str> = key.split('|').collect();
        if parts.len() != 4 {
            return Err(CoreError::Batch(tms_batch::BatchError::TaskFailed {
                task: "stats-reduce".into(),
                reason: format!("malformed key {key:?}"),
            }));
        }
        let Some(attr) = Attribute::parse(parts[0]) else {
            continue;
        };
        let hour: u8 = parts[2].parse().map_err(|_| CoreError::Config {
            reason: format!("bad hour in stats key {key:?}"),
        })?;
        let day_type = DayType::parse(parts[3])?;
        per_attr.entry(attr).or_default().push(StatRecord {
            area_id: parts[1].to_string(),
            hour,
            day_type,
            mean,
            stdv,
            count,
        });
    }
    let thresholds = ThresholdStore::new(store.clone());
    let mut published = HashMap::new();
    for (attr, records) in per_attr {
        published.insert(attr, records.len());
        thresholds.publish(attr.name(), &records)?;
    }
    Ok(published)
}

// ---------------------------------------------------------------------------
// Region input rates (Section 4.2.1's "initial knowledge ... from
// historical data")
// ---------------------------------------------------------------------------

/// Estimates tuples/second per location id from a span of traces.
pub fn region_rates(
    traces: &[BusTrace],
    spatial: &SpatialContext,
) -> HashMap<String, f64> {
    let mut counts: HashMap<String, u64> = HashMap::new();
    let (mut min_ts, mut max_ts) = (u64::MAX, 0u64);
    for t in traces {
        min_ts = min_ts.min(t.timestamp_ms);
        max_ts = max_ts.max(t.timestamp_ms);
        for r in spatial.quadtree.locate_all_layers(&t.position) {
            *counts.entry(SpatialContext::region_id(r.id)).or_default() += 1;
        }
        if let Some(s) = spatial.stops.closest_stop(t.line_id, t.direction, &t.position) {
            *counts.entry(SpatialContext::stop_id(s.id)).or_default() += 1;
        }
    }
    let span_s = ((max_ts.saturating_sub(min_ts)) as f64 / 1000.0).max(1.0);
    counts.into_iter().map(|(k, v)| (k, v as f64 / span_s)).collect()
}

/// Runs the whole off-line pipeline over a batch of historical traces.
pub fn run_offline(
    bbox: tms_geo::BoundingBox,
    seeds: &[GeoPoint],
    traces: &[BusTrace],
    store: &TableStore,
    config: &OfflineConfig,
) -> Result<OfflineArtifacts, CoreError> {
    let observations = stop_observations(traces);
    let spatial = build_spatial(bbox, seeds, &observations, config)?;
    let dfs = Dfs::with_defaults();
    enrich_and_store(traces, &spatial, &dfs, "/history/day0.csv")?;
    run_statistics_job(&dfs, &["/history/day0.csv"], store, config)?;
    let region_rates = region_rates(traces, &spatial);
    Ok(OfflineArtifacts::new(spatial, region_rates, ThresholdStore::new(store.clone())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_geo::DUBLIN_BBOX;
    use tms_traffic::{FleetConfig, FleetGenerator};

    fn day_of_traces() -> (Vec<BusTrace>, Vec<GeoPoint>) {
        let g = FleetGenerator::new(FleetConfig::small(9), 0).unwrap();
        let seeds = g.route_seed_points();
        // A few service hours are enough for statistics.
        let traces: Vec<BusTrace> =
            g.take_while(|t| t.timestamp_ms < 11 * tms_traffic::HOUR_MS).collect();
        (traces, seeds)
    }

    #[test]
    fn offline_pipeline_end_to_end() {
        let (traces, seeds) = day_of_traces();
        let store = TableStore::new();
        let artifacts = run_offline(
            DUBLIN_BBOX,
            &seeds,
            &traces,
            &store,
            &OfflineConfig::default(),
        )
        .unwrap();
        // Statistics exist for the delay attribute.
        let rows = artifacts
            .thresholds
            .thresholds(&tms_storage::ThresholdQuery { attribute: "delay".into(), s: 1.0 })
            .unwrap();
        assert!(!rows.is_empty(), "delay thresholds published");
        // Hours covered fall inside the generated span (06–10).
        for r in &rows {
            assert!((6..11).contains(&r.hour), "hour {} out of span", r.hour);
        }
        // Region rates: the root region sees every trace.
        let root_rate = artifacts.region_rates.get("R0").copied().unwrap();
        assert!(root_rate > 0.0);
        // Any deeper region sees at most the root's rate.
        for (region, rate) in &artifacts.region_rates {
            assert!(rate <= &root_rate, "{region} rate {rate} exceeds root {root_rate}");
        }
        // The rates_for helper aligns with the resolver.
        let leaf_rates =
            artifacts.rates_for(&LocationSelector::QuadtreeLeaves);
        assert_eq!(leaf_rates.len(), artifacts.spatial.quadtree.leaves().len());
    }

    #[test]
    fn unseen_locations_are_counted_not_silently_zeroed() {
        let (traces, seeds) = day_of_traces();
        let store = TableStore::new();
        let artifacts =
            run_offline(DUBLIN_BBOX, &seeds, &traces, &store, &OfflineConfig::default())
                .unwrap();
        let before = artifacts.unseen_location_count();
        // Bus stops the history never produced traffic for default to 0
        // and each default increments the counter; a second resolve of
        // the same selector counts again (the gauge measures defaulting
        // *events*, not distinct locations).
        let stop_rates = artifacts.rates_for(&LocationSelector::BusStops);
        let zeroed = stop_rates.iter().filter(|r| r.rate == 0.0).count() as u64;
        assert_eq!(artifacts.unseen_location_count() - before, zeroed);
        // Clones share the counter, so the system's gauge observes
        // planning done through any copy.
        let clone = artifacts.clone();
        clone.rates_for(&LocationSelector::BusStops);
        assert_eq!(artifacts.unseen_location_count(), before + 2 * zeroed);
    }

    #[test]
    fn statistics_match_direct_computation() {
        // Hand-built history: one location, one hour, known values.
        let dfs = Dfs::with_defaults();
        let lines: Vec<String> = [10.0, 20.0, 30.0, 40.0]
            .iter()
            .map(|d| format!("8,weekday,R1;R5,S2,{d:.3},1.000,25.000,false"))
            .collect();
        dfs.create("/h.csv", (lines.join("\n") + "\n").as_bytes()).unwrap();
        let store = TableStore::new();
        let published = run_statistics_job(
            &dfs,
            &["/h.csv"],
            &store,
            &OfflineConfig { min_samples: 2, ..OfflineConfig::default() },
        )
        .unwrap();
        assert!(published[&Attribute::Delay] >= 3, "R1, R5 and S2 cells");
        let ts = ThresholdStore::new(store);
        let t = ts
            .threshold_for(
                &tms_storage::ThresholdQuery { attribute: "delay".into(), s: 0.0 },
                "R1",
                8,
                DayType::Weekday,
            )
            .unwrap()
            .unwrap();
        assert!((t - 25.0).abs() < 1e-9, "mean of 10..40 is 25, got {t}");
        // s = 1 adds the population stdv of [10,20,30,40] ≈ 11.18.
        let t1 = ts
            .threshold_for(
                &tms_storage::ThresholdQuery { attribute: "delay".into(), s: 1.0 },
                "R1",
                8,
                DayType::Weekday,
            )
            .unwrap()
            .unwrap();
        assert!((t1 - (25.0 + 11.180339887)).abs() < 1e-6, "got {t1}");
    }

    #[test]
    fn min_samples_filters_thin_cells() {
        let dfs = Dfs::with_defaults();
        dfs.create("/h.csv", b"8,weekday,R1,,5.000,,,false\n").unwrap();
        let store = TableStore::new();
        run_statistics_job(
            &dfs,
            &["/h.csv"],
            &store,
            &OfflineConfig { min_samples: 3, ..OfflineConfig::default() },
        )
        .unwrap();
        // One sample < min 3: nothing published for delay.
        let ts = ThresholdStore::new(store);
        let q = tms_storage::ThresholdQuery { attribute: "delay".into(), s: 1.0 };
        match ts.thresholds(&q) {
            Ok(rows) => assert!(rows.is_empty()),
            Err(tms_storage::StorageError::TableNotFound(_)) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn congestion_gated_attribute_only_counts_congested() {
        let dfs = Dfs::with_defaults();
        let mut lines = Vec::new();
        for d in [100.0, 200.0, 300.0] {
            lines.push(format!("9,weekend,R2,,{d:.3},,,true"));
        }
        for d in [1.0, 2.0, 3.0] {
            lines.push(format!("9,weekend,R2,,{d:.3},,,false"));
        }
        dfs.create("/h.csv", (lines.join("\n") + "\n").as_bytes()).unwrap();
        let store = TableStore::new();
        run_statistics_job(
            &dfs,
            &["/h.csv"],
            &store,
            &OfflineConfig { min_samples: 2, ..OfflineConfig::default() },
        )
        .unwrap();
        let ts = ThresholdStore::new(store);
        let gated = ts
            .threshold_for(
                &tms_storage::ThresholdQuery { attribute: "delay_congestion".into(), s: 0.0 },
                "R2",
                9,
                DayType::Weekend,
            )
            .unwrap()
            .unwrap();
        assert!((gated - 200.0).abs() < 1e-9, "congested mean only: {gated}");
        let all = ts
            .threshold_for(
                &tms_storage::ThresholdQuery { attribute: "delay".into(), s: 0.0 },
                "R2",
                9,
                DayType::Weekend,
            )
            .unwrap()
            .unwrap();
        assert!((all - 101.0).abs() < 1e-9, "plain delay averages all six: {all}");
    }

    #[test]
    fn stop_observations_have_bearings() {
        let (traces, _) = day_of_traces();
        let obs = stop_observations(&traces);
        assert!(!obs.is_empty(), "the fleet reports stops");
        for o in obs.iter().take(50) {
            assert!((0.0..360.0).contains(&o.entry_bearing_deg));
        }
    }

    #[test]
    fn malformed_history_lines_are_skipped() {
        let dfs = Dfs::with_defaults();
        dfs.create("/h.csv", b"garbage line\n8,weekday,R1,,1.0,,,false\nshort,line\n")
            .unwrap();
        let store = TableStore::new();
        // min_samples 1 so the single good line publishes.
        let published = run_statistics_job(
            &dfs,
            &["/h.csv"],
            &store,
            &OfflineConfig { min_samples: 1, ..OfflineConfig::default() },
        )
        .unwrap();
        assert_eq!(published.get(&Attribute::Delay), Some(&1usize));
    }
}
