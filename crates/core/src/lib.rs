//! The paper's contribution: a scalable and dynamic traffic management
//! system combining a Storm-style DSPS ([`tms_dsps`]), Esper-style CEP
//! engines ([`tms_cep`]) and a Hadoop-style batch layer ([`tms_batch`]).
//!
//! Module map, following Section 4's decomposition:
//!
//! **Off-line computation** (Section 4.1)
//! * [`offline`] — spatial indexing (quadtree over route seed points),
//!   bus-stop recovery (DENCLUE + angle sub-clustering), the MapReduce
//!   statistics job computing per-(attribute, location, hour, day-type)
//!   mean/stdv, and publication to the threshold store;
//! * [`latency`] — the engine-latency estimation model (Section 4.1.4,
//!   Figure 7): polynomial regression and the three functions — rule
//!   latency from `(window, thresholds)`, engine latency from co-resident
//!   rules, and node-level inflation from co-located engines.
//!
//! **Start-up optimization** (Section 4.2)
//! * [`partitioning`] — Algorithm 1: split one rule's spatial locations
//!   over its engines so every engine receives about the same input rate;
//! * [`allocation`] — Algorithm 2: greedily hand engines to rule
//!   *groupings* (sets of quadtree layers) maximizing the weighted score
//!   of Equations 1–2, plus the paper's baselines (round-robin,
//!   all-grouping, all-rules).
//!
//! **On-line processing** (Section 4.3)
//! * [`rules`] — the generic rule template (Section 3.3, Listing 1,
//!   Table 6) and its EPL instantiation;
//! * [`thresholds`] — the three threshold-retrieval methods of
//!   Section 4.3.1 (join-with-database, multiple rules, threshold stream)
//!   and dynamic rule refresh;
//! * [`topology`] — the Figure 8 topology (BusReader spout → PreProcess →
//!   AreaTracker → BusStopsTracker → Splitter → Esper bolts → EventsStorer)
//!   wired onto the DSPS, plus the XML front end;
//! * [`kappa`] — the in-stream statistics path: a StatsBolt that folds
//!   the batch job's per-cell moments into the stream and refreshes the
//!   engines' thresholds without a database round trip, plus the binary
//!   codec for the Esper bolts' durable snapshots;
//! * [`system`] — the end-to-end facade tying the three components
//!   together.

pub mod allocation;
pub mod error;
pub mod kappa;
pub mod latency;
pub mod offline;
pub mod partitioning;
pub mod rules;
pub mod system;
pub mod thresholds;
pub mod topology;
pub mod xml_topology;

pub use error::CoreError;
pub use kappa::{KappaConfig, StatsBolt};
pub use latency::{EstimationModel, PolyModel};
pub use offline::{OfflineArtifacts, OfflineConfig};
pub use partitioning::{partition_rule, Partition, RegionRate};
pub use rules::{LocationSelector, RuleSpec, SpatialContext};
pub use system::{
    CalibrationReport, ElasticConfig, EngineDrift, PlannerDriftReport, RuleObservedLoad,
    SystemConfig, TrafficSystem,
};
