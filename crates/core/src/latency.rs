//! The engine-latency estimation model (Section 4.1.4, Figure 7).
//!
//! Three regression functions, each a low-order polynomial fitted by
//! ordinary least squares (the paper uses polynomial regression and finds
//! that a **first-order** polynomial beats the second-order fit by ~60%
//! average absolute error for Function 2 — our Figure 9 experiment
//! reproduces that comparison):
//!
//! * **Function 1** — latency of a single rule from its window length `l`
//!   and the number of thresholds `t` it joins with (Table 3);
//! * **Function 2** — latency of an engine running two rule sets from
//!   their individual latencies (Table 4); folded sequentially for more
//!   than two rules, exactly as the paper describes;
//! * **Function 3** — latency of an engine when other engines share its
//!   node (Table 5): CPU contention inflates everyone.
//!
//! [`EstimationModel`] composes the three (Figure 7): rule specs →
//! Function 1 → per-engine folds via Function 2 → per-node adjustment via
//! Function 3.

use crate::error::CoreError;

/// A fitted polynomial model over named features.
///
/// `degree = 1` fits `y = c0 + Σ ci·xi`; `degree = 2` adds all squares and
/// pairwise products.
#[derive(Debug, Clone, PartialEq)]
pub struct PolyModel {
    /// Number of raw input variables.
    pub inputs: usize,
    /// Polynomial degree (1 or 2).
    pub degree: u8,
    /// Coefficients, one per expanded feature (intercept first).
    pub coefficients: Vec<f64>,
}

/// Expands raw inputs into the feature vector for a degree.
fn expand(inputs: &[f64], degree: u8) -> Vec<f64> {
    let mut f = Vec::with_capacity(1 + inputs.len() * usize::from(degree));
    f.push(1.0);
    f.extend_from_slice(inputs);
    if degree >= 2 {
        for i in 0..inputs.len() {
            for j in i..inputs.len() {
                f.push(inputs[i] * inputs[j]);
            }
        }
    }
    f
}

impl PolyModel {
    /// Fits a polynomial of the given degree to `(inputs, output)` samples
    /// by ordinary least squares (normal equations + Gaussian elimination
    /// with partial pivoting — the design matrices here are tiny).
    pub fn fit(samples: &[(Vec<f64>, f64)], degree: u8) -> Result<PolyModel, CoreError> {
        if !(1..=2).contains(&degree) {
            return Err(CoreError::Model { reason: format!("unsupported degree {degree}") });
        }
        let Some(first) = samples.first() else {
            return Err(CoreError::Model { reason: "no samples to fit".into() });
        };
        let inputs = first.0.len();
        if inputs == 0 {
            return Err(CoreError::Model { reason: "samples have no input variables".into() });
        }
        if samples.iter().any(|(x, _)| x.len() != inputs) {
            return Err(CoreError::Model { reason: "inconsistent sample arity".into() });
        }
        let k = expand(&first.0, degree).len();
        if samples.len() < k {
            return Err(CoreError::Model {
                reason: format!("need at least {k} samples for {k} coefficients, got {}", samples.len()),
            });
        }
        // Normal equations: (XᵀX) β = Xᵀy.
        let mut xtx = vec![vec![0.0f64; k]; k];
        let mut xty = vec![0.0f64; k];
        for (x, y) in samples {
            let f = expand(x, degree);
            for i in 0..k {
                xty[i] += f[i] * y;
                for j in 0..k {
                    xtx[i][j] += f[i] * f[j];
                }
            }
        }
        let coefficients = solve(xtx, xty)?;
        Ok(PolyModel { inputs, degree, coefficients })
    }

    /// Predicts the output for raw inputs.
    pub fn predict(&self, inputs: &[f64]) -> Result<f64, CoreError> {
        if inputs.len() != self.inputs {
            return Err(CoreError::Model {
                reason: format!("expected {} inputs, got {}", self.inputs, inputs.len()),
            });
        }
        let f = expand(inputs, self.degree);
        Ok(f.iter().zip(&self.coefficients).map(|(a, b)| a * b).sum())
    }

    /// Mean absolute error on a sample set.
    pub fn mean_abs_error(&self, samples: &[(Vec<f64>, f64)]) -> Result<f64, CoreError> {
        if samples.is_empty() {
            return Err(CoreError::Model { reason: "no samples to evaluate".into() });
        }
        let mut sum = 0.0;
        for (x, y) in samples {
            sum += (self.predict(x)? - y).abs();
        }
        Ok(sum / samples.len() as f64)
    }
}

/// Solves `A·x = b` by Gaussian elimination with partial pivoting.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>, CoreError> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty range");
        if a[pivot][col].abs() < 1e-12 {
            return Err(CoreError::Model {
                reason: "singular design matrix (samples do not span the features)".into(),
            });
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot_row = &pivot_rows[col];
            for (av, pv) in rest[0][col..].iter_mut().zip(&pivot_row[col..]) {
                *av -= factor * pv;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Ok(x)
}

/// One rule's load characteristics, the inputs of Function 1 (Table 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleLoad {
    /// Window length `l` of the rule.
    pub window: usize,
    /// Number of thresholds the rule joins with, `t`.
    pub thresholds: usize,
}

/// The composed estimation model of Figure 7.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimationModel {
    /// Function 1: `(l, t) → rule latency` (ms).
    pub f1: PolyModel,
    /// Function 2: `(latency_a, latency_b) → engine latency` (ms).
    pub f2: PolyModel,
    /// Function 3: `(own latency, Σ co-located latencies) → latency` (ms).
    pub f3: PolyModel,
}

impl EstimationModel {
    /// Builds a model from calibration samples.
    ///
    /// * `f1_samples`: `((l, t), measured rule latency)`;
    /// * `f2_samples`: `((latency_a, latency_b), measured engine latency)`;
    /// * `f3_samples`: `((own, sum of others), measured latency)`.
    pub fn calibrate(
        f1_samples: &[(Vec<f64>, f64)],
        f2_samples: &[(Vec<f64>, f64)],
        f3_samples: &[(Vec<f64>, f64)],
    ) -> Result<Self, CoreError> {
        Ok(EstimationModel {
            f1: PolyModel::fit(f1_samples, 1)?,
            f2: PolyModel::fit(f2_samples, 1)?,
            f3: PolyModel::fit(f3_samples, 1)?,
        })
    }

    /// A default model with coefficients in the spirit of the paper's
    /// published fit (its Function 2 is `0.0077598·L1 + 2.3016e-5·L2 +
    //  2.4717` ms). Function 1 grows linearly in window length and
    /// threshold count; Function 3 inflates latency with node load.
    /// Benchmarks recalibrate from real measurements; this default keeps
    /// the simulator usable standalone.
    pub fn default_paper_shaped() -> Self {
        EstimationModel {
            // latency(l, t) ≈ 0.05 + 0.004·l + 0.0008·t  (ms)
            f1: PolyModel { inputs: 2, degree: 1, coefficients: vec![0.05, 0.004, 0.0008] },
            // Two co-resident rule sets: nearly additive with a small
            // fixed overhead (the paper's published constants put almost
            // all weight on the first latency plus an intercept; ours
            // weighs both symmetrically since rule order is arbitrary).
            f2: PolyModel { inputs: 2, degree: 1, coefficients: vec![0.02, 0.95, 0.95] },
            // Node contention: own latency plus a fraction of the
            // co-located engines' demand.
            f3: PolyModel { inputs: 2, degree: 1, coefficients: vec![0.0, 1.0, 0.35] },
        }
    }

    /// Function 1: latency of one rule (ms).
    pub fn rule_latency(&self, load: RuleLoad) -> Result<f64, CoreError> {
        let v = self.f1.predict(&[load.window as f64, load.thresholds as f64])?;
        Ok(v.max(0.0))
    }

    /// Function 2 folded over a rule set: latency of one engine (ms).
    /// Single-rule engines pass through; the fold applies F2 pairwise in
    /// order ("if we place more than 2 rules we call this function
    /// sequentially").
    pub fn engine_latency(&self, rule_latencies: &[f64]) -> Result<f64, CoreError> {
        let mut it = rule_latencies.iter();
        let Some(&first) = it.next() else {
            return Ok(0.0);
        };
        let mut acc = first;
        for &next in it {
            acc = self.f2.predict(&[acc, next])?.max(0.0);
        }
        Ok(acc)
    }

    /// Function 3 applied to every engine on one node: adjusted latencies
    /// under co-location.
    pub fn node_adjusted(&self, engine_latencies: &[f64]) -> Result<Vec<f64>, CoreError> {
        let total: f64 = engine_latencies.iter().sum();
        engine_latencies
            .iter()
            .map(|&own| self.f3.predict(&[own, total - own]).map(|v| v.max(own)))
            .collect()
    }

    /// The full Figure 7 pipeline: `engines[e]` lists the rule loads of
    /// engine `e`, `nodes[n]` lists the engine indices on node `n`.
    /// Returns the estimated per-engine latency (ms).
    pub fn estimate(
        &self,
        engines: &[Vec<RuleLoad>],
        nodes: &[Vec<usize>],
    ) -> Result<Vec<f64>, CoreError> {
        let mut engine_lat = Vec::with_capacity(engines.len());
        for rules in engines {
            let lats = rules
                .iter()
                .map(|&r| self.rule_latency(r))
                .collect::<Result<Vec<_>, _>>()?;
            engine_lat.push(self.engine_latency(&lats)?);
        }
        let mut adjusted = engine_lat.clone();
        for node in nodes {
            for &e in node {
                if e >= engines.len() {
                    return Err(CoreError::Model {
                        reason: format!("node references unknown engine {e}"),
                    });
                }
            }
            let own: Vec<f64> = node.iter().map(|&e| engine_lat[e]).collect();
            let adj = self.node_adjusted(&own)?;
            for (&e, v) in node.iter().zip(adj) {
                adjusted[e] = v;
            }
        }
        Ok(adjusted)
    }

    /// [`estimate`](Self::estimate) reduced to the scalar the drift
    /// monitor compares against observed latency: the mean predicted
    /// latency over engines that actually hold rules. Empty engines are
    /// placement slack, not load — averaging them in would bias the
    /// prediction toward zero. Errors when no engine holds any rule.
    pub fn estimate_mean(
        &self,
        engines: &[Vec<RuleLoad>],
        nodes: &[Vec<usize>],
    ) -> Result<f64, CoreError> {
        let per_engine = self.estimate(engines, nodes)?;
        let loaded: Vec<f64> = per_engine
            .iter()
            .zip(engines)
            .filter(|(_, rules)| !rules.is_empty())
            .map(|(&lat, _)| lat)
            .collect();
        if loaded.is_empty() {
            return Err(CoreError::Model { reason: "no engine holds any rule".into() });
        }
        Ok(loaded.iter().sum::<f64>() / loaded.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn fit_recovers_linear_coefficients() {
        // y = 2 + 3x1 - x2 exactly.
        let mut samples = Vec::new();
        for x1 in 0..6 {
            for x2 in 0..6 {
                let (x1, x2) = (x1 as f64, x2 as f64);
                samples.push((vec![x1, x2], 2.0 + 3.0 * x1 - x2));
            }
        }
        let m = PolyModel::fit(&samples, 1).unwrap();
        assert!(close(m.coefficients[0], 2.0, 1e-9));
        assert!(close(m.coefficients[1], 3.0, 1e-9));
        assert!(close(m.coefficients[2], -1.0, 1e-9));
        assert!(close(m.predict(&[10.0, 4.0]).unwrap(), 28.0, 1e-9));
        assert!(m.mean_abs_error(&samples).unwrap() < 1e-9);
    }

    #[test]
    fn fit_recovers_quadratic() {
        // y = 1 + x1 + 2·x1² + x1·x2.
        let mut samples = Vec::new();
        for x1 in 0..5 {
            for x2 in 0..5 {
                let (x1, x2) = (x1 as f64, x2 as f64);
                samples.push((vec![x1, x2], 1.0 + x1 + 2.0 * x1 * x1 + x1 * x2));
            }
        }
        let m = PolyModel::fit(&samples, 2).unwrap();
        assert!(m.mean_abs_error(&samples).unwrap() < 1e-6);
        assert!(close(m.predict(&[3.0, 2.0]).unwrap(), 1.0 + 3.0 + 18.0 + 6.0, 1e-6));
    }

    #[test]
    fn first_order_beats_second_on_noisy_linear_data() {
        // The Section 5.1 finding: with few, noisy, linear samples the
        // 2nd-order fit overfits. Train on a small set, evaluate on held
        // out points.
        let f = |x1: f64, x2: f64| 2.5 + 0.0078 * x1 + 0.9 * x2;
        // Deterministic "noise".
        let noise = |i: usize| ((i as f64 * 2.399) % 1.0 - 0.5) * 2.0;
        // A 3×3 grid plus an off-grid point: enough rank for the 6
        // quadratic features, but few and noisy samples.
        let mut train: Vec<(Vec<f64>, f64)> = (0..9)
            .map(|i| {
                let x1 = (i % 3) as f64 * 30.0;
                let x2 = (i / 3) as f64 * 7.0;
                (vec![x1, x2], f(x1, x2) + noise(i))
            })
            .collect();
        train.push((vec![45.0, 10.0], f(45.0, 10.0) + noise(9)));
        // Evaluate beyond the training range: the quadratic's fitted
        // curvature (pure noise) extrapolates badly, the linear fit does
        // not — the same reason the paper's Function 2 kept degree 1.
        let test: Vec<(Vec<f64>, f64)> = (0..40)
            .map(|i| {
                let x1 = (i % 8) as f64 * 40.0 + 80.0;
                let x2 = (i / 8) as f64 * 6.0 + 15.0;
                (vec![x1, x2], f(x1, x2))
            })
            .collect();
        let m1 = PolyModel::fit(&train, 1).unwrap();
        let m2 = PolyModel::fit(&train, 2).unwrap();
        let e1 = m1.mean_abs_error(&test).unwrap();
        let e2 = m2.mean_abs_error(&test).unwrap();
        assert!(e1 < e2, "1st order {e1} should beat 2nd order {e2}");
    }

    #[test]
    fn fit_error_cases() {
        assert!(PolyModel::fit(&[], 1).is_err());
        assert!(PolyModel::fit(&[(vec![], 1.0)], 1).is_err());
        assert!(PolyModel::fit(&[(vec![1.0], 1.0)], 3).is_err());
        // Too few samples for the coefficient count.
        assert!(PolyModel::fit(&[(vec![1.0, 2.0], 1.0)], 1).is_err());
        // Degenerate: all samples identical → singular.
        let dup = vec![(vec![1.0, 1.0], 1.0); 10];
        assert!(PolyModel::fit(&dup, 1).is_err());
        // Arity mismatch at predict.
        let m = PolyModel { inputs: 2, degree: 1, coefficients: vec![0.0, 1.0, 1.0] };
        assert!(m.predict(&[1.0]).is_err());
    }

    #[test]
    fn rule_latency_grows_with_window_and_thresholds() {
        let m = EstimationModel::default_paper_shaped();
        let small = m.rule_latency(RuleLoad { window: 1, thresholds: 10 }).unwrap();
        let big_window = m.rule_latency(RuleLoad { window: 1000, thresholds: 10 }).unwrap();
        let big_thr = m.rule_latency(RuleLoad { window: 1, thresholds: 5000 }).unwrap();
        assert!(big_window > small);
        assert!(big_thr > small);
    }

    #[test]
    fn engine_latency_folds_additively() {
        let m = EstimationModel::default_paper_shaped();
        assert_eq!(m.engine_latency(&[]).unwrap(), 0.0);
        let single = m.engine_latency(&[2.0]).unwrap();
        assert_eq!(single, 2.0, "single rule passes through");
        let double = m.engine_latency(&[2.0, 2.0]).unwrap();
        assert!(double > 3.0 && double < 5.0, "two rules ≈ additive, got {double}");
        let many = m.engine_latency(&[2.0; 8]).unwrap();
        assert!(many > double, "more rules, more latency");
    }

    #[test]
    fn node_colocation_inflates_latency() {
        let m = EstimationModel::default_paper_shaped();
        let alone = m.node_adjusted(&[3.0]).unwrap();
        assert!(close(alone[0], 3.0, 1e-9));
        let crowded = m.node_adjusted(&[3.0, 3.0, 3.0]).unwrap();
        for v in &crowded {
            assert!(*v > 3.0, "co-location must inflate, got {v}");
        }
    }

    #[test]
    fn estimate_full_pipeline() {
        let m = EstimationModel::default_paper_shaped();
        let engines = vec![
            vec![RuleLoad { window: 100, thresholds: 50 }; 2],
            vec![RuleLoad { window: 10, thresholds: 50 }],
            vec![RuleLoad { window: 1000, thresholds: 50 }],
        ];
        // Engines 0 and 2 share node 0; engine 1 is alone on node 1.
        let nodes = vec![vec![0, 2], vec![1]];
        let lat = m.estimate(&engines, &nodes).unwrap();
        assert_eq!(lat.len(), 3);
        // Bigger windows mean bigger latency even after adjustment.
        assert!(lat[2] > lat[1]);
        // Engine 1 alone on its node keeps its raw engine latency.
        let raw1 = m
            .engine_latency(&[m.rule_latency(RuleLoad { window: 10, thresholds: 50 }).unwrap()])
            .unwrap();
        assert!(close(lat[1], raw1, 1e-9));
        // Bad node reference.
        assert!(m.estimate(&engines, &[vec![9]]).is_err());
    }

    #[test]
    fn estimate_mean_averages_only_loaded_engines() {
        let m = EstimationModel::default_paper_shaped();
        let engines = vec![
            vec![RuleLoad { window: 100, thresholds: 50 }],
            Vec::new(), // placement slack: must not drag the mean down
            vec![RuleLoad { window: 100, thresholds: 50 }],
        ];
        let nodes = vec![vec![0, 1, 2]];
        let mean = m.estimate_mean(&engines, &nodes).unwrap();
        let per_engine = m.estimate(&engines, &nodes).unwrap();
        assert!(close(mean, (per_engine[0] + per_engine[2]) / 2.0, 1e-9));
        assert!(mean > 0.0);
        // All engines empty: nothing to predict.
        assert!(m.estimate_mean(&[Vec::new()], &[vec![0]]).is_err());
    }

    #[test]
    fn paper_f2_constants_behave() {
        // Sanity-check the published Function 2 against our fold: the
        // paper's own fitted constants, applied to two latencies.
        let f2 = PolyModel {
            inputs: 2,
            degree: 1,
            coefficients: vec![2.4717, 0.0077598, 2.3016e-5],
        };
        let v = f2.predict(&[10.0, 10.0]).unwrap();
        assert!(v > 2.4 && v < 2.7, "paper model is intercept-dominated: {v}");
    }
}
