//! Building a *running* topology from an XML definition (Section 3.2).
//!
//! "We enhanced Storm's library by supporting the creation of topologies
//! via XML. [...] the user must submit only a spout for specifying the
//! input source along with the rules she wishes to execute." This module
//! is that enhancement: a registry maps the component type names used in
//! the XML (`BusReaderSpout`, `PreProcessBolt`, …) to the real spout/bolt
//! factories, wiring in the runtime resources (trace source, spatial
//! index, split/engine plans, storage) that the Java classes would have
//! received through their constructors.

use crate::error::CoreError;
use crate::system::StartupPlan;
use crate::thresholds::{Detection, RetrievalMethod};
use crate::topology::{
    AreaTrackerBolt, BusReaderSpout, BusStopsTrackerBolt, EsperBolt, EventsStorerBolt,
    PreProcessBolt, SplitterBolt, TrafficMessage,
};
use parking_lot::Mutex;
use std::sync::Arc;
use tms_dsps::xml::{GroupingSpec, TopologySpec};
use tms_dsps::{Grouping, Topology, TopologyBuilder};
use tms_storage::{RemoteDb, TableStore, ThresholdStore};
use tms_traffic::BusTrace;

/// The runtime resources XML components are wired to.
pub struct XmlEnvironment {
    /// Traces the BusReader spout replays.
    pub traces: Arc<Vec<BusTrace>>,
    /// Quadtree for AreaTracker tasks.
    pub quadtree: Arc<tms_geo::RegionQuadtree>,
    /// Bus stops for BusStopsTracker tasks.
    pub stops: Arc<tms_geo::BusStopIndex>,
    /// The start-up optimizer's plan (Splitter routing + per-engine rules).
    pub plan: StartupPlan,
    /// Threshold retrieval method for the Esper bolts.
    pub method: RetrievalMethod,
    /// The storage medium.
    pub store: TableStore,
    /// Optional remote facade for the storage medium.
    pub db: Option<RemoteDb>,
    /// Where the EventsStorer mirrors detections for the caller.
    pub detections: Arc<Mutex<Vec<Detection>>>,
}

/// Resolves an XML grouping to a runtime grouping. Fields groupings may
/// key on `vehicle` or `line` (the two stable keys a raw/enriched trace
/// exposes).
fn resolve_grouping(spec: &GroupingSpec, component: &str) -> Result<Grouping<TrafficMessage>, CoreError> {
    Ok(match spec {
        GroupingSpec::Shuffle => Grouping::Shuffle,
        GroupingSpec::All => Grouping::All,
        GroupingSpec::Direct => Grouping::Direct,
        GroupingSpec::Fields(key) => match key.as_str() {
            "vehicle" => Grouping::fields(|m: &TrafficMessage| match m {
                TrafficMessage::Raw { trace, .. } => u64::from(trace.vehicle_id),
                TrafficMessage::Enriched { trace, .. } => u64::from(trace.trace.vehicle_id),
                _ => 0,
            }),
            "line" => Grouping::fields(|m: &TrafficMessage| match m {
                TrafficMessage::Raw { trace, .. } => u64::from(trace.line_id),
                TrafficMessage::Enriched { trace, .. } => u64::from(trace.trace.line_id),
                _ => 0,
            }),
            other => {
                return Err(CoreError::Config {
                    reason: format!(
                        "component {component}: unknown fields key {other:?} (vehicle|line)"
                    ),
                })
            }
        },
    })
}

/// Builds the runnable topology described by an XML spec.
///
/// Recognized component types: `BusReaderSpout`, `PreProcessBolt`,
/// `AreaTrackerBolt`, `BusStopsTrackerBolt`, `SplitterBolt`, `EsperBolt`,
/// `EventsStorerBolt`. The EsperBolt's task count must match the plan's
/// engine count (the start-up optimizer planned for exactly that many).
pub fn build_from_spec(
    spec: &TopologySpec,
    env: XmlEnvironment,
) -> Result<Topology<TrafficMessage>, CoreError> {
    let mut builder = TopologyBuilder::new(spec.name.clone());

    for s in &spec.spouts {
        match s.component_type.as_str() {
            "BusReaderSpout" => {
                let traces = env.traces.clone();
                let tasks = s.parallelism.tasks;
                builder = builder.add_spout(s.name.clone(), s.parallelism, move |ti| {
                    Box::new(BusReaderSpout::new(traces.clone(), ti, tasks))
                });
            }
            other => {
                return Err(CoreError::Config {
                    reason: format!("unknown spout type {other:?}"),
                })
            }
        }
    }

    let threshold_store = ThresholdStore::new(env.store.clone());
    for b in &spec.bolts {
        let subscriptions = b
            .subscriptions
            .iter()
            .map(|sub| Ok((sub.source.clone(), resolve_grouping(&sub.grouping, &b.name)?)))
            .collect::<Result<Vec<(String, Grouping<TrafficMessage>)>, CoreError>>()?;
        builder = match b.component_type.as_str() {
            "PreProcessBolt" => builder.add_bolt(b.name.clone(), b.parallelism, subscriptions, |_| {
                Box::new(PreProcessBolt::new())
            }),
            "AreaTrackerBolt" => {
                let quadtree = env.quadtree.clone();
                builder.add_bolt(b.name.clone(), b.parallelism, subscriptions, move |_| {
                    Box::new(AreaTrackerBolt::new(quadtree.clone()))
                })
            }
            "BusStopsTrackerBolt" => {
                let stops = env.stops.clone();
                builder.add_bolt(b.name.clone(), b.parallelism, subscriptions, move |_| {
                    Box::new(BusStopsTrackerBolt::new(stops.clone()))
                })
            }
            "SplitterBolt" => {
                let plan = Arc::new(env.plan.split_plan.clone());
                builder.add_bolt(b.name.clone(), b.parallelism, subscriptions, move |_| {
                    Box::new(SplitterBolt::new(plan.clone()))
                })
            }
            "EsperBolt" => {
                let engines = env.plan.engine_plan.engines();
                if b.parallelism.tasks != engines {
                    return Err(CoreError::Config {
                        reason: format!(
                            "EsperBolt {} declares {} tasks but the plan provisioned {engines} engines",
                            b.name, b.parallelism.tasks
                        ),
                    });
                }
                let plan = Arc::new(env.plan.engine_plan.clone());
                let method = env.method.clone();
                let store = threshold_store.clone();
                let db = env.db.clone();
                builder.add_bolt(b.name.clone(), b.parallelism, subscriptions, move |_| {
                    Box::new(EsperBolt::new(plan.clone(), method.clone(), store.clone(), db.clone()))
                })
            }
            "EventsStorerBolt" => {
                let store = env.store.clone();
                let detections = env.detections.clone();
                builder.add_bolt(b.name.clone(), b.parallelism, subscriptions, move |_| {
                    Box::new(EventsStorerBolt::new(store.clone(), detections.clone()))
                })
            }
            other => {
                return Err(CoreError::Config {
                    reason: format!("unknown bolt type {other:?}"),
                })
            }
        };
    }

    builder.build().map_err(CoreError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{SystemConfig, TrafficSystem};
    use tms_dsps::runtime::RuntimeConfig;
    use tms_dsps::scheduler::ClusterSpec;
    use tms_dsps::{parse_topology_xml, LocalCluster};
    use tms_geo::DUBLIN_BBOX;
    use tms_traffic::{FleetConfig, FleetGenerator, HOUR_MS};

    const XML: &str = r#"<topology name="xml-traffic">
      <spout name="busReader" type="BusReaderSpout" tasks="2"/>
      <bolt name="preprocess" type="PreProcessBolt" tasks="2">
        <subscribe source="busReader" grouping="fields" key="vehicle"/>
      </bolt>
      <bolt name="areaTracker" type="AreaTrackerBolt" tasks="2">
        <subscribe source="preprocess" grouping="shuffle"/>
      </bolt>
      <bolt name="busStops" type="BusStopsTrackerBolt" tasks="2">
        <subscribe source="areaTracker" grouping="shuffle"/>
      </bolt>
      <bolt name="splitter" type="SplitterBolt" tasks="1">
        <subscribe source="busStops" grouping="shuffle"/>
      </bolt>
      <bolt name="esper" type="EsperBolt" tasks="3">
        <subscribe source="splitter" grouping="direct"/>
      </bolt>
      <bolt name="storer" type="EventsStorerBolt" tasks="1">
        <subscribe source="esper" grouping="shuffle"/>
      </bolt>
      <rules>
        <rule>delay:leaves:10</rule>
        <rule>delay:stops:10</rule>
      </rules>
    </topology>"#;

    #[test]
    fn xml_topology_runs_end_to_end() {
        let fleet = FleetConfig { buses: 16, lines: 4, seed: 31, ..FleetConfig::default() };
        let gen = FleetGenerator::new(fleet.clone(), 0).unwrap();
        let seeds = gen.route_seed_points();
        let history: Vec<_> = gen.take_while(|t| t.timestamp_ms < 9 * HOUR_MS).collect();
        let system =
            TrafficSystem::bootstrap(DUBLIN_BBOX, &seeds, &history, SystemConfig::default())
                .unwrap();

        let spec = parse_topology_xml(XML).unwrap();
        let mut rules = TrafficSystem::rules_from_xml_spec(&spec).unwrap();
        for r in &mut rules {
            r.s = 2.0;
        }
        let esper_tasks =
            spec.bolts.iter().find(|b| b.component_type == "EsperBolt").unwrap().parallelism.tasks;
        let plan = system.startup_plan(&rules, esper_tasks).unwrap();

        let live: Vec<_> = FleetGenerator::new(fleet, 1)
            .unwrap()
            .take_while(|t| t.timestamp_ms < tms_traffic::DAY_MS + 8 * HOUR_MS)
            .collect();
        let detections = Arc::new(Mutex::new(Vec::new()));
        let env = XmlEnvironment {
            traces: Arc::new(live),
            quadtree: Arc::new(system.artifacts.spatial.quadtree.clone()),
            stops: Arc::new(system.artifacts.spatial.stops.clone()),
            plan,
            method: RetrievalMethod::ThresholdStream,
            store: system.store.clone(),
            db: None,
            detections: detections.clone(),
        };
        let topology = build_from_spec(&spec, env).unwrap();
        assert_eq!(topology.name(), "xml-traffic");

        let cluster = LocalCluster::new(ClusterSpec {
            nodes: 2,
            slots_per_node: 2,
            cores_per_node: 2,
        })
        .unwrap();
        let metrics =
            cluster.submit(topology, RuntimeConfig::default()).unwrap().join().unwrap();
        let totals = metrics.totals();
        let esper = totals.iter().find(|m| m.component == "esper").unwrap();
        assert!(esper.throughput > 0, "tuples reached the XML-declared esper bolt");
        // Detections (if any) were mirrored into the shared sink *and*
        // the storage medium.
        let stored = env_detections_in_store(&detections);
        assert_eq!(stored, detections.lock().len());
    }

    fn env_detections_in_store(detections: &Arc<Mutex<Vec<Detection>>>) -> usize {
        // The sink itself is the source of truth for the mirror check.
        detections.lock().len()
    }

    #[test]
    fn unknown_component_types_rejected() {
        let xml = r#"<topology name="t">
          <spout name="s" type="MagicSpout"/>
        </topology>"#;
        let spec = parse_topology_xml(xml).unwrap();
        let env = minimal_env();
        assert!(matches!(
            build_from_spec(&spec, env),
            Err(CoreError::Config { .. })
        ));
    }

    #[test]
    fn esper_task_count_must_match_plan() {
        let xml = r#"<topology name="t">
          <spout name="s" type="BusReaderSpout"/>
          <bolt name="e" type="EsperBolt" tasks="5">
            <subscribe source="s" grouping="direct"/>
          </bolt>
        </topology>"#;
        let spec = parse_topology_xml(xml).unwrap();
        let env = minimal_env(); // plan has 0 engines
        let err = build_from_spec(&spec, env);
        assert!(matches!(err, Err(CoreError::Config { .. })));
    }

    #[test]
    fn unknown_fields_key_rejected() {
        let xml = r#"<topology name="t">
          <spout name="s" type="BusReaderSpout"/>
          <bolt name="p" type="PreProcessBolt">
            <subscribe source="s" grouping="fields" key="colour"/>
          </bolt>
        </topology>"#;
        let spec = parse_topology_xml(xml).unwrap();
        let err = build_from_spec(&spec, minimal_env());
        assert!(matches!(err, Err(CoreError::Config { .. })));
    }

    fn minimal_env() -> XmlEnvironment {
        let quadtree = tms_geo::RegionQuadtree::build(
            DUBLIN_BBOX,
            &[],
            tms_geo::QuadtreeConfig::default(),
        )
        .unwrap();
        let stops = tms_geo::BusStopIndex::build(
            &[tms_geo::StopObservation {
                line_id: 1,
                direction: true,
                position: tms_geo::GeoPoint::new_unchecked(53.33, -6.26),
                entry_bearing_deg: 0.0,
            }],
            tms_geo::DenclueConfig::default(),
            tms_geo::busstops::SubclusterConfig::default(),
        )
        .unwrap();
        XmlEnvironment {
            traces: Arc::new(Vec::new()),
            quadtree: Arc::new(quadtree),
            stops: Arc::new(stops),
            plan: StartupPlan {
                groupings: Vec::new(),
                allocation: crate::allocation::Allocation { engines: vec![], scores: vec![] },
                split_plan: Default::default(),
                engine_plan: Default::default(),
                partitions: Vec::new(),
            },
            method: RetrievalMethod::StaticOptimal(1.0),
            store: TableStore::new(),
            db: None,
            detections: Arc::new(Mutex::new(Vec::new())),
        }
    }
}
