//! Error type for the core system, wrapping each substrate's errors.

use std::fmt;

/// Errors produced by the core system.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Spatial substrate error.
    Geo(tms_geo::GeoError),
    /// Storage medium error.
    Storage(tms_storage::StorageError),
    /// Batch layer error.
    Batch(tms_batch::BatchError),
    /// CEP engine error.
    Cep(tms_cep::CepError),
    /// Stream processing runtime error.
    Dsps(tms_dsps::DspsError),
    /// Traffic substrate error.
    Traffic(tms_traffic::TrafficError),
    /// Regression / estimation error.
    Model {
        /// What went wrong.
        reason: String,
    },
    /// Rule specification error.
    Rule {
        /// What went wrong.
        reason: String,
    },
    /// System configuration error.
    Config {
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Geo(e) => write!(f, "geo: {e}"),
            CoreError::Storage(e) => write!(f, "storage: {e}"),
            CoreError::Batch(e) => write!(f, "batch: {e}"),
            CoreError::Cep(e) => write!(f, "cep: {e}"),
            CoreError::Dsps(e) => write!(f, "dsps: {e}"),
            CoreError::Traffic(e) => write!(f, "traffic: {e}"),
            CoreError::Model { reason } => write!(f, "estimation model: {reason}"),
            CoreError::Rule { reason } => write!(f, "rule: {reason}"),
            CoreError::Config { reason } => write!(f, "configuration: {reason}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Geo(e) => Some(e),
            CoreError::Storage(e) => Some(e),
            CoreError::Batch(e) => Some(e),
            CoreError::Cep(e) => Some(e),
            CoreError::Dsps(e) => Some(e),
            CoreError::Traffic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<tms_geo::GeoError> for CoreError {
    fn from(e: tms_geo::GeoError) -> Self {
        CoreError::Geo(e)
    }
}
impl From<tms_storage::StorageError> for CoreError {
    fn from(e: tms_storage::StorageError) -> Self {
        CoreError::Storage(e)
    }
}
impl From<tms_batch::BatchError> for CoreError {
    fn from(e: tms_batch::BatchError) -> Self {
        CoreError::Batch(e)
    }
}
impl From<tms_cep::CepError> for CoreError {
    fn from(e: tms_cep::CepError) -> Self {
        CoreError::Cep(e)
    }
}
impl From<tms_dsps::DspsError> for CoreError {
    fn from(e: tms_dsps::DspsError) -> Self {
        CoreError::Dsps(e)
    }
}
impl From<tms_traffic::TrafficError> for CoreError {
    fn from(e: tms_traffic::TrafficError) -> Self {
        CoreError::Traffic(e)
    }
}
