//! The end-to-end traffic management system (Figure 3): off-line
//! computation → start-up optimization → on-line processing.

use crate::allocation::{best_grouping_allocation, round_robin, Allocation, Grouping};
use crate::error::CoreError;
use crate::latency::{EstimationModel, RuleLoad};
use crate::offline::{run_offline, OfflineArtifacts, OfflineConfig};
use crate::partitioning::partition_rule;
use crate::rules::{LocationSelector, RuleSpec, SpatialContext};
use crate::thresholds::{Detection, RetrievalMethod};
use crate::topology::{
    build_traffic_topology, EnginePlan, GroupingKind, GroupingRoute, SplitPlan,
    TopologyParallelism,
};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use tms_dsps::runtime::{ReliabilityConfig, RuntimeConfig};
use tms_dsps::scheduler::{Assignment, ClusterSpec};
use tms_dsps::{FaultConfig, LocalCluster, MonitorConfig};
use tms_geo::GeoPoint;
use tms_storage::TableStore;
use tms_traffic::BusTrace;

/// Allocation strategy for the start-up optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationStrategy {
    /// Algorithm 2 over the best layer grouping (the paper's approach).
    Proposed,
    /// Round-robin engines over per-layer groupings (Figure 11 baseline).
    RoundRobin,
}

/// Configuration of a system run.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// The (simulated) cluster to run on.
    pub cluster: ClusterSpec,
    /// How rules obtain their thresholds.
    pub method: RetrievalMethod,
    /// Off-line component parameters.
    pub offline: OfflineConfig,
    /// Start-up allocation strategy.
    pub strategy: AllocationStrategy,
    /// Metrics monitor window, if any.
    pub monitor: Option<MonitorConfig>,
    /// Parallelism of the non-Esper topology components.
    pub parallelism: TopologyParallelism,
    /// Whether the Esper engines use the incremental evaluation path
    /// (delta-maintained aggregates); `false` forces full-window rescans.
    pub incremental: bool,
    /// At-least-once delivery (acker + replay + supervised restarts).
    /// `None` keeps the default fail-fast, at-most-once runtime.
    pub reliability: Option<ReliabilityConfig>,
    /// Fault injection: wraps the Esper bolts in chaos wrappers and arms
    /// transport drops. `None` (the default) injects nothing.
    pub chaos: Option<FaultConfig>,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            cluster: ClusterSpec { nodes: 2, slots_per_node: 2, cores_per_node: 2 },
            method: RetrievalMethod::ThresholdStream,
            offline: OfflineConfig::default(),
            strategy: AllocationStrategy::Proposed,
            monitor: None,
            parallelism: TopologyParallelism::default(),
            incremental: true,
            reliability: None,
            chaos: None,
        }
    }
}

/// The start-up optimizer's output (Section 4.2).
#[derive(Debug, Clone)]
pub struct StartupPlan {
    /// The (possibly merged) rule groupings.
    pub groupings: Vec<Grouping>,
    /// Engines per grouping (Algorithm 2).
    pub allocation: Allocation,
    /// The Splitter bolt's routing plan (Algorithm 1).
    pub split_plan: SplitPlan,
    /// Per-engine rule/location assignments.
    pub engine_plan: EnginePlan,
}

/// One predicted-vs-observed latency comparison for a sampled monitor
/// window: does the Section 4.1.4 model (Figure 7) track what the Esper
/// engines actually did?
#[derive(Debug, Clone, PartialEq)]
pub struct DriftSample {
    /// Window start relative to topology start, in milliseconds.
    pub at_ms: f64,
    /// Window duration in milliseconds.
    pub len_ms: f64,
    /// Observed mean Esper processing latency per tuple in the window,
    /// milliseconds.
    pub observed_ms: f64,
    /// Mean per-engine latency the model predicts for the installed rules
    /// under the scheduler's node co-location, milliseconds.
    pub predicted_ms: f64,
    /// Drift ratio `observed / predicted`; 1.0 means the model is exact.
    pub ratio: f64,
    /// True for the shutdown flush window (shorter than a full period).
    pub partial: bool,
}

impl DriftSample {
    /// One JSON object, suitable for a JSON-Lines export.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"at_ms\":{:.3},\"len_ms\":{:.3},\"observed_ms\":{:.6},\"predicted_ms\":{:.6},\"ratio\":{:.6},\"partial\":{}}}",
            self.at_ms, self.len_ms, self.observed_ms, self.predicted_ms, self.ratio, self.partial
        )
    }
}

/// The outcome of an on-line run.
#[derive(Debug)]
pub struct RunReport {
    /// Detections in arrival order at the EventsStorer.
    pub detections: Vec<Detection>,
    /// Per-component lifetime metrics.
    pub metrics: Vec<tms_dsps::ComponentWindow>,
    /// Windowed metric history (only populated when a monitor ran).
    pub history: Vec<tms_dsps::ComponentWindow>,
    /// Per-window predicted-vs-observed Esper latency drift (only
    /// populated when the monitor ran with tracing enabled).
    pub drift: Vec<DriftSample>,
}

impl RunReport {
    /// The drift samples as JSON Lines (one object per window), the format
    /// the bench harness writes next to its `BENCH_*` snapshots.
    pub fn drift_jsonl(&self) -> String {
        let mut out = String::new();
        for d in &self.drift {
            out.push_str(&d.to_json_line());
            out.push('\n');
        }
        out
    }
}

/// The system facade.
pub struct TrafficSystem {
    /// Off-line computation outputs (spatial index, rates, thresholds).
    pub artifacts: OfflineArtifacts,
    /// The storage medium shared by every layer.
    pub store: TableStore,
    /// The latency estimation model driving the optimizer.
    pub model: EstimationModel,
    /// Run configuration.
    pub config: SystemConfig,
}

impl TrafficSystem {
    /// Runs the off-line component over historical traces and boots the
    /// system (Figure 3 arrows 1–4).
    pub fn bootstrap(
        bbox: tms_geo::BoundingBox,
        seeds: &[GeoPoint],
        history: &[BusTrace],
        config: SystemConfig,
    ) -> Result<Self, CoreError> {
        let store = TableStore::new();
        let artifacts = run_offline(bbox, seeds, history, &store, &config.offline)?;
        Ok(TrafficSystem {
            artifacts,
            store,
            model: EstimationModel::default_paper_shaped(),
            config,
        })
    }

    /// Replaces the estimation model (e.g. with one calibrated from real
    /// measurements).
    pub fn with_model(mut self, model: EstimationModel) -> Self {
        self.model = model;
        self
    }

    /// Number of threshold rows a rule would join with (Function 1's `t`).
    fn thresholds_for(&self, rule: &RuleSpec) -> usize {
        let q = tms_storage::ThresholdQuery {
            attribute: rule.attribute.name().into(),
            s: rule.s,
        };
        self.artifacts.thresholds.thresholds(&q).map(|rows| rows.len()).unwrap_or(0)
    }

    /// Builds per-layer groupings from the rule set: rules sharing a
    /// layer key form one grouping, partitioned at that layer.
    pub fn layer_groupings(&self, rules: &[RuleSpec]) -> Result<Vec<Grouping>, CoreError> {
        if rules.is_empty() {
            return Err(CoreError::Config { reason: "no rules given".into() });
        }
        let quadtree = &self.artifacts.spatial.quadtree;
        let mut by_layer: HashMap<u8, Vec<RuleSpec>> = HashMap::new();
        for r in rules {
            r.validate()?;
            by_layer.entry(r.location.layer_key(quadtree)).or_default().push(r.clone());
        }
        let mut layers: Vec<u8> = by_layer.keys().copied().collect();
        layers.sort_unstable();
        let stops_layer = quadtree.max_layer() + 1;
        let mut out = Vec::new();
        for layer in layers {
            let rules = by_layer.remove(&layer).expect("key exists");
            let selector = if layer == stops_layer {
                LocationSelector::BusStops
            } else {
                LocationSelector::QuadtreeLayer(layer)
            };
            let regions = self.artifacts.rates_for(&selector);
            let thresholds = rules.iter().map(|r| self.thresholds_for(r)).collect();
            out.push(Grouping {
                name: if layer == stops_layer {
                    "bus-stops".to_string()
                } else {
                    format!("layer-{layer}")
                },
                layers: vec![layer],
                rules,
                regions,
                thresholds,
            });
        }
        Ok(out)
    }

    /// The start-up optimization component (Section 4.2): groups, scores,
    /// allocates, partitions and plans routing for `engines` engines.
    pub fn startup_plan(
        &self,
        rules: &[RuleSpec],
        engines: usize,
    ) -> Result<StartupPlan, CoreError> {
        let layer_groups = self.layer_groupings(rules)?;
        let (groupings, allocation) = match self.config.strategy {
            AllocationStrategy::Proposed => {
                best_grouping_allocation(&self.model, &layer_groups, engines)?
            }
            AllocationStrategy::RoundRobin => {
                let a = round_robin(&layer_groups, engines)?;
                (layer_groups, a)
            }
        };
        self.plan_from_allocation(rules, &groupings, &allocation)
    }

    /// Builds split and engine plans from an explicit allocation.
    pub fn plan_from_allocation(
        &self,
        _rules: &[RuleSpec],
        groupings: &[Grouping],
        allocation: &Allocation,
    ) -> Result<StartupPlan, CoreError> {
        let spatial = &self.artifacts.spatial;
        let stops_layer = spatial.quadtree.max_layer() + 1;
        let offsets = allocation.offsets();
        let total_engines: usize = allocation.engines.iter().sum();

        let mut routes = Vec::new();
        let mut per_engine: Vec<Vec<(RuleSpec, Vec<String>)>> = vec![Vec::new(); total_engines];

        for (gi, grouping) in groupings.iter().enumerate() {
            let k = allocation.engines[gi];
            let offset = offsets[gi];
            let partition = partition_rule(&grouping.regions, k)?;
            // Routing: partition region → global engine index.
            let partition_layer = *grouping.layers.iter().min().expect("grouping has layers");
            let kind = if partition_layer == stops_layer {
                GroupingKind::BusStops
            } else {
                GroupingKind::QuadtreeLayer(partition_layer)
            };
            let mut table = HashMap::new();
            for (e, regions) in partition.assignments.iter().enumerate() {
                for r in regions {
                    table.insert(r.clone(), offset + e);
                }
            }
            routes.push(GroupingRoute { kind, table });

            // Engine plan: each engine runs every rule of the grouping,
            // monitoring the rule's locations that fall under the engine's
            // partition share.
            for (e, partition_regions) in partition.assignments.iter().enumerate() {
                let engine_idx = offset + e;
                for rule in &grouping.rules {
                    let locations = self.rule_locations_under(
                        rule,
                        partition_regions,
                        partition_layer,
                        stops_layer,
                    );
                    if !locations.is_empty() {
                        per_engine[engine_idx].push((rule.clone(), locations));
                    }
                }
            }
        }
        Ok(StartupPlan {
            groupings: groupings.to_vec(),
            allocation: allocation.clone(),
            split_plan: SplitPlan { routes },
            engine_plan: EnginePlan { per_engine },
        })
    }

    /// The locations of `rule` that lie under the given partition-layer
    /// regions.
    fn rule_locations_under(
        &self,
        rule: &RuleSpec,
        partition_regions: &[String],
        partition_layer: u8,
        stops_layer: u8,
    ) -> Vec<String> {
        let spatial = &self.artifacts.spatial;
        let quadtree = &spatial.quadtree;
        let owned: std::collections::HashSet<&str> =
            partition_regions.iter().map(String::as_str).collect();
        let covered = |location: &str| -> bool {
            if partition_layer == stops_layer {
                // Stop groupings partition stops directly.
                return owned.contains(location);
            }
            // Quadtree location: walk ancestors until the partition layer.
            if let Some(stripped) = location.strip_prefix('R') {
                let Ok(idx) = stripped.parse::<u32>() else { return false };
                let mut region = quadtree.region(tms_geo::RegionId(idx));
                while let Some(r) = region {
                    if owned.contains(SpatialContext::region_id(r.id).as_str()) {
                        return true;
                    }
                    region = r.parent.and_then(|p| quadtree.region(p));
                }
                return false;
            }
            // A bus stop inside a quadtree grouping: locate its region.
            // Recovered stop centroids can drift a few metres past the
            // city bounding box (GPS noise); clamp before locating so
            // every stop belongs to exactly one engine.
            if let Some(stripped) = location.strip_prefix('S') {
                let Ok(sid) = stripped.parse::<u32>() else { return false };
                let Some(stop) = spatial.stops.stop(sid) else { return false };
                let bb = quadtree.bbox();
                let p = tms_geo::GeoPoint {
                    lat: stop.location.lat.clamp(bb.min_lat, bb.max_lat),
                    lon: stop.location.lon.clamp(bb.min_lon, bb.max_lon),
                };
                return quadtree
                    .locate_all_layers(&p)
                    .iter()
                    .any(|r| owned.contains(SpatialContext::region_id(r.id).as_str()));
            }
            false
        };
        spatial
            .resolve(&rule.location)
            .into_iter()
            .filter(|l| covered(l))
            .collect()
    }

    /// The on-line component: builds the Figure 8 topology and replays the
    /// traces through it to completion.
    pub fn run(
        &self,
        traces: Vec<BusTrace>,
        plan: &StartupPlan,
        db: Option<tms_storage::RemoteDb>,
    ) -> Result<RunReport, CoreError> {
        let detections = Arc::new(Mutex::new(Vec::new()));
        let mut parallelism = self.config.parallelism;
        parallelism.esper_tasks = plan.engine_plan.engines().max(1);
        let topology = build_traffic_topology(
            Arc::new(traces),
            Arc::new(self.artifacts.spatial.quadtree.clone()),
            Arc::new(self.artifacts.spatial.stops.clone()),
            Arc::new(plan.split_plan.clone()),
            Arc::new(plan.engine_plan.clone()),
            self.config.method.clone(),
            self.store.clone(),
            db,
            detections.clone(),
            parallelism,
            self.config.incremental,
            self.config.chaos,
        )?;
        let cluster = LocalCluster::new(self.config.cluster)?;
        let handle = cluster.submit(
            topology,
            RuntimeConfig {
                monitor: self.config.monitor,
                reliability: self.config.reliability,
                fault: self.config.chaos,
                ..RuntimeConfig::default()
            },
        )?;
        let assignment = handle.assignment().clone();
        let metrics = handle.join()?;
        let history = metrics.history();
        let drift = self.drift_samples(plan, &assignment, &history);
        let report = RunReport {
            detections: std::mem::take(&mut detections.lock()),
            metrics: metrics.totals(),
            history,
            drift,
        };
        Ok(report)
    }

    /// The Figure 7 prediction for the Esper component as planned and
    /// scheduled: rule loads per engine from the startup plan, node
    /// co-location from the runtime assignment (esper task `i` runs
    /// engine `i`). Returns the mean predicted per-engine latency in ms.
    pub fn predicted_esper_latency_ms(
        &self,
        plan: &StartupPlan,
        assignment: &Assignment,
    ) -> Result<f64, CoreError> {
        let engines: Vec<Vec<RuleLoad>> = plan
            .engine_plan
            .per_engine
            .iter()
            .map(|rules| {
                rules
                    .iter()
                    .map(|(spec, _)| RuleLoad {
                        window: spec.window_length,
                        thresholds: self.thresholds_for(spec),
                    })
                    .collect()
            })
            .collect();
        let mut by_node: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for p in assignment.component_placements("esper") {
            by_node
                .entry(p.node)
                .or_default()
                .extend(p.tasks.iter().copied().filter(|&t| t < engines.len()));
        }
        let nodes: Vec<Vec<usize>> = by_node.into_values().collect();
        self.model.estimate_mean(&engines, &nodes)
    }

    /// Predicted-vs-observed drift per sampled Esper window, when the
    /// monitor ran with tracing. Prediction failures (e.g. a plan with no
    /// loaded engine) disable drift rather than failing the run.
    fn drift_samples(
        &self,
        plan: &StartupPlan,
        assignment: &Assignment,
        history: &[tms_dsps::ComponentWindow],
    ) -> Vec<DriftSample> {
        if !self.config.monitor.is_some_and(|m| m.tracing) {
            return Vec::new();
        }
        let predicted = match self.predicted_esper_latency_ms(plan, assignment) {
            Ok(p) if p > 0.0 => p,
            _ => return Vec::new(),
        };
        history
            .iter()
            .filter(|w| w.component == "esper")
            .filter_map(|w| {
                let observed = w.avg_latency?.as_secs_f64() * 1e3;
                Some(DriftSample {
                    at_ms: w.at.as_secs_f64() * 1e3,
                    len_ms: w.len.as_secs_f64() * 1e3,
                    observed_ms: observed,
                    predicted_ms: predicted,
                    ratio: observed / predicted,
                    partial: w.partial,
                })
            })
            .collect()
    }

    /// Convenience: bootstrap + plan + run with Algorithm 2, returning
    /// the plan and the report.
    pub fn plan_and_run(
        &self,
        traces: Vec<BusTrace>,
        rules: &[RuleSpec],
        engines: usize,
    ) -> Result<(StartupPlan, RunReport), CoreError> {
        let plan = self.startup_plan(rules, engines)?;
        let report = self.run(traces, &plan, None)?;
        Ok((plan, report))
    }

    /// Re-runs the statistics job over fresh history and republishes the
    /// thresholds (the periodic dynamic-rules path; engines pick the new
    /// snapshot up via `RuleEngine::refresh_thresholds` or at the next
    /// run's install).
    pub fn recompute_statistics(&mut self, history: &[BusTrace]) -> Result<(), CoreError> {
        let artifacts = run_offline(
            self.artifacts.spatial.quadtree.bbox(),
            &[],
            history,
            &self.store,
            &self.config.offline,
        );
        // Keep the original spatial index (regions must stay stable for
        // running rules); only refresh rates. The statistics tables were
        // republished by run_offline into the shared store.
        match artifacts {
            Ok(a) => {
                self.artifacts.region_rates = a.region_rates;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Builds a rule set and engine count from a parsed XML topology spec
    /// (the `<rules>` section carries raw EPL, which our generic template
    /// cannot reverse; XML rules therefore use the template's textual
    /// form: `attribute:location:window`, e.g. `delay:leaves:100`).
    pub fn rules_from_xml_spec(
        spec: &tms_dsps::TopologySpec,
    ) -> Result<Vec<RuleSpec>, CoreError> {
        let mut out = Vec::new();
        for (i, text) in spec.rules.iter().enumerate() {
            out.push(parse_rule_shorthand(text, i)?);
        }
        Ok(out)
    }
}

/// Parses the XML shorthand `attribute:location:window[:weight]` where
/// location is `leaves`, `stops`, or `layerN`.
pub fn parse_rule_shorthand(text: &str, index: usize) -> Result<RuleSpec, CoreError> {
    let parts: Vec<&str> = text.trim().split(':').collect();
    if !(parts.len() == 3 || parts.len() == 4) {
        return Err(CoreError::Rule {
            reason: format!("rule {index}: expected attribute:location:window[:weight], got {text:?}"),
        });
    }
    let attribute = tms_traffic::Attribute::parse(parts[0]).ok_or_else(|| CoreError::Rule {
        reason: format!("rule {index}: unknown attribute {:?}", parts[0]),
    })?;
    let location = match parts[1] {
        "leaves" => LocationSelector::QuadtreeLeaves,
        "stops" => LocationSelector::BusStops,
        other => match other.strip_prefix("layer") {
            Some(n) => LocationSelector::QuadtreeLayer(n.parse().map_err(|_| CoreError::Rule {
                reason: format!("rule {index}: bad layer {other:?}"),
            })?),
            None => {
                return Err(CoreError::Rule {
                    reason: format!("rule {index}: unknown location {other:?}"),
                })
            }
        },
    };
    let window: usize = parts[2].parse().map_err(|_| CoreError::Rule {
        reason: format!("rule {index}: bad window {:?}", parts[2]),
    })?;
    let mut rule = RuleSpec::new(
        format!("xml-rule-{index}-{}", parts[0]),
        attribute,
        location,
        window,
    );
    if let Some(w) = parts.get(3) {
        rule.weight = w.parse().map_err(|_| CoreError::Rule {
            reason: format!("rule {index}: bad weight {w:?}"),
        })?;
    }
    rule.validate()?;
    Ok(rule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_geo::DUBLIN_BBOX;
    use tms_traffic::{Attribute, FleetConfig, FleetGenerator, HOUR_MS};

    fn small_history() -> (Vec<BusTrace>, Vec<GeoPoint>) {
        let g = FleetGenerator::new(FleetConfig::small(17), 0).unwrap();
        let seeds = g.route_seed_points();
        let traces: Vec<BusTrace> =
            g.take_while(|t| t.timestamp_ms < 9 * HOUR_MS).collect();
        (traces, seeds)
    }

    fn system() -> TrafficSystem {
        let (history, seeds) = small_history();
        TrafficSystem::bootstrap(DUBLIN_BBOX, &seeds, &history, SystemConfig::default()).unwrap()
    }

    fn rules() -> Vec<RuleSpec> {
        let mut r1 = RuleSpec::new(
            "delay-leaves",
            Attribute::Delay,
            LocationSelector::QuadtreeLeaves,
            10,
        );
        r1.s = 0.5;
        let mut r2 =
            RuleSpec::new("delay-stops", Attribute::Delay, LocationSelector::BusStops, 10);
        r2.s = 0.5;
        vec![r1, r2]
    }

    #[test]
    fn startup_plan_covers_every_engine_and_location() {
        let sys = system();
        let plan = sys.startup_plan(&rules(), 4).unwrap();
        assert_eq!(plan.allocation.engines.iter().sum::<usize>(), 4);
        assert_eq!(plan.engine_plan.engines(), 4);
        // Every rule's every location is monitored by exactly one engine.
        for rule in rules() {
            let mut seen: HashMap<String, usize> = HashMap::new();
            for engine_rules in &plan.engine_plan.per_engine {
                for (spec, locations) in engine_rules {
                    if spec.name == rule.name {
                        for l in locations {
                            *seen.entry(l.clone()).or_default() += 1;
                        }
                    }
                }
            }
            let expected = sys.artifacts.spatial.resolve(&rule.location);
            for l in &expected {
                assert_eq!(
                    seen.get(l).copied().unwrap_or(0),
                    1,
                    "location {l} of rule {} must be monitored exactly once",
                    rule.name
                );
            }
        }
        // Split plan has one route per grouping.
        assert_eq!(plan.split_plan.routes.len(), plan.groupings.len());
    }

    #[test]
    fn end_to_end_run_detects_incidents() {
        let (history, seeds) = small_history();
        let sys =
            TrafficSystem::bootstrap(DUBLIN_BBOX, &seeds, &history, SystemConfig::default())
                .unwrap();
        // Live traffic: day 1 with a severe incident in the city centre.
        let cfg = FleetConfig::small(17);
        let probe = FleetGenerator::new(cfg.clone(), 1).unwrap();
        let center = probe.routes()[0].points[probe.routes()[0].points.len() / 2];
        let incident = tms_traffic::Incident {
            center,
            radius_m: 1500.0,
            start_ms: tms_traffic::DAY_MS + 7 * HOUR_MS,
            end_ms: tms_traffic::DAY_MS + 9 * HOUR_MS,
            severity: 0.03,
        };
        let live: Vec<BusTrace> =
            FleetGenerator::with_incidents(cfg, 1, vec![incident])
                .unwrap()
                .take_while(|t| t.timestamp_ms < tms_traffic::DAY_MS + 9 * HOUR_MS)
                .collect();
        let (plan, report) = sys.plan_and_run(live, &rules(), 3).unwrap();
        assert_eq!(plan.engine_plan.engines(), 3);
        assert!(
            !report.detections.is_empty(),
            "a severe incident must trigger detections"
        );
        // Detections were also persisted to the storage medium.
        let stored = sys
            .store
            .with_table("detected_events", |t| t.len())
            .unwrap();
        assert_eq!(stored, report.detections.len());
        // Metrics cover the esper component.
        assert!(report.metrics.iter().any(|m| m.component == "esper" && m.throughput > 0));
    }

    #[test]
    fn end_to_end_chaos_run_with_recovery_still_detects() {
        use std::time::Duration;
        let (history, seeds) = small_history();
        let config = SystemConfig {
            reliability: Some(tms_dsps::ReliabilityConfig {
                ack_timeout: Duration::from_millis(500),
                max_retries: 20,
                backoff: 1.5,
                max_pending: 256,
                max_task_restarts: 200,
            }),
            chaos: Some(tms_dsps::FaultConfig {
                panic_p: 0.002,
                drop_p: 0.002,
                delay: None,
                seed: 0x7EA_5EED,
            }),
            ..SystemConfig::default()
        };
        let sys = TrafficSystem::bootstrap(DUBLIN_BBOX, &seeds, &history, config).unwrap();
        let cfg = FleetConfig::small(17);
        let probe = FleetGenerator::new(cfg.clone(), 1).unwrap();
        let center = probe.routes()[0].points[probe.routes()[0].points.len() / 2];
        let incident = tms_traffic::Incident {
            center,
            radius_m: 1500.0,
            start_ms: tms_traffic::DAY_MS + 7 * HOUR_MS,
            end_ms: tms_traffic::DAY_MS + 9 * HOUR_MS,
            severity: 0.03,
        };
        let live: Vec<BusTrace> = FleetGenerator::with_incidents(cfg, 1, vec![incident])
            .unwrap()
            .take_while(|t| t.timestamp_ms < tms_traffic::DAY_MS + 9 * HOUR_MS)
            .collect();
        let (_, report) = sys.plan_and_run(live, &rules(), 3).unwrap();
        assert!(
            !report.detections.is_empty(),
            "the incident must still be detected under injected faults"
        );
        let reader = report
            .metrics
            .iter()
            .find(|m| m.component == "busReader")
            .expect("spout metrics present");
        assert!(reader.acked > 0, "reliability was on: roots must be acked");
        assert_eq!(reader.failed, 0, "no root may exhaust its replay budget");
    }

    #[test]
    fn tracing_run_reports_drift_against_the_model() {
        use std::time::Duration;
        let (history, seeds) = small_history();
        let config = SystemConfig {
            monitor: Some(MonitorConfig {
                window: Duration::from_millis(250),
                tracing: true,
                ..MonitorConfig::default()
            }),
            ..SystemConfig::default()
        };
        let sys = TrafficSystem::bootstrap(DUBLIN_BBOX, &seeds, &history, config).unwrap();
        let live: Vec<BusTrace> = FleetGenerator::new(FleetConfig::small(17), 1)
            .unwrap()
            .take_while(|t| t.timestamp_ms < tms_traffic::DAY_MS + 9 * HOUR_MS)
            .collect();
        let (_, report) = sys.plan_and_run(live, &rules(), 3).unwrap();
        // At least one Esper window compared observed against predicted.
        assert!(!report.drift.is_empty(), "tracing runs must produce drift samples");
        for d in &report.drift {
            assert!(d.observed_ms > 0.0);
            assert!(d.predicted_ms > 0.0);
            assert!(d.ratio.is_finite() && d.ratio > 0.0);
            assert!(d.len_ms > 0.0);
        }
        // The JSONL export round-trips the fields.
        let jsonl = report.drift_jsonl();
        assert_eq!(jsonl.lines().count(), report.drift.len());
        assert!(jsonl.contains("\"ratio\":"));
        // History windows chain: starts stamp window starts, the shutdown
        // flush is marked partial.
        let esper: Vec<_> =
            report.history.iter().filter(|w| w.component == "esper").collect();
        assert!(!esper.is_empty());
        assert!(esper.last().unwrap().partial, "the final flush window is partial");
        for pair in esper.windows(2) {
            assert_eq!(pair[0].at + pair[0].len, pair[1].at, "windows must chain");
        }
    }

    #[test]
    fn round_robin_strategy_changes_allocation() {
        let (history, seeds) = small_history();
        let sys = TrafficSystem::bootstrap(
            DUBLIN_BBOX,
            &seeds,
            &history,
            SystemConfig { strategy: AllocationStrategy::RoundRobin, ..SystemConfig::default() },
        )
        .unwrap();
        let plan = sys.startup_plan(&rules(), 5).unwrap();
        // Round-robin keeps per-layer groupings: 2 groupings → 3+2 split.
        assert_eq!(plan.groupings.len(), 2);
        assert_eq!(plan.allocation.engines, vec![3, 2]);
    }

    #[test]
    fn rule_shorthand_parsing() {
        let r = parse_rule_shorthand("delay:leaves:100", 0).unwrap();
        assert_eq!(r.attribute, Attribute::Delay);
        assert_eq!(r.window_length, 100);
        let r = parse_rule_shorthand("speed:stops:10:2.5", 1).unwrap();
        assert_eq!(r.location, LocationSelector::BusStops);
        assert_eq!(r.weight, 2.5);
        let r = parse_rule_shorthand("actual_delay:layer2:1", 2).unwrap();
        assert_eq!(r.location, LocationSelector::QuadtreeLayer(2));
        assert!(parse_rule_shorthand("bogus:leaves:10", 0).is_err());
        assert!(parse_rule_shorthand("delay:nowhere:10", 0).is_err());
        assert!(parse_rule_shorthand("delay:leaves", 0).is_err());
        assert!(parse_rule_shorthand("delay:leaves:0", 0).is_err());
    }

    #[test]
    fn empty_rules_rejected() {
        let sys = system();
        assert!(sys.startup_plan(&[], 2).is_err());
    }
}
