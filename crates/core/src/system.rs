//! The end-to-end traffic management system (Figure 3): off-line
//! computation → start-up optimization → on-line processing.

use crate::allocation::{best_grouping_allocation, round_robin, Allocation, Grouping};
use crate::error::CoreError;
use crate::latency::{EstimationModel, RuleLoad};
use crate::latency::PolyModel;
use crate::offline::{run_offline, OfflineArtifacts, OfflineConfig};
use crate::partitioning::{partition_rule, Partition, RegionRate};
use crate::rules::{LocationSelector, RuleSpec, SpatialContext};
use crate::thresholds::{Detection, RetrievalMethod};
use crate::topology::{
    build_traffic_topology, ElasticHandle, EnginePlan, EsperProfileRegistry, GroupingKind,
    GroupingRoute, MigrationMeta, SplitPlan, TopologyParallelism,
};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tms_dsps::runtime::{BatchConfig, ReliabilityConfig, RuntimeConfig};
use tms_dsps::scheduler::{Assignment, ClusterSpec};
use tms_dsps::{
    CriticalPathReport, FaultConfig, FlightEvent, FlightKind, FlightRecorder, LocalCluster,
    MonitorConfig,
};
use tms_geo::GeoPoint;
use tms_storage::TableStore;
use tms_traffic::BusTrace;

/// Allocation strategy for the start-up optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationStrategy {
    /// Algorithm 2 over the best layer grouping (the paper's approach).
    Proposed,
    /// Round-robin engines over per-layer groupings (Figure 11 baseline).
    RoundRobin,
}

/// Configuration of a system run.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// The (simulated) cluster to run on.
    pub cluster: ClusterSpec,
    /// How rules obtain their thresholds.
    pub method: RetrievalMethod,
    /// Off-line component parameters.
    pub offline: OfflineConfig,
    /// Start-up allocation strategy.
    pub strategy: AllocationStrategy,
    /// Metrics monitor window, if any.
    pub monitor: Option<MonitorConfig>,
    /// Parallelism of the non-Esper topology components.
    pub parallelism: TopologyParallelism,
    /// Whether the Esper engines use the incremental evaluation path
    /// (delta-maintained aggregates); `false` forces full-window rescans.
    pub incremental: bool,
    /// Whether the Esper engines run the cost-based sharing planner:
    /// same-shape rules collapse into clusters served from one shared
    /// window, accumulator bank, and keyed threshold index. `false`
    /// keeps every statement on private state (the pre-sharing layout).
    pub sharing: bool,
    /// At-least-once delivery (acker + replay + supervised restarts).
    /// `None` keeps the default fail-fast, at-most-once runtime.
    pub reliability: Option<ReliabilityConfig>,
    /// Fault injection: wraps the Esper bolts in chaos wrappers and arms
    /// transport drops. `None` (the default) injects nothing.
    pub chaos: Option<FaultConfig>,
    /// Data-plane micro-batching for the live topology. `None` (the
    /// default) keeps per-tuple delivery.
    pub batch: Option<BatchConfig>,
    /// Elastic rule re-partitioning: a rebalancer watches the splitter's
    /// observed per-region load and migrates rule partitions between live
    /// engines when the imbalance crosses the bound. `None` (the default)
    /// keeps the start-up assignment for the whole run.
    pub elastic: Option<ElasticConfig>,
    /// In-stream incremental statistics (the kappa path): a StatsBolt
    /// maintains the per-cell moments in the stream and refreshes engine
    /// thresholds without the batch round trip. `None` (the default)
    /// leaves thresholds to the offline bootstrap / batch layer.
    pub kappa: Option<crate::kappa::KappaConfig>,
    /// Durable bolt state (periodic snapshot + changelog per task);
    /// restarted tasks resume from disk instead of cold. `None` keeps
    /// all bolt state in memory.
    pub durability: Option<tms_dsps::DurabilityConfig>,
    /// Logical worker count the scheduler spreads executors over
    /// (placement modeling; the run itself stays in-process — spawning
    /// real worker processes is [`tms_dsps::DistributedCluster`]'s job).
    /// `None` derives the count from the cluster spec.
    pub workers: Option<usize>,
}

/// Configuration of the elastic rebalancer (the closed control loop over
/// the planner-drift observation: re-run Algorithm 1 on observed rates
/// and migrate state, no topology restart).
#[derive(Debug, Clone)]
pub struct ElasticConfig {
    /// Trigger threshold on the observed imbalance (max engine load over
    /// mean engine load, ≥ 1). Must exceed 1.
    pub imbalance_bound: f64,
    /// How often the rebalancer samples the observed per-region load.
    pub check_interval: Duration,
    /// Minimum time between rebalance decisions (lets a previous round's
    /// effect show in the observations before acting again).
    pub cooldown: Duration,
    /// How long the splitter waits for a drain barrier's deposit before
    /// aborting a migration.
    pub drain_timeout: Duration,
    /// Most region moves issued per rebalance decision (highest observed
    /// rate first).
    pub max_moves_per_cycle: usize,
    /// Minimum tuples observed in a grouping during a check interval
    /// before its imbalance is acted on (guards against deciding on
    /// start-up or tail noise).
    pub min_observed: u64,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        ElasticConfig {
            imbalance_bound: 2.0,
            check_interval: Duration::from_millis(200),
            cooldown: Duration::from_millis(400),
            drain_timeout: Duration::from_secs(5),
            max_moves_per_cycle: 4,
            min_observed: 200,
        }
    }
}

impl ElasticConfig {
    /// Validates the knobs.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !self.imbalance_bound.is_finite() || self.imbalance_bound <= 1.0 {
            return Err(CoreError::Config {
                reason: format!(
                    "elastic imbalance_bound must be a finite value above 1, got {}",
                    self.imbalance_bound
                ),
            });
        }
        if self.check_interval.is_zero() {
            return Err(CoreError::Config {
                reason: "elastic check_interval must be non-zero".into(),
            });
        }
        if self.max_moves_per_cycle == 0 {
            return Err(CoreError::Config {
                reason: "elastic max_moves_per_cycle must be at least 1".into(),
            });
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            cluster: ClusterSpec { nodes: 2, slots_per_node: 2, cores_per_node: 2 },
            method: RetrievalMethod::ThresholdStream,
            offline: OfflineConfig::default(),
            strategy: AllocationStrategy::Proposed,
            monitor: None,
            parallelism: TopologyParallelism::default(),
            incremental: true,
            sharing: true,
            reliability: None,
            chaos: None,
            batch: None,
            elastic: None,
            kappa: None,
            durability: None,
            workers: None,
        }
    }
}

/// The start-up optimizer's output (Section 4.2).
#[derive(Debug, Clone)]
pub struct StartupPlan {
    /// The (possibly merged) rule groupings.
    pub groupings: Vec<Grouping>,
    /// Engines per grouping (Algorithm 2).
    pub allocation: Allocation,
    /// The Splitter bolt's routing plan (Algorithm 1).
    pub split_plan: SplitPlan,
    /// Per-engine rule/location assignments.
    pub engine_plan: EnginePlan,
    /// Algorithm 1's partition per grouping (same order as `groupings`):
    /// the planned per-engine input rates the planner-drift report
    /// compares observed rates against.
    pub partitions: Vec<Partition>,
}

impl StartupPlan {
    /// Planned input rate per global engine index (tuples/s): the
    /// per-grouping [`Partition::rates`] flattened through the
    /// allocation's engine offsets.
    pub fn planned_engine_rates(&self) -> Vec<f64> {
        let total: usize = self.allocation.engines.iter().sum();
        let offsets = self.allocation.offsets();
        let mut rates = vec![0.0f64; total];
        for (gi, partition) in self.partitions.iter().enumerate() {
            let offset = offsets.get(gi).copied().unwrap_or(0);
            for (e, r) in partition.rates.iter().enumerate() {
                if let Some(slot) = rates.get_mut(offset + e) {
                    *slot += r;
                }
            }
        }
        rates
    }
}

/// One predicted-vs-observed latency comparison for a sampled monitor
/// window: does the Section 4.1.4 model (Figure 7) track what the Esper
/// engines actually did?
#[derive(Debug, Clone, PartialEq)]
pub struct DriftSample {
    /// Window start relative to topology start, in milliseconds.
    pub at_ms: f64,
    /// Window duration in milliseconds.
    pub len_ms: f64,
    /// Observed mean Esper processing latency per tuple in the window,
    /// milliseconds.
    pub observed_ms: f64,
    /// Mean per-engine latency the model predicts for the installed rules
    /// under the scheduler's node co-location, milliseconds.
    pub predicted_ms: f64,
    /// Drift ratio `observed / predicted`; 1.0 means the model is exact.
    pub ratio: f64,
    /// True for the shutdown flush window (shorter than a full period).
    pub partial: bool,
}

impl DriftSample {
    /// One JSON object, suitable for a JSON-Lines export.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"at_ms\":{:.3},\"len_ms\":{:.3},\"observed_ms\":{:.6},\"predicted_ms\":{:.6},\"ratio\":{:.6},\"partial\":{}}}",
            self.at_ms, self.len_ms, self.observed_ms, self.predicted_ms, self.ratio, self.partial
        )
    }
}

/// Planned-vs-observed view of one Esper engine over a profiled run.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineDrift {
    /// Global engine (esper task) index.
    pub engine: usize,
    /// Algorithm 1's expected input rate for the engine, tuples per
    /// *simulated* second (from the historical region rates).
    pub planned_rate: f64,
    /// Observed rate of events entering the engine's rule statements,
    /// events per *wall-clock* second (trace replay is unpaced). Absolute
    /// scale therefore differs from `planned_rate`; the comparable
    /// quantity is each engine's share, i.e. the imbalance ratios.
    pub observed_rate: f64,
    /// Per-tuple latency the estimation model predicts for the engine's
    /// planned rule loads under the scheduler's co-location, ms.
    pub predicted_latency_ms: f64,
    /// Observed mean statement-evaluation latency, ms (0 when the engine
    /// never evaluated).
    pub observed_latency_ms: f64,
}

/// Planned load and observed behaviour of one rule on one engine.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleObservedLoad {
    /// Rule name.
    pub rule: String,
    /// Global engine index running this copy of the rule.
    pub engine: usize,
    /// The planned load (window length, threshold rows) Function 1 was
    /// fed at start-up.
    pub load: RuleLoad,
    /// Last observed window occupancy (events held across the rule's
    /// statements).
    pub observed_window: u64,
    /// Observed mean evaluation latency, ms.
    pub observed_latency_ms: f64,
    /// Events that entered the rule's statements over the run.
    pub events_in: u64,
}

/// Outcome of feeding the run's observed (load, latency) samples back
/// into [`EstimationModel::calibrate`].
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    /// `(window, engine)` observation points the errors average over.
    pub samples: usize,
    /// Mean absolute error of the run's model (ms) against per-window
    /// observed engine latencies.
    pub mae_before_ms: f64,
    /// Mean absolute error of the recalibrated model (ms) on the same
    /// observations.
    pub mae_after_ms: f64,
}

/// The planner-drift report: how far the run drifted from what
/// Algorithm 1 (input rates) and the Section 4.1.4 estimation model
/// (latencies) planned, plus the online-recalibration outcome. Produced
/// when the monitor runs with profiling enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerDriftReport {
    /// One entry per planned engine.
    pub engines: Vec<EngineDrift>,
    /// Max/min planned engine rate (Algorithm 1's balance goal).
    pub imbalance_planned: f64,
    /// Max/min observed engine rate, over engines with planned load.
    pub imbalance_observed: f64,
    /// Per-(rule, engine) planned-vs-observed loads.
    pub rules: Vec<RuleObservedLoad>,
    /// Online recalibration outcome; `None` when the run produced too few
    /// or too degenerate samples to fit any model.
    pub calibration: Option<CalibrationReport>,
}

/// `null` for non-finite values (JSON has no Infinity).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl PlannerDriftReport {
    /// The report as one JSON object (the shape the bench harness embeds
    /// in its `BENCH_*` snapshots).
    pub fn to_json(&self) -> String {
        let engines: Vec<String> = self
            .engines
            .iter()
            .map(|e| {
                format!(
                    "{{\"engine\":{},\"planned_rate\":{},\"observed_rate\":{},\"predicted_latency_ms\":{},\"observed_latency_ms\":{}}}",
                    e.engine,
                    json_f64(e.planned_rate),
                    json_f64(e.observed_rate),
                    json_f64(e.predicted_latency_ms),
                    json_f64(e.observed_latency_ms),
                )
            })
            .collect();
        let rules: Vec<String> = self
            .rules
            .iter()
            .map(|r| {
                format!(
                    "{{\"rule\":{},\"engine\":{},\"window\":{},\"thresholds\":{},\"observed_window\":{},\"observed_latency_ms\":{},\"events_in\":{}}}",
                    json_str(&r.rule),
                    r.engine,
                    r.load.window,
                    r.load.thresholds,
                    r.observed_window,
                    json_f64(r.observed_latency_ms),
                    r.events_in,
                )
            })
            .collect();
        let calibration = match &self.calibration {
            Some(c) => format!(
                "{{\"samples\":{},\"mae_before_ms\":{},\"mae_after_ms\":{}}}",
                c.samples,
                json_f64(c.mae_before_ms),
                json_f64(c.mae_after_ms),
            ),
            None => "null".to_string(),
        };
        format!(
            "{{\"imbalance_planned\":{},\"imbalance_observed\":{},\"engines\":[{}],\"rules\":[{}],\"calibration\":{}}}",
            json_f64(self.imbalance_planned),
            json_f64(self.imbalance_observed),
            engines.join(","),
            rules.join(","),
            calibration,
        )
    }
}

/// The outcome of an on-line run.
#[derive(Debug)]
pub struct RunReport {
    /// Detections in arrival order at the EventsStorer.
    pub detections: Vec<Detection>,
    /// Per-component lifetime metrics.
    pub metrics: Vec<tms_dsps::ComponentWindow>,
    /// Windowed metric history (only populated when a monitor ran).
    pub history: Vec<tms_dsps::ComponentWindow>,
    /// Per-window predicted-vs-observed Esper latency drift (only
    /// populated when the monitor ran with tracing enabled).
    pub drift: Vec<DriftSample>,
    /// Planner drift and online-recalibration report (only populated when
    /// the monitor ran with profiling enabled and sampled rule profiles).
    pub planner: Option<PlannerDriftReport>,
    /// Elastic rebalancer outcome (only populated when
    /// [`SystemConfig::elastic`] was set): migration counts, routing pause
    /// durations, and pre/post imbalance.
    pub elastic: Option<tms_dsps::MigrationStats>,
    /// The control-plane flight recorder's event log: restarts,
    /// snapshots, migrations, rebalance cycles, statistics refreshes —
    /// always populated (the recorder is always on).
    pub events: Vec<FlightEvent>,
    /// Critical-path attribution over the sampled tuple trees (only
    /// populated when [`MonitorConfig::lineage`] was set).
    pub critical_path: Option<CriticalPathReport>,
    /// The sampled lineage spans themselves (only populated when
    /// [`MonitorConfig::lineage`] was set with `export: true`); feed to
    /// [`tms_dsps::lineage::summarize`] for connectivity checks.
    pub traces: Vec<tms_dsps::Span>,
    /// Task → component names for [`RunReport::traces`], so the spans can
    /// be rendered via [`tms_dsps::lineage::render_chrome_trace`] after
    /// the run.
    pub trace_components: std::collections::HashMap<u32, String>,
}

impl RunReport {
    /// The drift samples as JSON Lines (one object per window), the format
    /// the bench harness writes next to its `BENCH_*` snapshots.
    pub fn drift_jsonl(&self) -> String {
        let mut out = String::new();
        for d in &self.drift {
            out.push_str(&d.to_json_line());
            out.push('\n');
        }
        out
    }
}

/// Per-grouping facts the rebalancer needs, precomputed before the
/// control thread starts (resolving locations needs the spatial index,
/// which stays on the caller's side).
struct ElasticGroupingInfo {
    /// Global engine index of the grouping's first engine.
    offset: usize,
    /// Engines allocated to the grouping.
    engines: usize,
    /// Every routing key of the grouping, in planning order.
    regions: Vec<String>,
    /// Routing key → monitored location keys under it (union over the
    /// grouping's rules); the state a move of that key ships.
    locations: HashMap<String, Vec<String>>,
}

/// The rebalancer control loop: every `check_interval` it drains the
/// splitter's observed per-region counts, computes each grouping's
/// observed engine imbalance, and — when it crosses the bound with the
/// cooldown elapsed — re-runs Algorithm 1 on the observed rates and posts
/// the highest-rate route diffs as migration tickets. The splitter
/// executes them; this thread never touches engine state itself.
fn run_rebalancer(
    h: Arc<ElasticHandle>,
    cfg: ElasticConfig,
    infos: Vec<ElasticGroupingInfo>,
    stop: Arc<AtomicBool>,
    flight: Arc<FlightRecorder>,
) {
    let mut last_decision: Option<Instant> = None;
    let mut triggered_at: Option<u64> = None;
    let mut cycle: u64 = 0;
    loop {
        // Sleep in short slices so shutdown is prompt.
        let mut slept = Duration::ZERO;
        while slept < cfg.check_interval {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            let slice = Duration::from_millis(10).min(cfg.check_interval - slept);
            std::thread::sleep(slice);
            slept += slice;
        }
        cycle += 1;
        if h.coordinator.in_flight() > 0 {
            continue; // let the current round finish before measuring again
        }
        let observed = h.take_observed();
        let mut worst = f64::NAN;
        for (gi, info) in infos.iter().enumerate() {
            let counts: HashMap<&str, u64> = observed
                .iter()
                .filter(|((g, _), _)| *g == gi)
                .map(|((_, region), count)| (region.as_str(), *count))
                .collect();
            let total: u64 = counts.values().sum();
            if total < cfg.min_observed {
                continue;
            }
            let table = {
                let plan = h.split_plan.read();
                match plan.routes.get(gi) {
                    Some(route) => route.table.clone(),
                    None => continue,
                }
            };
            let mut engine_rates = vec![0.0f64; info.engines];
            for (region, count) in &counts {
                if let Some(engine) = table.get(*region) {
                    if let Some(slot) = engine_rates.get_mut(engine - info.offset) {
                        *slot += *count as f64;
                    }
                }
            }
            let imbalance = Partition {
                assignments: vec![Vec::new(); info.engines],
                rates: engine_rates,
            }
            .imbalance();
            if imbalance.is_finite() && (worst.is_nan() || imbalance > worst) {
                worst = imbalance;
            }
            if imbalance <= cfg.imbalance_bound {
                continue;
            }
            if last_decision.is_some_and(|at| at.elapsed() < cfg.cooldown) {
                continue;
            }
            // Re-run Algorithm 1 over the observed rates (unobserved
            // regions keep rate zero so they stay assigned somewhere).
            let rates: Vec<RegionRate> = info
                .regions
                .iter()
                .map(|r| RegionRate {
                    region: r.clone(),
                    rate: counts.get(r.as_str()).copied().unwrap_or(0) as f64,
                })
                .collect();
            let Ok(partition) = partition_rule(&rates, info.engines) else {
                continue;
            };
            h.coordinator.note_decision(partition.imbalance());
            flight.record(
                FlightKind::RebalanceDecision,
                "rebalancer",
                gi as i64,
                format!(
                    "grouping {gi}: observed imbalance {imbalance:.3} > bound {:.3}, \
                     re-partitioned to target {:.3}",
                    cfg.imbalance_bound,
                    partition.imbalance()
                ),
            );
            last_decision = Some(Instant::now());
            let mut moves: Vec<(String, usize, usize, f64)> = Vec::new();
            for (e, regions) in partition.assignments.iter().enumerate() {
                let to = info.offset + e;
                for region in regions {
                    let Some(&from) = table.get(region) else { continue };
                    if from != to {
                        let rate = counts.get(region.as_str()).copied().unwrap_or(0) as f64;
                        moves.push((region.clone(), from, to, rate));
                    }
                }
            }
            moves.sort_by(|a, b| b.3.total_cmp(&a.3));
            moves.truncate(cfg.max_moves_per_cycle);
            for (region, from, to, _) in moves {
                let locations = info.locations.get(&region).cloned().unwrap_or_default();
                h.coordinator.request(
                    from,
                    to,
                    MigrationMeta { grouping: gi, region, locations },
                );
            }
        }
        if !worst.is_nan() {
            h.coordinator.note_observed_imbalance(worst);
            flight.record(
                FlightKind::RebalanceCycle,
                "rebalancer",
                -1,
                format!("cycle {cycle}: worst observed imbalance {worst:.3}"),
            );
            match triggered_at {
                None if worst > cfg.imbalance_bound => triggered_at = Some(cycle),
                Some(since) if worst <= cfg.imbalance_bound => {
                    h.coordinator.note_converged(cycle - since);
                    triggered_at = None;
                }
                _ => {}
            }
        }
    }
}

/// The system facade.
pub struct TrafficSystem {
    /// Off-line computation outputs (spatial index, rates, thresholds).
    pub artifacts: OfflineArtifacts,
    /// The storage medium shared by every layer.
    pub store: TableStore,
    /// The latency estimation model driving the optimizer.
    pub model: EstimationModel,
    /// Run configuration.
    pub config: SystemConfig,
}

impl TrafficSystem {
    /// Runs the off-line component over historical traces and boots the
    /// system (Figure 3 arrows 1–4).
    pub fn bootstrap(
        bbox: tms_geo::BoundingBox,
        seeds: &[GeoPoint],
        history: &[BusTrace],
        config: SystemConfig,
    ) -> Result<Self, CoreError> {
        let store = TableStore::new();
        let artifacts = run_offline(bbox, seeds, history, &store, &config.offline)?;
        Ok(TrafficSystem {
            artifacts,
            store,
            model: EstimationModel::default_paper_shaped(),
            config,
        })
    }

    /// Replaces the estimation model (e.g. with one calibrated from real
    /// measurements).
    pub fn with_model(mut self, model: EstimationModel) -> Self {
        self.model = model;
        self
    }

    /// Number of threshold rows a rule would join with (Function 1's `t`).
    fn thresholds_for(&self, rule: &RuleSpec) -> usize {
        let q = tms_storage::ThresholdQuery {
            attribute: rule.attribute.name().into(),
            s: rule.s,
        };
        self.artifacts.thresholds.thresholds(&q).map(|rows| rows.len()).unwrap_or(0)
    }

    /// Builds per-layer groupings from the rule set: rules sharing a
    /// layer key form one grouping, partitioned at that layer.
    pub fn layer_groupings(&self, rules: &[RuleSpec]) -> Result<Vec<Grouping>, CoreError> {
        if rules.is_empty() {
            return Err(CoreError::Config { reason: "no rules given".into() });
        }
        let quadtree = &self.artifacts.spatial.quadtree;
        let mut by_layer: HashMap<u8, Vec<RuleSpec>> = HashMap::new();
        for r in rules {
            r.validate()?;
            by_layer.entry(r.location.layer_key(quadtree)).or_default().push(r.clone());
        }
        let mut layers: Vec<u8> = by_layer.keys().copied().collect();
        layers.sort_unstable();
        let stops_layer = quadtree.max_layer() + 1;
        let mut out = Vec::new();
        for layer in layers {
            let rules = by_layer.remove(&layer).expect("key exists");
            let selector = if layer == stops_layer {
                LocationSelector::BusStops
            } else {
                LocationSelector::QuadtreeLayer(layer)
            };
            let regions = self.artifacts.rates_for(&selector);
            let thresholds = rules.iter().map(|r| self.thresholds_for(r)).collect();
            out.push(Grouping {
                name: if layer == stops_layer {
                    "bus-stops".to_string()
                } else {
                    format!("layer-{layer}")
                },
                layers: vec![layer],
                rules,
                regions,
                thresholds,
            });
        }
        Ok(out)
    }

    /// The start-up optimization component (Section 4.2): groups, scores,
    /// allocates, partitions and plans routing for `engines` engines.
    pub fn startup_plan(
        &self,
        rules: &[RuleSpec],
        engines: usize,
    ) -> Result<StartupPlan, CoreError> {
        let layer_groups = self.layer_groupings(rules)?;
        let (groupings, allocation) = match self.config.strategy {
            AllocationStrategy::Proposed => {
                best_grouping_allocation(&self.model, &layer_groups, engines)?
            }
            AllocationStrategy::RoundRobin => {
                let a = round_robin(&layer_groups, engines)?;
                (layer_groups, a)
            }
        };
        self.plan_from_allocation(rules, &groupings, &allocation)
    }

    /// Builds split and engine plans from an explicit allocation.
    pub fn plan_from_allocation(
        &self,
        _rules: &[RuleSpec],
        groupings: &[Grouping],
        allocation: &Allocation,
    ) -> Result<StartupPlan, CoreError> {
        let spatial = &self.artifacts.spatial;
        let stops_layer = spatial.quadtree.max_layer() + 1;
        let offsets = allocation.offsets();
        let total_engines: usize = allocation.engines.iter().sum();

        let mut routes = Vec::new();
        let mut per_engine: Vec<Vec<(RuleSpec, Vec<String>)>> = vec![Vec::new(); total_engines];
        let mut partitions = Vec::new();

        for (gi, grouping) in groupings.iter().enumerate() {
            let k = allocation.engines[gi];
            let offset = offsets[gi];
            let partition = partition_rule(&grouping.regions, k)?;
            // Routing: partition region → global engine index.
            let partition_layer = *grouping.layers.iter().min().expect("grouping has layers");
            let kind = if partition_layer == stops_layer {
                GroupingKind::BusStops
            } else {
                GroupingKind::QuadtreeLayer(partition_layer)
            };
            let mut table = HashMap::new();
            for (e, regions) in partition.assignments.iter().enumerate() {
                for r in regions {
                    table.insert(r.clone(), offset + e);
                }
            }
            routes.push(GroupingRoute { kind, table });

            // Engine plan: each engine runs every rule of the grouping,
            // monitoring the rule's locations that fall under the engine's
            // partition share.
            for (e, partition_regions) in partition.assignments.iter().enumerate() {
                let engine_idx = offset + e;
                for rule in &grouping.rules {
                    let locations = self.rule_locations_under(
                        rule,
                        partition_regions,
                        partition_layer,
                        stops_layer,
                    );
                    if !locations.is_empty() {
                        per_engine[engine_idx].push((rule.clone(), locations));
                    }
                }
            }
            partitions.push(partition);
        }
        Ok(StartupPlan {
            groupings: groupings.to_vec(),
            allocation: allocation.clone(),
            split_plan: SplitPlan { routes },
            engine_plan: EnginePlan { per_engine },
            partitions,
        })
    }

    /// The locations of `rule` that lie under the given partition-layer
    /// regions.
    fn rule_locations_under(
        &self,
        rule: &RuleSpec,
        partition_regions: &[String],
        partition_layer: u8,
        stops_layer: u8,
    ) -> Vec<String> {
        let spatial = &self.artifacts.spatial;
        let quadtree = &spatial.quadtree;
        let owned: std::collections::HashSet<&str> =
            partition_regions.iter().map(String::as_str).collect();
        let covered = |location: &str| -> bool {
            if partition_layer == stops_layer {
                // Stop groupings partition stops directly.
                return owned.contains(location);
            }
            // Quadtree location: walk ancestors until the partition layer.
            if let Some(stripped) = location.strip_prefix('R') {
                let Ok(idx) = stripped.parse::<u32>() else { return false };
                let mut region = quadtree.region(tms_geo::RegionId(idx));
                while let Some(r) = region {
                    if owned.contains(SpatialContext::region_id(r.id).as_str()) {
                        return true;
                    }
                    region = r.parent.and_then(|p| quadtree.region(p));
                }
                return false;
            }
            // A bus stop inside a quadtree grouping: locate its region.
            // Recovered stop centroids can drift a few metres past the
            // city bounding box (GPS noise); clamp before locating so
            // every stop belongs to exactly one engine.
            if let Some(stripped) = location.strip_prefix('S') {
                let Ok(sid) = stripped.parse::<u32>() else { return false };
                let Some(stop) = spatial.stops.stop(sid) else { return false };
                let bb = quadtree.bbox();
                let p = tms_geo::GeoPoint {
                    lat: stop.location.lat.clamp(bb.min_lat, bb.max_lat),
                    lon: stop.location.lon.clamp(bb.min_lon, bb.max_lon),
                };
                return quadtree
                    .locate_all_layers(&p)
                    .iter()
                    .any(|r| owned.contains(SpatialContext::region_id(r.id).as_str()));
            }
            false
        };
        spatial
            .resolve(&rule.location)
            .into_iter()
            .filter(|l| covered(l))
            .collect()
    }

    /// The on-line component: builds the Figure 8 topology and replays the
    /// traces through it to completion.
    pub fn run(
        &self,
        traces: Vec<BusTrace>,
        plan: &StartupPlan,
        db: Option<tms_storage::RemoteDb>,
    ) -> Result<RunReport, CoreError> {
        let detections = Arc::new(Mutex::new(Vec::new()));
        // The control-plane flight recorder is created here (not by the
        // runtime) so the coordinator, the StatsBolt and the rebalancer
        // all share one event log with the runtime's own events.
        let flight = Arc::new(FlightRecorder::default());
        let mut parallelism = self.config.parallelism;
        parallelism.esper_tasks = plan.engine_plan.engines().max(1);
        let elastic = match &self.config.elastic {
            Some(cfg) => {
                cfg.validate()?;
                if matches!(self.config.method, RetrievalMethod::MultipleRules) {
                    return Err(CoreError::Config {
                        reason: "elastic migration is unsupported for the Multiple-Rules \
                                 method: locations are baked into per-cell statements"
                            .into(),
                    });
                }
                // The drain barrier's ordering argument needs exactly one
                // routing task (per-sender FIFO to each engine).
                parallelism.splitter_tasks = 1;
                let h = Arc::new(ElasticHandle::new(
                    plan.split_plan.clone(),
                    plan.engine_plan.clone(),
                    cfg.drain_timeout,
                ));
                h.coordinator.set_recorder(flight.clone());
                Some(h)
            }
            None => None,
        };
        if let Some(kappa) = &self.config.kappa {
            kappa.validate()?;
        }
        let registry = self
            .config
            .monitor
            .is_some_and(|m| m.profiling)
            .then(|| Arc::new(EsperProfileRegistry::new()));
        let topology = build_traffic_topology(
            Arc::new(traces),
            Arc::new(self.artifacts.spatial.quadtree.clone()),
            Arc::new(self.artifacts.spatial.stops.clone()),
            Arc::new(plan.split_plan.clone()),
            Arc::new(plan.engine_plan.clone()),
            self.config.method.clone(),
            self.store.clone(),
            db,
            detections.clone(),
            parallelism,
            self.config.incremental,
            self.config.sharing,
            self.config.chaos,
            registry.clone(),
            elastic.clone(),
            self.config.kappa,
            Some(flight.clone()),
        )?;
        let cluster = LocalCluster::new(self.config.cluster)?;
        let handle = cluster.submit(
            topology,
            RuntimeConfig {
                monitor: self.config.monitor,
                reliability: self.config.reliability,
                fault: self.config.chaos,
                batch: self.config.batch,
                durability: self.config.durability.clone(),
                flight: Some(flight.clone()),
                workers: self.config.workers,
                ..RuntimeConfig::default()
            },
        )?;
        if let Some(registry) = &registry {
            let registry = registry.clone();
            handle
                .metrics()
                .register_profile_source("esper", Arc::new(move || registry.collect()));
        }
        {
            // The offline artifacts' data-quality gauge: traces observed
            // at run time in locations the historical statistics never
            // saw (those default to rate 0 in the partitioner).
            let unseen = self.artifacts.clone();
            handle.metrics().register_gauges(
                "offline",
                Arc::new(move || {
                    vec![("unseen_locations".to_string(), unseen.unseen_location_count() as f64)]
                }),
            );
        }
        let stop = Arc::new(AtomicBool::new(false));
        let rebalancer = elastic.as_ref().map(|h| {
            let cfg = self.config.elastic.clone().expect("elastic handle implies config");
            let gauges = h.clone();
            handle.metrics().register_gauges(
                "splitter",
                Arc::new(move || {
                    let s = gauges.coordinator.stats();
                    vec![
                        ("rebalances_total".to_string(), s.decisions as f64),
                        ("migrations_total".to_string(), s.completed as f64),
                        ("migrations_aborted_total".to_string(), s.aborted as f64),
                        ("migration_last_pause_ms".to_string(), s.last_pause_ms),
                        ("migration_max_pause_ms".to_string(), s.max_pause_ms),
                        ("rebalance_post_imbalance".to_string(), s.post_imbalance),
                        ("rebalance_observed_imbalance".to_string(), s.observed_imbalance),
                    ]
                }),
            );
            let infos = self.elastic_grouping_infos(plan);
            let h = h.clone();
            let stop = stop.clone();
            let flight = flight.clone();
            std::thread::spawn(move || run_rebalancer(h, cfg, infos, stop, flight))
        });
        let assignment = handle.assignment().clone();
        let collector = handle.trace_collector().cloned();
        let metrics = handle.join();
        stop.store(true, Ordering::Relaxed);
        if let Some(t) = rebalancer {
            let _ = t.join();
        }
        let metrics = metrics?;
        let history = metrics.history();
        let drift = self.drift_samples(plan, &assignment, &history);
        let planner = registry
            .is_some()
            .then(|| self.planner_report(plan, &assignment, &history))
            .flatten();
        let report = RunReport {
            detections: std::mem::take(&mut detections.lock()),
            metrics: metrics.totals(),
            history,
            drift,
            planner,
            elastic: elastic.map(|h| h.coordinator.stats()),
            events: flight.events(),
            critical_path: collector.as_ref().map(|c| c.critical_path()),
            traces: collector.as_ref().map(|c| c.take_spans()).unwrap_or_default(),
            trace_components: collector.as_ref().map(|c| c.components()).unwrap_or_default(),
        };
        Ok(report)
    }

    /// Precomputes the per-grouping facts the rebalancer thread needs
    /// (engine offsets and each routing key's monitored-location union).
    fn elastic_grouping_infos(&self, plan: &StartupPlan) -> Vec<ElasticGroupingInfo> {
        let stops_layer = self.artifacts.spatial.quadtree.max_layer() + 1;
        let offsets = plan.allocation.offsets();
        plan.groupings
            .iter()
            .enumerate()
            .map(|(gi, grouping)| {
                let partition_layer =
                    *grouping.layers.iter().min().expect("grouping has layers");
                let mut regions = Vec::new();
                let mut locations = HashMap::new();
                for r in &grouping.regions {
                    regions.push(r.region.clone());
                    let owned = std::slice::from_ref(&r.region);
                    let mut union: Vec<String> = Vec::new();
                    for rule in &grouping.rules {
                        for l in
                            self.rule_locations_under(rule, owned, partition_layer, stops_layer)
                        {
                            if !union.contains(&l) {
                                union.push(l);
                            }
                        }
                    }
                    locations.insert(r.region.clone(), union);
                }
                ElasticGroupingInfo {
                    offset: offsets.get(gi).copied().unwrap_or(0),
                    engines: plan.allocation.engines[gi],
                    regions,
                    locations,
                }
            })
            .collect()
    }

    /// The Figure 7 prediction for the Esper component as planned and
    /// scheduled: rule loads per engine from the startup plan, node
    /// co-location from the runtime assignment (esper task `i` runs
    /// engine `i`). Returns the mean predicted per-engine latency in ms.
    pub fn predicted_esper_latency_ms(
        &self,
        plan: &StartupPlan,
        assignment: &Assignment,
    ) -> Result<f64, CoreError> {
        let engines = self.engine_loads(plan);
        let nodes = Self::esper_node_groups(assignment, engines.len());
        self.model.estimate_mean(&engines, &nodes)
    }

    /// The planned per-engine rule loads Function 1 is fed (Figure 7).
    fn engine_loads(&self, plan: &StartupPlan) -> Vec<Vec<RuleLoad>> {
        plan.engine_plan
            .per_engine
            .iter()
            .map(|rules| {
                rules
                    .iter()
                    .map(|(spec, _)| RuleLoad {
                        window: spec.window_length,
                        thresholds: self.thresholds_for(spec),
                    })
                    .collect()
            })
            .collect()
    }

    /// Esper engine indices grouped by scheduled node (esper task `i`
    /// runs engine `i`).
    fn esper_node_groups(assignment: &Assignment, engines: usize) -> Vec<Vec<usize>> {
        let mut by_node: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for p in assignment.component_placements("esper") {
            by_node
                .entry(p.node)
                .or_default()
                .extend(p.tasks.iter().copied().filter(|&t| t < engines));
        }
        by_node.into_values().collect()
    }

    /// Predicted-vs-observed drift per sampled Esper window, when the
    /// monitor ran with tracing. Prediction failures (e.g. a plan with no
    /// loaded engine) disable drift rather than failing the run.
    fn drift_samples(
        &self,
        plan: &StartupPlan,
        assignment: &Assignment,
        history: &[tms_dsps::ComponentWindow],
    ) -> Vec<DriftSample> {
        if !self.config.monitor.is_some_and(|m| m.tracing) {
            return Vec::new();
        }
        let predicted = match self.predicted_esper_latency_ms(plan, assignment) {
            Ok(p) if p > 0.0 => p,
            _ => return Vec::new(),
        };
        history
            .iter()
            .filter(|w| w.component == "esper")
            .filter_map(|w| {
                let observed = w.avg_latency?.as_secs_f64() * 1e3;
                Some(DriftSample {
                    at_ms: w.at.as_secs_f64() * 1e3,
                    len_ms: w.len.as_secs_f64() * 1e3,
                    observed_ms: observed,
                    predicted_ms: predicted,
                    ratio: observed / predicted,
                    partial: w.partial,
                })
            })
            .collect()
    }

    /// The planner-drift report for a profiled run: per-engine planned vs
    /// observed input rates and latencies, per-rule observed loads, and
    /// the online recalibration of the estimation model from the run's
    /// own (load, latency) samples. Returns `None` when no sampled window
    /// carried rule profiles.
    fn planner_report(
        &self,
        plan: &StartupPlan,
        assignment: &Assignment,
        history: &[tms_dsps::ComponentWindow],
    ) -> Option<PlannerDriftReport> {
        let esper: Vec<&tms_dsps::ComponentWindow> =
            history.iter().filter(|w| w.component == "esper").collect();
        let duration_s: f64 = esper.iter().map(|w| w.len.as_secs_f64()).sum();
        if duration_s <= 0.0 || esper.iter().all(|w| w.rules.is_empty()) {
            return None;
        }

        let engine_loads = self.engine_loads(plan);
        let nodes = Self::esper_node_groups(assignment, engine_loads.len());
        let planned_rates = plan.planned_engine_rates();

        // The load Function 1 was fed for a rule copy at start-up.
        let planned_load = |rule: &str, engine: usize| -> RuleLoad {
            plan.engine_plan
                .per_engine
                .get(engine)
                .and_then(|rules| rules.iter().find(|(spec, _)| spec.name == rule))
                .map(|(spec, _)| RuleLoad {
                    window: spec.window_length,
                    thresholds: self.thresholds_for(spec),
                })
                .unwrap_or(RuleLoad { window: 0, thresholds: 0 })
        };

        // Run totals per (rule, engine) plus per-window samples: the
        // window deltas drive calibration, the totals drive the report.
        #[derive(Default)]
        struct Acc {
            events_in: u64,
            sum_ns: u64,
            count: u64,
            window_len: u64,
        }
        let mut per_rule: BTreeMap<(String, usize), Acc> = BTreeMap::new();
        let mut f1_samples: Vec<(Vec<f64>, f64)> = Vec::new();
        let mut f2_samples: Vec<(Vec<f64>, f64)> = Vec::new();
        let mut f3_samples: Vec<(Vec<f64>, f64)> = Vec::new();
        // Per window: (engine, observed mean engine latency ms).
        let mut engine_obs: Vec<Vec<(usize, f64)>> = Vec::new();

        for w in &esper {
            // (rule latency ms, sum_ns, count) per engine in this window.
            let mut by_engine: BTreeMap<usize, Vec<(f64, u64, u64)>> = BTreeMap::new();
            for r in &w.rules {
                let acc = per_rule.entry((r.rule.clone(), r.engine)).or_default();
                acc.events_in += r.events_in;
                acc.sum_ns += r.eval.sum_ns();
                acc.count += r.eval.count();
                if r.window_len > 0 {
                    acc.window_len = r.window_len;
                }
                if r.eval.count() == 0 {
                    continue;
                }
                let lat = r.eval.sum_ns() as f64 / r.eval.count() as f64 / 1e6;
                let load = planned_load(&r.rule, r.engine);
                f1_samples.push((vec![load.window as f64, load.thresholds as f64], lat));
                by_engine
                    .entry(r.engine)
                    .or_default()
                    .push((lat, r.eval.sum_ns(), r.eval.count()));
            }
            let mut obs = Vec::new();
            for (engine, rules) in &by_engine {
                let sum_ns: u64 = rules.iter().map(|(_, s, _)| s).sum();
                let count: u64 = rules.iter().map(|(_, _, c)| c).sum();
                let combined = sum_ns as f64 / count as f64 / 1e6;
                // Function 2 relates two rule-set latencies to the
                // engine's; single-rule engines teach F2(a, 0) = a.
                f2_samples.push(match rules.as_slice() {
                    [(only, _, _)] => (vec![*only, 0.0], combined),
                    [(a, _, _), (b, _, _), ..] => (vec![*a, *b], combined),
                    [] => continue,
                });
                obs.push((*engine, combined));
            }
            // Function 3 relates an engine's latency to its node's load.
            for node in &nodes {
                let present: Vec<f64> = node
                    .iter()
                    .filter_map(|e| obs.iter().find(|(oe, _)| oe == e).map(|&(_, l)| l))
                    .collect();
                let total: f64 = present.iter().sum();
                for &own in &present {
                    f3_samples.push((vec![own, total - own], own));
                }
            }
            engine_obs.push(obs);
        }
        if per_rule.is_empty() {
            return None;
        }

        let predicted = self.model.estimate(&engine_loads, &nodes).unwrap_or_default();
        let mut events_by_engine = vec![0u64; engine_loads.len()];
        let mut ns_by_engine = vec![(0u64, 0u64); engine_loads.len()];
        for ((_, engine), acc) in &per_rule {
            if let Some(v) = events_by_engine.get_mut(*engine) {
                *v += acc.events_in;
            }
            if let Some((s, c)) = ns_by_engine.get_mut(*engine) {
                *s += acc.sum_ns;
                *c += acc.count;
            }
        }
        let engines: Vec<EngineDrift> = (0..engine_loads.len())
            .map(|e| EngineDrift {
                engine: e,
                planned_rate: planned_rates.get(e).copied().unwrap_or(0.0),
                observed_rate: events_by_engine[e] as f64 / duration_s,
                predicted_latency_ms: predicted.get(e).copied().unwrap_or(0.0),
                observed_latency_ms: {
                    let (s, c) = ns_by_engine[e];
                    if c > 0 {
                        s as f64 / c as f64 / 1e6
                    } else {
                        0.0
                    }
                },
            })
            .collect();

        // Balance comparison over the engines Algorithm 1 actually loaded
        // (placement slack would otherwise force the ratio to infinity).
        let imbalance = |rates: Vec<f64>| -> f64 {
            if rates.is_empty() {
                return 1.0;
            }
            Partition { assignments: vec![Vec::new(); rates.len()], rates }.imbalance()
        };
        let loaded: Vec<usize> = (0..engine_loads.len())
            .filter(|&e| planned_rates.get(e).copied().unwrap_or(0.0) > 0.0)
            .collect();
        let imbalance_planned =
            imbalance(loaded.iter().map(|&e| planned_rates[e]).collect());
        let imbalance_observed =
            imbalance(loaded.iter().map(|&e| engines[e].observed_rate).collect());

        let rules: Vec<RuleObservedLoad> = per_rule
            .iter()
            .map(|((rule, engine), acc)| RuleObservedLoad {
                rule: rule.clone(),
                engine: *engine,
                load: planned_load(rule, *engine),
                observed_window: acc.window_len,
                observed_latency_ms: if acc.count > 0 {
                    acc.sum_ns as f64 / acc.count as f64 / 1e6
                } else {
                    0.0
                },
                events_in: acc.events_in,
            })
            .collect();

        // Online recalibration: refit the three functions from this run's
        // samples; compare mean absolute error against the per-window
        // observed engine latencies, before vs after.
        let mae = |model: &EstimationModel| -> Option<(f64, usize)> {
            let pred = model.estimate(&engine_loads, &nodes).ok()?;
            let mut sum = 0.0;
            let mut n = 0usize;
            for obs in &engine_obs {
                for &(e, observed) in obs {
                    let Some(&p) = pred.get(e) else { continue };
                    sum += (p - observed).abs();
                    n += 1;
                }
            }
            (n > 0).then(|| (sum / n as f64, n))
        };
        let recalibrated = EstimationModel::calibrate(&f1_samples, &f2_samples, &f3_samples)
            .ok()
            .or_else(|| {
                // Too few distinct (l, t) cells make the Function 1 design
                // singular: rescale the current F1 to the observed
                // magnitude and refit only the composition functions.
                let f2 = PolyModel::fit(&f2_samples, 1).ok()?;
                let f3 = PolyModel::fit(&f3_samples, 1).ok()?;
                if f1_samples.is_empty() {
                    return None;
                }
                let observed_mean =
                    f1_samples.iter().map(|(_, y)| y).sum::<f64>() / f1_samples.len() as f64;
                let predicted_mean = f1_samples
                    .iter()
                    .filter_map(|(x, _)| self.model.f1.predict(x).ok())
                    .sum::<f64>()
                    / f1_samples.len() as f64;
                let scale =
                    if predicted_mean > 0.0 { observed_mean / predicted_mean } else { 1.0 };
                let mut f1 = self.model.f1.clone();
                for c in &mut f1.coefficients {
                    *c *= scale;
                }
                Some(EstimationModel { f1, f2, f3 })
            });
        let calibration = recalibrated.and_then(|m| {
            let (mae_before_ms, samples) = mae(&self.model)?;
            let (mae_after_ms, _) = mae(&m)?;
            Some(CalibrationReport { samples, mae_before_ms, mae_after_ms })
        });

        Some(PlannerDriftReport {
            engines,
            imbalance_planned,
            imbalance_observed,
            rules,
            calibration,
        })
    }

    /// Convenience: bootstrap + plan + run with Algorithm 2, returning
    /// the plan and the report.
    pub fn plan_and_run(
        &self,
        traces: Vec<BusTrace>,
        rules: &[RuleSpec],
        engines: usize,
    ) -> Result<(StartupPlan, RunReport), CoreError> {
        let plan = self.startup_plan(rules, engines)?;
        let report = self.run(traces, &plan, None)?;
        Ok((plan, report))
    }

    /// Re-runs the statistics job over fresh history and republishes the
    /// thresholds (the periodic dynamic-rules path; engines pick the new
    /// snapshot up via `RuleEngine::refresh_thresholds` or at the next
    /// run's install).
    pub fn recompute_statistics(&mut self, history: &[BusTrace]) -> Result<(), CoreError> {
        let artifacts = run_offline(
            self.artifacts.spatial.quadtree.bbox(),
            &[],
            history,
            &self.store,
            &self.config.offline,
        );
        // Keep the original spatial index (regions must stay stable for
        // running rules); only refresh rates. The statistics tables were
        // republished by run_offline into the shared store.
        match artifacts {
            Ok(a) => {
                self.artifacts.region_rates = a.region_rates;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Builds a rule set and engine count from a parsed XML topology spec
    /// (the `<rules>` section carries raw EPL, which our generic template
    /// cannot reverse; XML rules therefore use the template's textual
    /// form: `attribute:location:window`, e.g. `delay:leaves:100`).
    pub fn rules_from_xml_spec(
        spec: &tms_dsps::TopologySpec,
    ) -> Result<Vec<RuleSpec>, CoreError> {
        let mut out = Vec::new();
        for (i, text) in spec.rules.iter().enumerate() {
            out.push(parse_rule_shorthand(text, i)?);
        }
        Ok(out)
    }
}

/// Parses the XML shorthand `attribute:location:window[:weight]` where
/// location is `leaves`, `stops`, or `layerN`.
pub fn parse_rule_shorthand(text: &str, index: usize) -> Result<RuleSpec, CoreError> {
    let parts: Vec<&str> = text.trim().split(':').collect();
    if !(parts.len() == 3 || parts.len() == 4) {
        return Err(CoreError::Rule {
            reason: format!("rule {index}: expected attribute:location:window[:weight], got {text:?}"),
        });
    }
    let attribute = tms_traffic::Attribute::parse(parts[0]).ok_or_else(|| CoreError::Rule {
        reason: format!("rule {index}: unknown attribute {:?}", parts[0]),
    })?;
    let location = match parts[1] {
        "leaves" => LocationSelector::QuadtreeLeaves,
        "stops" => LocationSelector::BusStops,
        other => match other.strip_prefix("layer") {
            Some(n) => LocationSelector::QuadtreeLayer(n.parse().map_err(|_| CoreError::Rule {
                reason: format!("rule {index}: bad layer {other:?}"),
            })?),
            None => {
                return Err(CoreError::Rule {
                    reason: format!("rule {index}: unknown location {other:?}"),
                })
            }
        },
    };
    let window: usize = parts[2].parse().map_err(|_| CoreError::Rule {
        reason: format!("rule {index}: bad window {:?}", parts[2]),
    })?;
    let mut rule = RuleSpec::new(
        format!("xml-rule-{index}-{}", parts[0]),
        attribute,
        location,
        window,
    );
    if let Some(w) = parts.get(3) {
        rule.weight = w.parse().map_err(|_| CoreError::Rule {
            reason: format!("rule {index}: bad weight {w:?}"),
        })?;
    }
    rule.validate()?;
    Ok(rule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_geo::DUBLIN_BBOX;
    use tms_traffic::{Attribute, FleetConfig, FleetGenerator, HOUR_MS};

    fn small_history() -> (Vec<BusTrace>, Vec<GeoPoint>) {
        let g = FleetGenerator::new(FleetConfig::small(17), 0).unwrap();
        let seeds = g.route_seed_points();
        let traces: Vec<BusTrace> =
            g.take_while(|t| t.timestamp_ms < 9 * HOUR_MS).collect();
        (traces, seeds)
    }

    fn system() -> TrafficSystem {
        let (history, seeds) = small_history();
        TrafficSystem::bootstrap(DUBLIN_BBOX, &seeds, &history, SystemConfig::default()).unwrap()
    }

    fn rules() -> Vec<RuleSpec> {
        let mut r1 = RuleSpec::new(
            "delay-leaves",
            Attribute::Delay,
            LocationSelector::QuadtreeLeaves,
            10,
        );
        r1.s = 0.5;
        let mut r2 =
            RuleSpec::new("delay-stops", Attribute::Delay, LocationSelector::BusStops, 10);
        r2.s = 0.5;
        vec![r1, r2]
    }

    #[test]
    fn startup_plan_covers_every_engine_and_location() {
        let sys = system();
        let plan = sys.startup_plan(&rules(), 4).unwrap();
        assert_eq!(plan.allocation.engines.iter().sum::<usize>(), 4);
        assert_eq!(plan.engine_plan.engines(), 4);
        // Every rule's every location is monitored by exactly one engine.
        for rule in rules() {
            let mut seen: HashMap<String, usize> = HashMap::new();
            for engine_rules in &plan.engine_plan.per_engine {
                for (spec, locations) in engine_rules {
                    if spec.name == rule.name {
                        for l in locations {
                            *seen.entry(l.clone()).or_default() += 1;
                        }
                    }
                }
            }
            let expected = sys.artifacts.spatial.resolve(&rule.location);
            for l in &expected {
                assert_eq!(
                    seen.get(l).copied().unwrap_or(0),
                    1,
                    "location {l} of rule {} must be monitored exactly once",
                    rule.name
                );
            }
        }
        // Split plan has one route per grouping.
        assert_eq!(plan.split_plan.routes.len(), plan.groupings.len());
    }

    #[test]
    fn end_to_end_run_detects_incidents() {
        let (history, seeds) = small_history();
        let sys =
            TrafficSystem::bootstrap(DUBLIN_BBOX, &seeds, &history, SystemConfig::default())
                .unwrap();
        // Live traffic: day 1 with a severe incident in the city centre.
        let cfg = FleetConfig::small(17);
        let probe = FleetGenerator::new(cfg.clone(), 1).unwrap();
        let center = probe.routes()[0].points[probe.routes()[0].points.len() / 2];
        let incident = tms_traffic::Incident {
            center,
            radius_m: 1500.0,
            start_ms: tms_traffic::DAY_MS + 7 * HOUR_MS,
            end_ms: tms_traffic::DAY_MS + 9 * HOUR_MS,
            severity: 0.03,
        };
        let live: Vec<BusTrace> =
            FleetGenerator::with_incidents(cfg, 1, vec![incident])
                .unwrap()
                .take_while(|t| t.timestamp_ms < tms_traffic::DAY_MS + 9 * HOUR_MS)
                .collect();
        let (plan, report) = sys.plan_and_run(live, &rules(), 3).unwrap();
        assert_eq!(plan.engine_plan.engines(), 3);
        assert!(
            !report.detections.is_empty(),
            "a severe incident must trigger detections"
        );
        // Detections were also persisted to the storage medium.
        let stored = sys
            .store
            .with_table("detected_events", |t| t.len())
            .unwrap();
        assert_eq!(stored, report.detections.len());
        // Metrics cover the esper component.
        assert!(report.metrics.iter().any(|m| m.component == "esper" && m.throughput > 0));
    }

    #[test]
    fn batched_run_detects_exactly_what_the_per_tuple_run_detects() {
        use std::time::Duration;
        // The same bootstrap artifacts, live traffic and rules, run once
        // per delivery mode: micro-batching may only change when tuples
        // move, so the detection sets must match exactly.
        let (history, seeds) = small_history();
        let cfg = FleetConfig::small(17);
        let probe = FleetGenerator::new(cfg.clone(), 1).unwrap();
        let center = probe.routes()[0].points[probe.routes()[0].points.len() / 2];
        let incident = tms_traffic::Incident {
            center,
            radius_m: 1500.0,
            start_ms: tms_traffic::DAY_MS + 7 * HOUR_MS,
            end_ms: tms_traffic::DAY_MS + 9 * HOUR_MS,
            severity: 0.03,
        };
        let live: Vec<BusTrace> = FleetGenerator::with_incidents(cfg, 1, vec![incident])
            .unwrap()
            .take_while(|t| t.timestamp_ms < tms_traffic::DAY_MS + 9 * HOUR_MS)
            .collect();

        // One bootstrap shared by both runs, at the default multi-task
        // parallelism: the offline stats job now reduces per-cell partials
        // in canonical partition order, so thresholds are byte-identical
        // regardless of how many tasks computed them (this used to need
        // an all-single-task workaround).
        let config = SystemConfig::default();
        let mut sys = TrafficSystem::bootstrap(DUBLIN_BBOX, &seeds, &history, config).unwrap();
        let run = |sys: &TrafficSystem| {
            let (_, report) = sys.plan_and_run(live.clone(), &rules(), 1).unwrap();
            let mut detections = report.detections;
            detections.sort_by(|a, b| {
                (&a.rule, &a.location, a.timestamp_ms)
                    .cmp(&(&b.rule, &b.location, b.timestamp_ms))
            });
            detections
        };
        let per_tuple = run(&sys);
        sys.config.batch = Some(tms_dsps::BatchConfig {
            max_batch: 32,
            max_linger: Duration::from_millis(1),
        });
        let batched = run(&sys);
        assert!(!per_tuple.is_empty(), "the incident must trigger detections");
        assert_eq!(batched, per_tuple, "batching must not change what the system detects");
    }

    #[test]
    fn end_to_end_chaos_run_with_recovery_still_detects() {
        use std::time::Duration;
        let (history, seeds) = small_history();
        let config = SystemConfig {
            reliability: Some(tms_dsps::ReliabilityConfig {
                ack_timeout: Duration::from_millis(500),
                max_retries: 20,
                backoff: 1.5,
                max_pending: 256,
                max_task_restarts: 200,
            }),
            chaos: Some(tms_dsps::FaultConfig {
                panic_p: 0.002,
                drop_p: 0.002,
                delay: None,
                seed: 0x7EA_5EED,
            }),
            ..SystemConfig::default()
        };
        let sys = TrafficSystem::bootstrap(DUBLIN_BBOX, &seeds, &history, config).unwrap();
        let cfg = FleetConfig::small(17);
        let probe = FleetGenerator::new(cfg.clone(), 1).unwrap();
        let center = probe.routes()[0].points[probe.routes()[0].points.len() / 2];
        let incident = tms_traffic::Incident {
            center,
            radius_m: 1500.0,
            start_ms: tms_traffic::DAY_MS + 7 * HOUR_MS,
            end_ms: tms_traffic::DAY_MS + 9 * HOUR_MS,
            severity: 0.03,
        };
        let live: Vec<BusTrace> = FleetGenerator::with_incidents(cfg, 1, vec![incident])
            .unwrap()
            .take_while(|t| t.timestamp_ms < tms_traffic::DAY_MS + 9 * HOUR_MS)
            .collect();
        let (_, report) = sys.plan_and_run(live, &rules(), 3).unwrap();
        assert!(
            !report.detections.is_empty(),
            "the incident must still be detected under injected faults"
        );
        let reader = report
            .metrics
            .iter()
            .find(|m| m.component == "busReader")
            .expect("spout metrics present");
        assert!(reader.acked > 0, "reliability was on: roots must be acked");
        assert_eq!(reader.failed, 0, "no root may exhaust its replay budget");
    }

    /// Incident stream for the end-to-end scenarios: day 1 with a severe
    /// incident in the city centre, so runs produce detections.
    fn incident_stream() -> Vec<BusTrace> {
        let cfg = FleetConfig::small(17);
        let probe = FleetGenerator::new(cfg.clone(), 1).unwrap();
        let center = probe.routes()[0].points[probe.routes()[0].points.len() / 2];
        let incident = tms_traffic::Incident {
            center,
            radius_m: 1500.0,
            start_ms: tms_traffic::DAY_MS + 7 * HOUR_MS,
            end_ms: tms_traffic::DAY_MS + 9 * HOUR_MS,
            severity: 0.03,
        };
        FleetGenerator::with_incidents(cfg, 1, vec![incident])
            .unwrap()
            .take_while(|t| t.timestamp_ms < tms_traffic::DAY_MS + 9 * HOUR_MS)
            .collect()
    }

    #[test]
    fn kappa_run_updates_statistics_in_stream() {
        // With the kappa branch on, the StatsBolt folds the live stream
        // into the per-cell statistics and republishes them mid-run — the
        // tables end the run richer than the offline bootstrap left them,
        // without any batch recompute.
        let (history, seeds) = small_history();
        let config = SystemConfig {
            kappa: Some(crate::kappa::KappaConfig { refresh_every: 256, min_samples: 5 }),
            ..SystemConfig::default()
        };
        let sys = TrafficSystem::bootstrap(DUBLIN_BBOX, &seeds, &history, config).unwrap();
        let tstore = tms_storage::ThresholdStore::new(sys.store.clone());
        let samples = |records: &[tms_storage::StatRecord]| -> u64 {
            records.iter().map(|r| r.count).sum()
        };
        let before = samples(&tstore.statistics("delay").unwrap());
        assert!(before > 0, "the offline job published bootstrap statistics");

        let (_, report) = sys.plan_and_run(incident_stream(), &rules(), 2).unwrap();
        assert!(!report.detections.is_empty(), "the incident must trigger detections");
        let stats = report
            .metrics
            .iter()
            .find(|m| m.component == "stats")
            .expect("the kappa branch wires a stats bolt into the topology");
        assert!(stats.throughput > 0, "the stats bolt must see the stream");
        let after = samples(&tstore.statistics("delay").unwrap());
        assert!(
            after > before,
            "in-stream publication must absorb the live samples ({after} <= {before})"
        );
    }

    #[test]
    fn durable_restarts_keep_threshold_ages_running() {
        use std::time::Duration;
        // S2 regression: a supervised esper restart restores thresholds
        // *with their original stamps* from the durable snapshot. If the
        // restart silently re-fed thresholds, their age would snap back to
        // zero — so across the profiled windows, per-rule threshold ages
        // must never move materially backwards, restarts or not.
        let dir = std::env::temp_dir().join(format!(
            "tms-s2-ages-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let (history, seeds) = small_history();
        let config = SystemConfig {
            reliability: Some(tms_dsps::ReliabilityConfig {
                ack_timeout: Duration::from_millis(500),
                max_retries: 20,
                backoff: 1.5,
                max_pending: 256,
                max_task_restarts: 200,
            }),
            chaos: Some(tms_dsps::FaultConfig {
                panic_p: 0.002,
                drop_p: 0.0,
                delay: None,
                seed: 0x5EED_A6E5,
            }),
            durability: Some(tms_dsps::DurabilityConfig {
                dir: dir.clone(),
                snapshot_every: 512,
                fsync: false,
            }),
            monitor: Some(MonitorConfig {
                window: Duration::from_millis(250),
                tracing: true,
                profiling: true,
                ..MonitorConfig::default()
            }),
            ..SystemConfig::default()
        };
        let sys = TrafficSystem::bootstrap(DUBLIN_BBOX, &seeds, &history, config).unwrap();
        let (_, report) = sys.plan_and_run(incident_stream(), &rules(), 2).unwrap();
        let esper = report
            .metrics
            .iter()
            .find(|m| m.component == "esper")
            .expect("esper metrics present");
        assert!(esper.restarted > 0, "chaos must force at least one esper restart");
        assert!(!report.detections.is_empty(), "detections must survive the restarts");

        // Per (engine, rule) series of sampled threshold ages, in window
        // order. The age clock may pause (snapshot staleness) but a
        // restore must never hand back thresholds younger than a prior
        // sample by more than the snapshot cadence allows.
        let mut series: HashMap<(usize, String), Vec<(Duration, Duration)>> = HashMap::new();
        for w in report.history.iter().filter(|w| w.component == "esper") {
            for r in &w.rules {
                if let Some(age) = r.threshold_age {
                    series.entry((r.engine, r.rule.clone())).or_default().push((w.at, age));
                }
            }
        }
        assert!(!series.is_empty(), "profiled windows must sample threshold ages");
        let tolerance = Duration::from_secs(1);
        for ((engine, rule), mut samples) in series {
            samples.sort_by_key(|(at, _)| *at);
            for pair in samples.windows(2) {
                let (_, prev) = pair[0];
                let (_, next) = pair[1];
                assert!(
                    next + tolerance >= prev,
                    "threshold age for {rule} on engine {engine} moved backwards \
                     across a restart: {prev:?} -> {next:?}"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tracing_run_reports_drift_against_the_model() {
        use std::time::Duration;
        let (history, seeds) = small_history();
        let config = SystemConfig {
            monitor: Some(MonitorConfig {
                window: Duration::from_millis(250),
                tracing: true,
                ..MonitorConfig::default()
            }),
            ..SystemConfig::default()
        };
        let sys = TrafficSystem::bootstrap(DUBLIN_BBOX, &seeds, &history, config).unwrap();
        let live: Vec<BusTrace> = FleetGenerator::new(FleetConfig::small(17), 1)
            .unwrap()
            .take_while(|t| t.timestamp_ms < tms_traffic::DAY_MS + 9 * HOUR_MS)
            .collect();
        let (_, report) = sys.plan_and_run(live, &rules(), 3).unwrap();
        // At least one Esper window compared observed against predicted.
        assert!(!report.drift.is_empty(), "tracing runs must produce drift samples");
        for d in &report.drift {
            assert!(d.observed_ms > 0.0);
            assert!(d.predicted_ms > 0.0);
            assert!(d.ratio.is_finite() && d.ratio > 0.0);
            assert!(d.len_ms > 0.0);
        }
        // The JSONL export round-trips the fields.
        let jsonl = report.drift_jsonl();
        assert_eq!(jsonl.lines().count(), report.drift.len());
        assert!(jsonl.contains("\"ratio\":"));
        // History windows chain: starts stamp window starts, the shutdown
        // flush is marked partial.
        let esper: Vec<_> =
            report.history.iter().filter(|w| w.component == "esper").collect();
        assert!(!esper.is_empty());
        assert!(esper.last().unwrap().partial, "the final flush window is partial");
        for pair in esper.windows(2) {
            assert_eq!(pair[0].at + pair[0].len, pair[1].at, "windows must chain");
        }
    }

    #[test]
    fn profiling_run_reports_planner_drift_and_recalibrates() {
        use std::time::Duration;
        let (history, seeds) = small_history();
        let config = SystemConfig {
            monitor: Some(MonitorConfig {
                window: Duration::from_millis(250),
                tracing: true,
                profiling: true,
                ..MonitorConfig::default()
            }),
            ..SystemConfig::default()
        };
        let sys = TrafficSystem::bootstrap(DUBLIN_BBOX, &seeds, &history, config).unwrap();
        let live: Vec<BusTrace> = FleetGenerator::new(FleetConfig::small(17), 1)
            .unwrap()
            .take_while(|t| t.timestamp_ms < tms_traffic::DAY_MS + 9 * HOUR_MS)
            .collect();
        let (plan, report) = sys.plan_and_run(live, &rules(), 3).unwrap();

        // The plan now carries Algorithm 1's partitions per grouping.
        assert_eq!(plan.partitions.len(), plan.groupings.len());
        let planned = plan.planned_engine_rates();
        assert_eq!(planned.len(), 3);
        assert!(planned.iter().all(|&r| r > 0.0), "every engine gets load: {planned:?}");

        // Sampled windows carry per-rule profiles.
        let profiled_windows = report
            .history
            .iter()
            .filter(|w| w.component == "esper" && !w.rules.is_empty())
            .count();
        assert!(profiled_windows > 0, "esper windows must carry rule profiles");
        assert!(
            report.history.iter().flat_map(|w| &w.rules).any(|r| r.eval.count() > 0),
            "some window must record eval latencies"
        );
        // The lifetime totals carry cumulative profiles too.
        let total_esper =
            report.metrics.iter().find(|w| w.component == "esper").expect("esper totals");
        assert!(!total_esper.rules.is_empty());
        assert!(total_esper.rules.iter().any(|r| r.threshold_age.is_some()));

        let planner = report.planner.expect("profiling runs produce a planner report");
        assert_eq!(planner.engines.len(), 3);
        for e in &planner.engines {
            assert!(e.planned_rate > 0.0);
            assert!(e.predicted_latency_ms > 0.0);
        }
        assert!(
            planner.engines.iter().any(|e| e.observed_rate > 0.0),
            "some engine must observe events"
        );
        assert!(planner.imbalance_planned.is_finite() && planner.imbalance_planned >= 1.0);
        assert!(!planner.rules.is_empty());
        assert!(planner.rules.iter().any(|r| r.events_in > 0 && r.observed_latency_ms > 0.0));
        for r in &planner.rules {
            assert!(r.load.window > 0, "planned load resolved for {}", r.rule);
        }

        // Online recalibration must beat the offline-shaped default on
        // this run's own observations.
        let cal = planner.calibration.as_ref().expect("recalibration succeeds");
        assert!(cal.samples > 0);
        assert!(
            cal.mae_after_ms <= cal.mae_before_ms,
            "recalibrated MAE {} must not exceed offline MAE {}",
            cal.mae_after_ms,
            cal.mae_before_ms
        );

        // The JSON export is well-formed enough to embed in a snapshot.
        let json = planner.to_json();
        for key in [
            "\"imbalance_planned\":",
            "\"engines\":[",
            "\"rules\":[",
            "\"calibration\":{",
            "\"mae_before_ms\":",
        ] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
    }

    #[test]
    fn non_profiling_runs_have_no_planner_report() {
        let (history, seeds) = small_history();
        let sys =
            TrafficSystem::bootstrap(DUBLIN_BBOX, &seeds, &history, SystemConfig::default())
                .unwrap();
        let live: Vec<BusTrace> = FleetGenerator::new(FleetConfig::small(17), 1)
            .unwrap()
            .take_while(|t| t.timestamp_ms < tms_traffic::DAY_MS + 8 * HOUR_MS)
            .collect();
        let (_, report) = sys.plan_and_run(live, &rules(), 3).unwrap();
        assert!(report.planner.is_none());
        assert!(report.metrics.iter().all(|w| w.rules.is_empty()));
    }

    #[test]
    fn round_robin_strategy_changes_allocation() {
        let (history, seeds) = small_history();
        let sys = TrafficSystem::bootstrap(
            DUBLIN_BBOX,
            &seeds,
            &history,
            SystemConfig { strategy: AllocationStrategy::RoundRobin, ..SystemConfig::default() },
        )
        .unwrap();
        let plan = sys.startup_plan(&rules(), 5).unwrap();
        // Round-robin keeps per-layer groupings: 2 groupings → 3+2 split.
        assert_eq!(plan.groupings.len(), 2);
        assert_eq!(plan.allocation.engines, vec![3, 2]);
    }

    #[test]
    fn rule_shorthand_parsing() {
        let r = parse_rule_shorthand("delay:leaves:100", 0).unwrap();
        assert_eq!(r.attribute, Attribute::Delay);
        assert_eq!(r.window_length, 100);
        let r = parse_rule_shorthand("speed:stops:10:2.5", 1).unwrap();
        assert_eq!(r.location, LocationSelector::BusStops);
        assert_eq!(r.weight, 2.5);
        let r = parse_rule_shorthand("actual_delay:layer2:1", 2).unwrap();
        assert_eq!(r.location, LocationSelector::QuadtreeLayer(2));
        assert!(parse_rule_shorthand("bogus:leaves:10", 0).is_err());
        assert!(parse_rule_shorthand("delay:nowhere:10", 0).is_err());
        assert!(parse_rule_shorthand("delay:leaves", 0).is_err());
        assert!(parse_rule_shorthand("delay:leaves:0", 0).is_err());
    }

    #[test]
    fn empty_rules_rejected() {
        let sys = system();
        assert!(sys.startup_plan(&[], 2).is_err());
    }
}
