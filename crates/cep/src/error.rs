//! Error types for the CEP engine.

use std::fmt;

/// Errors produced by the CEP engine.
#[derive(Debug, Clone, PartialEq)]
pub enum CepError {
    /// The EPL text failed to tokenize.
    Lex {
        /// Byte offset of the failure.
        position: usize,
        /// What went wrong.
        reason: String,
    },
    /// The EPL text failed to parse.
    Parse {
        /// Token index of the failure.
        position: usize,
        /// What went wrong.
        reason: String,
    },
    /// A statement referenced an unknown stream / event type.
    UnknownStream(String),
    /// A statement referenced an unknown field.
    UnknownField {
        /// The field name.
        field: String,
        /// Where it was looked up.
        context: String,
    },
    /// An alias was not declared in the FROM clause, or declared twice.
    BadAlias {
        /// The alias.
        alias: String,
        /// What went wrong.
        reason: String,
    },
    /// A view was used incorrectly (unknown name, wrong arguments…).
    BadView {
        /// The view, as `namespace:name`.
        view: String,
        /// What went wrong.
        reason: String,
    },
    /// Semantic validation of the statement failed.
    Semantic {
        /// What went wrong.
        reason: String,
    },
    /// An event did not match its declared type.
    EventMismatch {
        /// The stream's event type.
        event_type: String,
        /// What went wrong.
        reason: String,
    },
    /// A type error during expression evaluation.
    TypeError {
        /// What went wrong.
        reason: String,
    },
    /// A value-requiring aggregate was finalized over an empty (or, for
    /// stddev, single-sample) input. The engine treats this as "the group
    /// does not fire" rather than an error.
    EmptyAggregate {
        /// The aggregate's name.
        func: &'static str,
    },
    /// An event type was registered twice with different schemas.
    TypeConflict(String),
    /// Cycle detected in INSERT INTO feeding (a rule feeding itself).
    FeedbackCycle {
        /// The stream on which the feedback depth limit tripped.
        stream: String,
    },
}

impl fmt::Display for CepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CepError::Lex { position, reason } => {
                write!(f, "lex error at byte {position}: {reason}")
            }
            CepError::Parse { position, reason } => {
                write!(f, "parse error at token {position}: {reason}")
            }
            CepError::UnknownStream(s) => write!(f, "unknown stream: {s}"),
            CepError::UnknownField { field, context } => {
                write!(f, "unknown field {field} in {context}")
            }
            CepError::BadAlias { alias, reason } => write!(f, "bad alias {alias}: {reason}"),
            CepError::BadView { view, reason } => write!(f, "bad view {view}: {reason}"),
            CepError::Semantic { reason } => write!(f, "semantic error: {reason}"),
            CepError::EventMismatch { event_type, reason } => {
                write!(f, "event does not match type {event_type}: {reason}")
            }
            CepError::TypeError { reason } => write!(f, "type error: {reason}"),
            CepError::EmptyAggregate { func } => {
                write!(f, "{func} aggregate over an empty or too-small input")
            }
            CepError::TypeConflict(t) => {
                write!(f, "event type {t} already registered with a different schema")
            }
            CepError::FeedbackCycle { stream } => {
                write!(f, "INSERT INTO feedback cycle on stream {stream}")
            }
        }
    }
}

impl std::error::Error for CepError {}
