//! A complex event processing engine with an EPL subset — the from-scratch
//! stand-in for Esper (Section 2.1.2 of the paper).
//!
//! The engine holds a set of *standing queries* (rules) written in an
//! SQL-like Event Processing Language. Incoming events update the windows
//! ("views") each rule monitors; whenever a rule's condition holds, the
//! newly produced rows are pushed to the rule's listener — and, for
//! `INSERT INTO` rules, fed back into the engine as fresh events so rules
//! can compose.
//!
//! The supported EPL subset covers everything the paper's generic rule
//! template (Listing 1) needs, and then some:
//!
//! ```text
//! [INSERT INTO out_stream]
//! SELECT * | expr [AS name], ...
//! FROM stream[.view]... AS alias [, stream[.view]... AS alias]...
//! [WHERE predicate]
//! [GROUP BY field, ...]
//! [HAVING predicate-with-aggregates]
//! ```
//!
//! Views: `std:lastevent()`, `std:groupwin(field)` (as a prefix to a data
//! window), `win:length(n)`, `win:length_batch(n)`, `win:time(seconds)`,
//! `win:keepall()`. Aggregations: `avg`, `sum`, `count`, `min`, `max`,
//! `stddev`. Expressions: arithmetic, comparisons, `AND`/`OR`/`NOT`.
//!
//! Module map: [`event`] (types and events) → [`lexer`]/[`parser`]/[`ast`]
//! (EPL front end) → [`plan`] (join planning: equi-key extraction so
//! multi-stream joins run as hash joins, not nested loops) → [`window`]
//! (view state) → [`expr`]/[`agg`] (evaluation) → [`engine`] (the standing
//! query runtime).

pub mod agg;
pub mod ast;
pub mod engine;
pub mod error;
pub mod event;
pub mod expr;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod share;
pub mod window;

pub use engine::{
    Engine, EngineStats, Listener, PartitionState, StatementHandle, StatementId,
    StatementProfile, PROFILE_BUCKETS,
};
pub use error::CepError;
pub use event::{Event, EventType, FieldType, FieldValue};
pub use parser::parse_statement;
pub use plan::OutputRow;
pub use share::{ClusterInfo, SharingReport};
