//! Multi-statement shared evaluation.
//!
//! The paper's Table-6 rule set installs many near-clone statements of
//! the Listing-1 shape on one engine; evaluated independently, every
//! arrival re-windows, re-groups, re-aggregates and re-probes the same
//! bus stream per rule. This module holds the pieces the engine's
//! sharing planner composes at statement-install time:
//!
//! * [`WindowKey`] — the fingerprint under which two FROM sources may
//!   share one [`SourceWindow`] (stream, window spec, groupwin field).
//!   Windows are merged only when their *contents* are also identical
//!   ([`SourceWindow::content_eq`]), which makes sharing semantically
//!   invisible: every statement observes exactly the window state it
//!   would have owned privately.
//! * [`SharedJoinShape`] — recognition of the threshold-join shape
//!   (`lastevent` anchor × grouped pane × `keepall` threshold stream)
//!   that covers the paper's generated rules.
//! * [`PaneBank`] / [`ThresholdIndex`] — one per-group accumulator bank
//!   over a shared pane window (a superset of the cluster's aggregate
//!   fields) and one keyed hash index over a threshold stream, both
//!   delta-maintained. With these, evaluating one arrival is O(groups
//!   touched): a bank lookup, an index probe and a per-statement
//!   HAVING/projection fan-out — instead of O(rules × window × probe).
//! * [`cost`] — the estimator deciding, per statement, whether the
//!   shared path beats a private rescan (small panes are cheaper to
//!   rescan than to fan out).
//!
//! Exactness: the bank finalizes a pane accumulator under the join
//! multiplicity via [`Accumulator::scaled`]; for integer-valued samples
//! the result is bit-identical to the rescan path (the same contract the
//! incremental path of PR 1 relies on, enforced by the differential
//! suite).

use crate::agg::Accumulator;
use crate::error::CepError;
use crate::event::{Event, JoinKey};
use crate::plan::{CompiledStatement, OutputRow};
use crate::window::{SourceWindow, WindowDelta, WindowSpec};
use std::collections::HashMap;

/// Fingerprint under which two FROM sources are window-compatible.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowKey {
    /// Stream (event type) name.
    pub stream: String,
    /// Data window spec.
    pub spec: WindowSpec,
    /// `std:groupwin` field, if grouped.
    pub group_field: Option<usize>,
}

impl WindowKey {
    /// The fingerprint of one compiled source.
    pub fn of(source: &crate::plan::CompiledSource) -> WindowKey {
        WindowKey {
            stream: source.stream.clone(),
            spec: source.window,
            group_field: source.group_field,
        }
    }
}

/// The recognized threshold-join shape (the Listing-1 pattern):
///
/// ```text
/// FROM A.std:lastevent()                    AS anchor,   -- source 0
///      A.std:groupwin(g).<non-batch window> AS pane,     -- source 1
///      B.win:keepall()                      AS thresholds -- source 2
/// WHERE anchor.k0 = pane.g  AND  anchor.t* = thresholds.t*
/// GROUP BY pane.g
/// ```
///
/// For one arrival, every joined row lands in a single group (the
/// anchor's), with multiplicity pane-rows × matching-threshold-rows —
/// which is exactly what a bank lookup plus an index probe reconstructs.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedJoinShape {
    /// Source-0 field joined against the pane's groupwin field.
    pub group_key_field: usize,
    /// Groupwin field of the pane source.
    pub pane_group_field: usize,
    /// Source-0 fields forming the threshold probe key, in join order.
    pub threshold_left_fields: Vec<usize>,
    /// Source-2 fields forming the threshold index key, in join order.
    pub threshold_right_fields: Vec<usize>,
    /// Distinct pane (source 1) fields the statement aggregates.
    pub pane_agg_fields: Vec<usize>,
    /// Distinct threshold (source 2) fields the statement aggregates.
    pub threshold_agg_fields: Vec<usize>,
}

/// Where each of a statement's aggregate calls is served from on the
/// shared path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggSrc {
    /// `count(*)`: pane-rows × threshold-rows, no accumulator needed.
    CountStar,
    /// Pane field accumulator at this position in the bank's field list.
    Pane(usize),
    /// Threshold field accumulator at this position in the index's
    /// value-field list.
    Threshold(usize),
}

/// Detects the shared-join shape. `None` means the statement falls back
/// to the generic evaluation paths.
pub fn shared_join_shape(stmt: &CompiledStatement) -> Option<SharedJoinShape> {
    if stmt.sources.len() != 3 || !stmt.is_aggregated() {
        return None;
    }
    let [anchor, pane, thresholds] = &stmt.sources[..] else { return None };
    // Anchor: bare lastevent over the same stream as the pane.
    if anchor.window != WindowSpec::LastEvent
        || anchor.group_field.is_some()
        || anchor.stream != pane.stream
    {
        return None;
    }
    // Pane: grouped, non-batch FIFO window (batch windows change the
    // anchor-participation story; lastevent panes are legal but trivial).
    let pane_group_field = pane.group_field?;
    if !matches!(pane.window, WindowSpec::Length(_) | WindowSpec::TimeMs(_) | WindowSpec::KeepAll) {
        return None;
    }
    // Thresholds: ungrouped keepall over a *different* stream (insert-only,
    // so the index never needs eviction handling).
    if thresholds.window != WindowSpec::KeepAll
        || thresholds.group_field.is_some()
        || thresholds.stream == anchor.stream
    {
        return None;
    }
    // Join step 1: the pane joined purely through its groupwin panes on a
    // single anchor field.
    let step1 = &stmt.join_steps[0];
    if !step1.group_fast_path || !step1.residual.is_empty() || step1.left_keys.len() != 1 {
        return None;
    }
    let (ls, group_key_field) = step1.left_keys[0];
    if ls != 0 {
        return None;
    }
    // Join step 2: pure equi keys, all probing source-0 fields.
    let step2 = &stmt.join_steps[1];
    if step2.right_keys.is_empty() || !step2.residual.is_empty() {
        return None;
    }
    let mut threshold_left_fields = Vec::with_capacity(step2.left_keys.len());
    for &(s, f) in &step2.left_keys {
        if s != 0 {
            return None;
        }
        threshold_left_fields.push(f);
    }
    // Grouping must be exactly the pane's groupwin field, so every joined
    // row of one arrival falls in the anchor's group.
    if stmt.group_by != [(1, pane_group_field)] {
        return None;
    }
    // Aggregate arguments must live on the pane or the threshold stream.
    let mut pane_agg_fields = Vec::new();
    let mut threshold_agg_fields = Vec::new();
    for call in &stmt.agg_calls {
        match call.arg {
            None => {}
            Some((1, f)) if !pane_agg_fields.contains(&f) => pane_agg_fields.push(f),
            Some((1, _)) => {}
            Some((2, f)) if !threshold_agg_fields.contains(&f) => threshold_agg_fields.push(f),
            Some((2, _)) => {}
            Some(_) => return None,
        }
    }
    Some(SharedJoinShape {
        group_key_field,
        pane_group_field,
        threshold_left_fields,
        threshold_right_fields: step2.right_keys.clone(),
        pane_agg_fields,
        threshold_agg_fields,
    })
}

/// One group's running accumulators within a [`PaneBank`].
#[derive(Debug, Clone)]
pub struct BankGroup {
    /// Accumulators parallel to [`PaneBank::fields`].
    pub accs: Vec<Accumulator>,
    /// Retained rows of the group (also the pane occupancy).
    pub rows: u64,
}

/// The per-group accumulator bank of one shared pane window: a superset
/// of every cluster member's aggregated fields, delta-maintained from
/// the window's mutations. Unfiltered — the pane join has no residual
/// predicates, so every retained row contributes.
#[derive(Debug, Default)]
pub struct PaneBank {
    /// Aggregated field indices; append-only so member positions stay
    /// stable when a later install widens the union.
    pub fields: Vec<usize>,
    groups: HashMap<JoinKey, BankGroup>,
}

impl PaneBank {
    /// Ensures a field is tracked, returning its stable position. A new
    /// field requires a rebuild if the window already holds events — the
    /// caller handles that via [`PaneBank::rebuild`].
    pub fn ensure_field(&mut self, field: usize) -> (usize, bool) {
        match self.fields.iter().position(|&f| f == field) {
            Some(pos) => (pos, false),
            None => {
                self.fields.push(field);
                (self.fields.len() - 1, true)
            }
        }
    }

    /// One group's accumulators.
    pub fn group(&self, key: &JoinKey) -> Option<&BankGroup> {
        self.groups.get(key)
    }

    /// Number of live groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Rebuilds the bank from a window's full contents (install-time
    /// widening and replans).
    pub fn rebuild(&mut self, window: &SourceWindow) -> Result<(), CepError> {
        self.groups.clear();
        let group_field = window.group_field().expect("pane banks require grouped windows");
        for e in window.iter() {
            self.add(e, group_field)?;
        }
        Ok(())
    }

    /// Folds one window mutation into the bank (evictions first, then
    /// insertions — mirroring [`CompiledStatement::apply_delta`]).
    pub fn apply_delta(
        &mut self,
        window: &SourceWindow,
        delta: &WindowDelta,
    ) -> Result<(), CepError> {
        let group_field = window.group_field().expect("pane banks require grouped windows");
        for e in &delta.evicted {
            self.remove(e, group_field, window)?;
        }
        for e in &delta.inserted {
            self.add(e, group_field)?;
        }
        Ok(())
    }

    fn add(&mut self, e: &Event, group_field: usize) -> Result<(), CepError> {
        let key = e.value_at(group_field).expect("validated index").join_key();
        let nfields = self.fields.len();
        let group = self.groups.entry(key).or_insert_with(|| BankGroup {
            accs: vec![Accumulator::new(); nfields],
            rows: 0,
        });
        for (acc, &f) in group.accs.iter_mut().zip(&self.fields) {
            acc.add(e.value_at(f).expect("validated index").as_f64()?);
        }
        group.rows += 1;
        Ok(())
    }

    fn remove(
        &mut self,
        e: &Event,
        group_field: usize,
        window: &SourceWindow,
    ) -> Result<(), CepError> {
        let key = e.value_at(group_field).expect("validated index").join_key();
        let Some(group) = self.groups.get_mut(&key) else {
            debug_assert!(false, "eviction for a group the bank never saw");
            return Ok(());
        };
        group.rows -= 1;
        if group.rows == 0 {
            self.groups.remove(&key);
            return Ok(());
        }
        let mut stale: Vec<usize> = Vec::new();
        for (i, (acc, &f)) in group.accs.iter_mut().zip(&self.fields).enumerate() {
            if acc.remove(e.value_at(f).expect("validated index").as_f64()?) {
                stale.push(i);
            }
        }
        // Lazy extrema repair from the surviving pane rows.
        for i in stale {
            let f = self.fields[i];
            let mut values = Vec::new();
            for w in window.iter_group(&key) {
                values.push(w.value_at(f).expect("validated index").as_f64()?);
            }
            group.accs[i].rebuild_extrema(values.into_iter());
        }
        Ok(())
    }
}

/// One keyed entry of a [`ThresholdIndex`].
#[derive(Debug, Clone)]
pub struct ThresholdEntry {
    /// Accumulators parallel to [`ThresholdIndex::value_fields`].
    pub accs: Vec<Accumulator>,
    /// Matching threshold rows under this key.
    pub rows: u64,
    /// Latest inserted matching row — the binding for bare field
    /// references (last-row semantics of the rescan path).
    pub last: Event,
}

/// Hash index over a threshold `keepall` stream, keyed by the join key
/// fields and carrying running accumulators over the cluster's threshold
/// aggregate fields. Insert-only: `keepall` never evicts and ignores
/// time advances, so maintenance is one entry update per threshold row.
#[derive(Debug)]
pub struct ThresholdIndex {
    /// Key fields within the threshold event type, in join order.
    pub key_fields: Vec<usize>,
    /// Aggregated value fields; append-only (stable member positions).
    pub value_fields: Vec<usize>,
    entries: HashMap<Vec<JoinKey>, ThresholdEntry>,
}

impl ThresholdIndex {
    /// An empty index over the given key fields.
    pub fn new(key_fields: Vec<usize>) -> ThresholdIndex {
        ThresholdIndex { key_fields, value_fields: Vec::new(), entries: HashMap::new() }
    }

    /// Ensures a value field is tracked, returning its stable position
    /// and whether the index widened (caller rebuilds if non-empty).
    pub fn ensure_field(&mut self, field: usize) -> (usize, bool) {
        match self.value_fields.iter().position(|&f| f == field) {
            Some(pos) => (pos, false),
            None => {
                self.value_fields.push(field);
                (self.value_fields.len() - 1, true)
            }
        }
    }

    /// The entry under a probe key.
    pub fn entry(&self, key: &[JoinKey]) -> Option<&ThresholdEntry> {
        self.entries.get(key)
    }

    /// Number of distinct keys.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Rebuilds from a window's full contents (in insertion order, so
    /// `last` matches the rescan path's last-row binding).
    pub fn rebuild(&mut self, window: &SourceWindow) -> Result<(), CepError> {
        self.entries.clear();
        for e in window.iter() {
            self.insert(e)?;
        }
        Ok(())
    }

    /// Indexes one inserted threshold row.
    pub fn insert(&mut self, e: &Event) -> Result<(), CepError> {
        let key: Vec<JoinKey> = self
            .key_fields
            .iter()
            .map(|&f| e.value_at(f).expect("validated index").join_key())
            .collect();
        let nfields = self.value_fields.len();
        let entry = self.entries.entry(key).or_insert_with(|| ThresholdEntry {
            accs: vec![Accumulator::new(); nfields],
            rows: 0,
            last: e.clone(),
        });
        for (acc, &f) in entry.accs.iter_mut().zip(&self.value_fields) {
            acc.add(e.value_at(f).expect("validated index").as_f64()?);
        }
        entry.rows += 1;
        entry.last = e.clone();
        Ok(())
    }
}

/// What triggered a shared-join evaluation.
#[derive(Debug, Clone, Copy)]
pub enum SharedAnchor<'a> {
    /// An arrival on the anchor/pane stream.
    Source0(&'a Event),
    /// An arrival on the threshold stream.
    Threshold(&'a Event),
}

/// Evaluates one shared-join statement for one arrival in O(1): a bank
/// lookup, an index probe and the statement's HAVING/projection fan-out.
/// Byte-identical to [`CompiledStatement::evaluate`] for eligible
/// statements under integer-valued samples.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_shared_join(
    stmt: &CompiledStatement,
    shape: &SharedJoinShape,
    aggs: &[AggSrc],
    source0: &SourceWindow,
    pane: &SourceWindow,
    bank: &PaneBank,
    tindex: &ThresholdIndex,
    anchor: SharedAnchor<'_>,
) -> Result<Vec<OutputRow>, CepError> {
    // Resolve the source-0 binding: the arriving event, or — for a
    // threshold arrival — whatever the lastevent window holds.
    let (a, arriving_threshold) = match anchor {
        SharedAnchor::Source0(e) => (e, None),
        SharedAnchor::Threshold(t) => {
            let Some(x) = source0.iter().next() else { return Ok(Vec::new()) };
            (x, Some(t))
        }
    };
    if !stmt.passes_first_filter(a)? {
        return Ok(Vec::new());
    }
    let gkey = a.value_at(shape.group_key_field).expect("validated index").join_key();
    let n = pane.group_len(&gkey) as u64;
    if n == 0 {
        return Ok(Vec::new());
    }
    let tkey: Vec<JoinKey> = shape
        .threshold_left_fields
        .iter()
        .map(|&f| a.value_at(f).expect("validated index").join_key())
        .collect();
    if let Some(t) = arriving_threshold {
        // istream restriction: a threshold arrival only emits when it
        // itself participates in the joined group, i.e. its key matches
        // the probe key of the standing anchor event.
        let participates = shape
            .threshold_right_fields
            .iter()
            .zip(&tkey)
            .all(|(&f, k)| t.value_at(f).expect("validated index").join_key() == *k);
        if !participates {
            return Ok(Vec::new());
        }
    }
    let Some(entry) = tindex.entry(&tkey) else { return Ok(Vec::new()) };
    let m = entry.rows;
    let Some(bg) = bank.group(&gkey) else {
        debug_assert!(false, "bank group missing despite non-empty pane");
        return Ok(Vec::new());
    };
    let mut agg_values = Vec::with_capacity(stmt.agg_calls.len());
    for (src, call) in aggs.iter().zip(&stmt.agg_calls) {
        let v = match src {
            AggSrc::CountStar => Ok((n * m) as f64),
            AggSrc::Pane(pos) => bg.accs[*pos].scaled(m).finish(call.func),
            AggSrc::Threshold(pos) => entry.accs[*pos].scaled(n).finish(call.func),
        };
        match v {
            Ok(v) => agg_values.push(v),
            Err(CepError::EmptyAggregate { .. }) => return Ok(Vec::new()),
            Err(e) => return Err(e),
        }
    }
    // The group's last joined row: (anchor, newest pane row, latest
    // matching threshold) — the binding bare fields resolve against.
    let pane_last = pane.group_back(&gkey).expect("n > 0").clone();
    let binding = [a.clone(), pane_last, entry.last.clone()];
    stmt.emit_shared_group(&binding, &agg_values)
}

/// The cost model: per-event work estimates deciding shared vs private
/// evaluation, in abstract row-visit units (the "To Share, or not to
/// Share" framing: share when the superset bank plus fan-out beats the
/// per-statement rescan).
pub mod cost {
    use crate::window::WindowSpec;

    /// Fixed per-statement fan-out overhead of the shared path (bank
    /// lookup + index probe + finalization).
    pub const FANOUT: f64 = 2.0;
    /// Marginal per-event cost of one extra accumulator field in the
    /// shared bank (only fields this statement adds to the union count).
    pub const FIELD: f64 = 0.25;
    /// Pane-length estimate for time-bounded windows.
    pub const TIME_PANE_EST: f64 = 64.0;
    /// Pane-length estimate for unbounded windows.
    pub const UNBOUNDED_PANE_EST: f64 = 1024.0;
    /// Expected threshold rows matching one probe key.
    pub const MATCHES_EST: f64 = 1.0;

    /// Expected per-group row count of a pane window.
    pub fn pane_len_estimate(spec: WindowSpec) -> f64 {
        match spec {
            WindowSpec::LastEvent => 1.0,
            WindowSpec::Length(n) | WindowSpec::LengthBatch(n) => n as f64,
            WindowSpec::TimeMs(_) | WindowSpec::TimeBatchMs(_) => TIME_PANE_EST,
            WindowSpec::KeepAll => UNBOUNDED_PANE_EST,
        }
    }

    /// Estimated per-event cost of the private rescan path: every pane
    /// row re-joined against the (index-cached) threshold stream and
    /// re-aggregated.
    pub fn private_estimate(pane_spec: WindowSpec) -> f64 {
        pane_len_estimate(pane_spec) * MATCHES_EST + 1.0
    }

    /// Estimated per-event cost of the shared path for a statement that
    /// adds `marginal_fields` new fields to the cluster's bank union.
    pub fn shared_estimate(marginal_fields: usize) -> f64 {
        FANOUT + marginal_fields as f64 * FIELD
    }
}

/// One shared-evaluation cluster in the chosen plan: the statements fanned
/// out from one pane bank + threshold index pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterInfo {
    /// Member statements, in registration order.
    pub statements: Vec<crate::engine::StatementId>,
    /// Width of the cluster's bank field union.
    pub bank_fields: usize,
    /// Distinct keys currently in the cluster's threshold index.
    pub threshold_entries: usize,
    /// Live groups in the cluster's accumulator bank.
    pub bank_groups: usize,
}

/// The sharing plan the engine chose, plus realized counters — exposed
/// via `Engine::sharing_report` so benchmarks and operators can compare
/// the planner's estimate against what actually ran.
#[derive(Debug, Clone, PartialEq)]
pub struct SharingReport {
    /// Whether the sharing planner is enabled.
    pub sharing_enabled: bool,
    /// Window slots referenced by more than one statement source.
    pub shared_windows: usize,
    /// Window slots referenced by exactly one statement source.
    pub private_windows: usize,
    /// Statements evaluated on the shared-join path.
    pub shared_statements: usize,
    /// Shape-eligible statements the cost model kept on private paths.
    pub cost_rejected_statements: usize,
    /// The shared clusters of the chosen plan.
    pub clusters: Vec<ClusterInfo>,
    /// Estimated per-event cost had every statement run privately.
    pub est_private_cost: f64,
    /// Estimated per-event cost of the chosen plan.
    pub est_shared_cost: f64,
    /// Evaluations actually served from shared state.
    pub realized_shared_evals: u64,
    /// Evaluations served by the private paths.
    pub realized_private_evals: u64,
}
