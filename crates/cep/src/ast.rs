//! Abstract syntax tree of the EPL subset.

/// A full EPL statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    /// `INSERT INTO <stream>` target, if any.
    pub insert_into: Option<String>,
    /// The projection.
    pub select: SelectList,
    /// Stream sources in FROM order.
    pub from: Vec<StreamSource>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY fields.
    pub group_by: Vec<FieldRef>,
    /// HAVING predicate (may contain aggregates).
    pub having: Option<Expr>,
    /// ORDER BY keys applied to the output rows of one evaluation.
    pub order_by: Vec<OrderKey>,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Sort expression (may contain aggregates for aggregated statements).
    pub expr: Expr,
    /// `true` for descending order.
    pub descending: bool,
}

/// The SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectList {
    /// `SELECT *`
    Wildcard,
    /// Explicit items.
    Items(Vec<SelectItem>),
}

/// One SELECT item: an expression with an optional output name.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The projected expression.
    pub expr: Expr,
    /// Output column name (`AS name`).
    pub alias: Option<String>,
}

/// One FROM source: `stream[.view]... AS alias`.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSource {
    /// Stream (event type) name.
    pub stream: String,
    /// View chain applied to the stream, in order.
    pub views: Vec<ViewSpec>,
    /// Alias; defaults to the stream name when omitted.
    pub alias: String,
}

/// One view in a chain, e.g. `std:groupwin(location)` or `win:length(10)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewSpec {
    /// Namespace (`std` or `win`).
    pub namespace: String,
    /// View name (`lastevent`, `groupwin`, `length`, `length_batch`,
    /// `time`, `keepall`).
    pub name: String,
    /// Arguments.
    pub args: Vec<ViewArg>,
}

/// A view argument: a field name or a number.
#[derive(Debug, Clone, PartialEq)]
pub enum ViewArg {
    /// A field name argument (e.g. `groupwin(location)`).
    Field(String),
    /// An integer argument (e.g. `length(10)`).
    Int(i64),
    /// A float argument (e.g. `time(30.5)`).
    Float(f64),
}

/// A (possibly qualified) field reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FieldRef {
    /// Source alias; `None` means "resolve by unique field name".
    pub alias: Option<String>,
    /// Field name.
    pub field: String,
}

impl std::fmt::Display for FieldRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.alias {
            Some(a) => write!(f, "{a}.{}", self.field),
            None => write!(f, "{}", self.field),
        }
    }
}

/// Aggregation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Arithmetic mean.
    Avg,
    /// Sum.
    Sum,
    /// Row count (`count(*)` or `count(field)`).
    Count,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Sample standard deviation (n−1), as in Esper.
    Stddev,
}

impl AggFunc {
    /// Parses a function name (already lower-cased).
    pub fn parse(name: &str) -> Option<AggFunc> {
        match name {
            "avg" => Some(AggFunc::Avg),
            "sum" => Some(AggFunc::Sum),
            "count" => Some(AggFunc::Count),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            "stddev" => Some(AggFunc::Stddev),
            _ => None,
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (always yields a float)
    Div,
    /// `=`
    Eq,
    /// `!=` / `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND` (short-circuiting)
    And,
    /// `OR` (short-circuiting)
    Or,
}

impl BinOp {
    /// Whether this operator yields a boolean.
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::And | BinOp::Or
        )
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// Field reference.
    Field(FieldRef),
    /// Aggregate call over a field (or `count(*)` with `None`).
    Agg {
        /// The aggregation function.
        func: AggFunc,
        /// The aggregated field; `None` for `count(*)`.
        arg: Option<FieldRef>,
    },
    /// Binary operation.
    Bin {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
}

impl Expr {
    /// Whether the expression (transitively) contains an aggregate call.
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Bin { lhs, rhs, .. } => lhs.has_aggregate() || rhs.has_aggregate(),
            Expr::Not(e) | Expr::Neg(e) => e.has_aggregate(),
            _ => false,
        }
    }

    /// Collects every field reference in the expression.
    pub fn collect_fields<'a>(&'a self, out: &mut Vec<&'a FieldRef>) {
        match self {
            Expr::Field(f) => out.push(f),
            Expr::Agg { arg: Some(f), .. } => out.push(f),
            Expr::Bin { lhs, rhs, .. } => {
                lhs.collect_fields(out);
                rhs.collect_fields(out);
            }
            Expr::Not(e) | Expr::Neg(e) => e.collect_fields(out),
            _ => {}
        }
    }

    /// Collects every aggregate call in the expression.
    pub fn collect_aggregates<'a>(&'a self, out: &mut Vec<(&'a AggFunc, Option<&'a FieldRef>)>) {
        match self {
            Expr::Agg { func, arg } => out.push((func, arg.as_ref())),
            Expr::Bin { lhs, rhs, .. } => {
                lhs.collect_aggregates(out);
                rhs.collect_aggregates(out);
            }
            Expr::Not(e) | Expr::Neg(e) => e.collect_aggregates(out),
            _ => {}
        }
    }

    /// Splits a predicate into its top-level AND conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            if let Expr::Bin { op: BinOp::And, lhs, rhs } = e {
                walk(lhs, out);
                walk(rhs, out);
            } else {
                out.push(e);
            }
        }
        walk(self, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(name: &str) -> Expr {
        Expr::Field(FieldRef { alias: None, field: name.into() })
    }

    #[test]
    fn conjunct_splitting() {
        let e = Expr::Bin {
            op: BinOp::And,
            lhs: Box::new(Expr::Bin {
                op: BinOp::And,
                lhs: Box::new(field("a")),
                rhs: Box::new(field("b")),
            }),
            rhs: Box::new(Expr::Bin {
                op: BinOp::Or,
                lhs: Box::new(field("c")),
                rhs: Box::new(field("d")),
            }),
        };
        let cs = e.conjuncts();
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0], &field("a"));
        assert_eq!(cs[1], &field("b"));
        // The OR stays whole.
        assert!(matches!(cs[2], Expr::Bin { op: BinOp::Or, .. }));
    }

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Agg { func: AggFunc::Avg, arg: None };
        let nested = Expr::Bin {
            op: BinOp::Gt,
            lhs: Box::new(agg.clone()),
            rhs: Box::new(Expr::Float(1.0)),
        };
        assert!(nested.has_aggregate());
        assert!(!field("x").has_aggregate());
        let mut aggs = Vec::new();
        nested.collect_aggregates(&mut aggs);
        assert_eq!(aggs.len(), 1);
    }

    #[test]
    fn field_collection() {
        let e = Expr::Bin {
            op: BinOp::Add,
            lhs: Box::new(field("x")),
            rhs: Box::new(Expr::Neg(Box::new(field("y")))),
        };
        let mut fs = Vec::new();
        e.collect_fields(&mut fs);
        assert_eq!(fs.len(), 2);
    }
}
