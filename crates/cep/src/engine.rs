//! The standing-query runtime — one instance per Esper-bolt task in the
//! paper's topology.
//!
//! An [`Engine`] owns registered event types, compiled statements with
//! their window state, and the listeners that receive fired rows. It is a
//! single-threaded object by design: the paper runs *multiple engines in
//! parallel*, one per bolt task, each on its own executor thread
//! (Section 3.2); cross-engine parallelism lives in the DSPS layer, not
//! here.

use crate::error::CepError;
use crate::event::{Event, EventType, FieldValue};
use crate::parser::parse_statement;
use crate::plan::{compile, AggCall, CompiledStatement, IncrementalState, JoinCache, OutputRow};
use crate::share::{
    self, cost, AggSrc, ClusterInfo, PaneBank, SharedAnchor, SharedJoinShape, SharingReport,
    ThresholdIndex, WindowKey,
};
use crate::window::{InsertOutcome, SourceWindow, WindowDelta, WindowSpec};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Identifier of a registered statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StatementId(pub u64);

/// Listener invoked with the rows a statement fired for one event.
pub type Listener = Box<dyn FnMut(StatementId, &[OutputRow]) + Send>;

/// One window in the engine's slot arena. Statements reference slots by
/// index; the sharing planner points several statement sources at one
/// slot when their window fingerprints match and their contents are
/// identical, so each arrival is inserted (and its delta computed) once
/// per distinct window instead of once per statement.
struct WindowSlot {
    /// The sharing fingerprint (stream, spec, groupwin field).
    key: WindowKey,
    window: SourceWindow,
    /// Referencing statement sources; 0 marks a free (tombstoned) slot.
    refs: usize,
    /// The visible-window change of the latest mutation (consumed by
    /// incremental statements and the cluster banks).
    delta: WindowDelta,
    /// Outcome of the latest insert into this slot.
    last_outcome: InsertOutcome,
    /// Per-group accumulator bank over this window — the shared cluster
    /// state when the slot serves shared-join statements as their pane.
    pane_bank: Option<PaneBank>,
    /// Keyed hash indexes over this window — one per distinct join-key
    /// shape probing it as a threshold stream.
    tindexes: Vec<ThresholdIndex>,
}

impl WindowSlot {
    /// Frees the slot for reuse, dropping all window and cluster state.
    fn tombstone(&mut self) {
        self.refs = 0;
        self.window = SourceWindow::new(WindowSpec::LastEvent, None)
            .expect("lastevent windows are always valid");
        self.delta = WindowDelta::new();
        self.pane_bank = None;
        self.tindexes.clear();
    }
}

/// How a statement's evaluations are served.
enum Exec {
    /// Shared-join path: O(1) fan-out from the pane bank and threshold
    /// index of the statement's cluster.
    Join {
        shape: SharedJoinShape,
        /// Per aggregate call: which shared accumulator serves it.
        aggs: Vec<AggSrc>,
        /// Index into the threshold slot's `tindexes`.
        tindex: usize,
    },
    /// Private delta-maintained incremental state (`Runtime::inc`).
    Incremental,
    /// Generic: anchor fast path or full rescan, decided per arrival.
    Generic,
}

/// A registered statement with its runtime state.
struct Runtime {
    id: StatementId,
    compiled: CompiledStatement,
    /// Slot-arena indices, one per FROM source.
    slots: Vec<usize>,
    cache: JoinCache,
    /// Delta-maintained aggregate state; `Some` only while the
    /// incremental path is enabled and the statement is eligible.
    inc: Option<IncrementalState>,
    /// The chosen evaluation path.
    exec: Exec,
    /// Cost-model estimates `(private, shared)` for shape-eligible
    /// statements, whichever path was chosen.
    cost_est: Option<(f64, f64)>,
    listener: Option<Listener>,
    fired: u64,
    /// Cumulative profiling counters; `Some` only while profiling is
    /// enabled (the hot path takes no timestamps otherwise).
    profile: Option<ProfileState>,
}

/// Number of log₂ eval-time histogram buckets: bucket *i* covers
/// `[2^i, 2^(i+1))` nanoseconds, matching the DSPS metrics layer's
/// `LatencyHistogram` so profiles merge losslessly downstream.
pub const PROFILE_BUCKETS: usize = 48;

/// The histogram bucket for an eval duration in nanoseconds (same shape
/// as the DSPS layer's `bucket_of`: floor(log2), saturating at the top).
fn profile_bucket(ns: u64) -> usize {
    ((63 - ns.max(1).leading_zeros()) as usize).min(PROFILE_BUCKETS - 1)
}

/// Which evaluation path a statement evaluation took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvalPath {
    Shared,
    Incremental,
    Anchor,
    Rescan,
}

/// Mutable per-statement profiling counters (lives inside `Runtime`).
#[derive(Debug, Clone, PartialEq, Eq)]
struct ProfileState {
    events_in: u64,
    evals: u64,
    firings: u64,
    rows_out: u64,
    eval_ns_sum: u64,
    eval_ns_buckets: [u64; PROFILE_BUCKETS],
    path_shared: u64,
    path_incremental: u64,
    path_anchor: u64,
    path_rescan: u64,
}

impl Default for ProfileState {
    fn default() -> Self {
        ProfileState {
            events_in: 0,
            evals: 0,
            firings: 0,
            rows_out: 0,
            eval_ns_sum: 0,
            eval_ns_buckets: [0; PROFILE_BUCKETS],
            path_shared: 0,
            path_incremental: 0,
            path_anchor: 0,
            path_rescan: 0,
        }
    }
}

impl ProfileState {
    fn record_eval(&mut self, elapsed_ns: u64, path: EvalPath) {
        self.evals += 1;
        self.eval_ns_sum += elapsed_ns;
        self.eval_ns_buckets[profile_bucket(elapsed_ns)] += 1;
        match path {
            EvalPath::Shared => self.path_shared += 1,
            EvalPath::Incremental => self.path_incremental += 1,
            EvalPath::Anchor => self.path_anchor += 1,
            EvalPath::Rescan => self.path_rescan += 1,
        }
    }
}

/// Snapshot of one statement's cumulative profile, returned by
/// [`Engine::profile`]. All counters run from the moment profiling was
/// (re-)enabled; `window_len` is a point-in-time gauge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatementProfile {
    /// The profiled statement.
    pub id: StatementId,
    /// Events delivered to this statement (inserted into its windows).
    pub events_in: u64,
    /// Evaluations run (events that triggered an evaluate, fired or not).
    pub evals: u64,
    /// Evaluations that produced ≥1 row (matches).
    pub firings: u64,
    /// Total rows pushed to the listener.
    pub rows_out: u64,
    /// Sum of eval wall-times, nanoseconds (exact mean = sum / evals).
    pub eval_ns_sum: u64,
    /// Log₂ eval wall-time histogram: bucket *i* counts evals in
    /// `[2^i, 2^(i+1))` ns (bucket 0 also absorbs sub-1 ns evals).
    pub eval_ns_buckets: [u64; PROFILE_BUCKETS],
    /// Evaluations served from a shared cluster's bank/index state.
    pub path_shared: u64,
    /// Evaluations served by the delta-maintained incremental path.
    pub path_incremental: u64,
    /// Evaluations served by the anchor fast path.
    pub path_anchor: u64,
    /// Evaluations that rescanned the full window state.
    pub path_rescan: u64,
    /// Current occupancy summed over the statement's source windows.
    pub window_len: usize,
}

/// Engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events accepted by [`Engine::send_event`] (including fed-back ones).
    pub events_in: u64,
    /// Total rows pushed to listeners.
    pub rows_out: u64,
    /// Statement firings (listener invocations with ≥1 row).
    pub firings: u64,
}

/// Maximum `INSERT INTO` feedback depth before the engine reports a cycle.
const MAX_FEEDBACK_DEPTH: usize = 16;

/// A handle returned by statement registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatementHandle {
    /// The registered statement's id.
    pub id: StatementId,
}

/// A migrated slice of one stream's window state: the rows (timestamp +
/// schema-ordered field values) of every event whose partition field
/// matched the migrating key set. Plain data by construction — no window
/// or engine internals — so a handoff can cross thread, process or wire
/// boundaries; the receiving engine revalidates each row against its own
/// registered schema on [`Engine::absorb_partition`].
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionState {
    /// The stream the rows belong to.
    pub stream: String,
    /// `(timestamp_ms, field values in schema order)` per shipped event,
    /// in timestamp order.
    pub rows: Vec<(u64, Vec<FieldValue>)>,
}

impl PartitionState {
    /// Number of shipped events.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether nothing matched at collection time.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// The CEP engine.
pub struct Engine {
    types: HashMap<String, Arc<EventType>>,
    statements: Vec<Runtime>,
    /// The window-slot arena; statements hold indices into it.
    slots: Vec<WindowSlot>,
    /// stream name → indices into `statements` subscribed to it.
    by_stream: HashMap<String, Vec<usize>>,
    /// stream name → live slot indices fed by it.
    slots_by_stream: HashMap<String, Vec<usize>>,
    next_id: u64,
    stats: EngineStats,
    /// Whether eligible statements evaluate via delta-maintained
    /// aggregates / the anchor fast path instead of a window rescan.
    incremental_enabled: bool,
    /// Whether the install-time sharing planner may merge compatible
    /// windows and serve clusters from shared bank/index state.
    sharing_enabled: bool,
    /// Whether per-statement profiles are collected (off by default: the
    /// hot path then takes no timestamps and touches no extra counters).
    profiling_enabled: bool,
    /// Evaluations actually served from shared cluster state (kept even
    /// with profiling off — feeds the sharing report's realized columns).
    realized_shared_evals: u64,
    /// Evaluations served by the private paths.
    realized_private_evals: u64,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("types", &self.types.len())
            .field("statements", &self.statements.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Engine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Engine {
            types: HashMap::new(),
            statements: Vec::new(),
            slots: Vec::new(),
            by_stream: HashMap::new(),
            slots_by_stream: HashMap::new(),
            next_id: 0,
            stats: EngineStats::default(),
            incremental_enabled: true,
            sharing_enabled: true,
            profiling_enabled: false,
            realized_shared_evals: 0,
            realized_private_evals: 0,
        }
    }

    /// Registers an event type (a stream). Re-registering the identical
    /// schema is a no-op; a different schema under the same name fails.
    pub fn register_type(&mut self, ty: EventType) -> Result<(), CepError> {
        match self.types.get(ty.name()) {
            Some(existing) if **existing == ty => Ok(()),
            Some(_) => Err(CepError::TypeConflict(ty.name().to_string())),
            None => {
                self.types.insert(ty.name().to_string(), Arc::new(ty));
                Ok(())
            }
        }
    }

    /// The registered type for a stream.
    pub fn event_type(&self, stream: &str) -> Option<&Arc<EventType>> {
        self.types.get(stream)
    }

    /// Compiles and registers an EPL statement with a listener.
    pub fn create_statement(
        &mut self,
        epl: &str,
        listener: Listener,
    ) -> Result<StatementHandle, CepError> {
        self.create_statement_inner(epl, Some(listener))
    }

    /// Compiles and registers a statement without a listener — useful for
    /// pure `INSERT INTO` plumbing rules.
    pub fn create_statement_silent(&mut self, epl: &str) -> Result<StatementHandle, CepError> {
        self.create_statement_inner(epl, None)
    }

    fn create_statement_inner(
        &mut self,
        epl: &str,
        listener: Option<Listener>,
    ) -> Result<StatementHandle, CepError> {
        let stmt = parse_statement(epl)?;
        let compiled = compile(&stmt, epl, &self.types)?;
        // INSERT INTO target must be a registered type whose schema the
        // projection can populate; the type is created on first need.
        if let Some(target) = &compiled.insert_into {
            if !self.types.contains_key(target) {
                // Derive the output event type from the projection columns.
                let fields = compiled
                    .columns
                    .iter()
                    .map(|c| (c.clone(), crate::event::FieldType::Float))
                    .collect::<Vec<_>>();
                // Column types are not statically known for arbitrary
                // expressions; INSERT INTO therefore requires explicit
                // pre-registration for non-numeric outputs.
                let ty = EventType::new(target.clone(), fields)?;
                self.types.insert(target.clone(), Arc::new(ty));
            }
        }
        // Window planning: with sharing on, attach each source to an
        // existing fingerprint-identical slot when doing so is invisible —
        // the slot must be pristine (never written), so both statements
        // observe exactly the window history they would have privately.
        // Non-pristine candidates stay private; a later
        // `set_sharing_enabled(true)` replan merges content-equal windows.
        let mut slot_ids = Vec::with_capacity(compiled.sources.len());
        for src in &compiled.sources {
            let key = WindowKey::of(src);
            let found = if self.sharing_enabled {
                self.slots
                    .iter()
                    .position(|sl| sl.refs > 0 && sl.key == key && sl.window.version() == 0)
            } else {
                None
            };
            let sid = match found {
                Some(sid) => {
                    self.slots[sid].refs += 1;
                    sid
                }
                None => {
                    let window = src.make_window()?;
                    push_slot(
                        &mut self.slots,
                        WindowSlot {
                            key,
                            window,
                            refs: 1,
                            delta: WindowDelta::new(),
                            last_outcome: InsertOutcome { evaluate: false },
                            pane_bank: None,
                            tindexes: Vec::new(),
                        },
                    )
                }
            };
            slot_ids.push(sid);
        }
        let id = StatementId(self.next_id);
        self.next_id += 1;
        let cache = JoinCache::for_statement(&compiled);
        let mut rt = Runtime {
            id,
            compiled,
            slots: slot_ids,
            cache,
            inc: None,
            exec: Exec::Generic,
            cost_est: None,
            listener,
            fired: 0,
            profile: self.profiling_enabled.then(ProfileState::default),
        };
        self.plan_statement(&mut rt)?;
        self.statements.push(rt);
        self.rebuild_routing();
        Ok(StatementHandle { id })
    }

    /// Chooses a statement's evaluation path from the current switches
    /// and the cost model, building whatever state the path needs.
    fn plan_statement(&mut self, rt: &mut Runtime) -> Result<(), CepError> {
        rt.inc = None;
        rt.exec = Exec::Generic;
        rt.cost_est = None;
        if self.incremental_enabled && rt.compiled.incremental_eligible() {
            rt.inc = Some(rt.compiled.build_incremental(&self.slots[rt.slots[0]].window)?);
            rt.exec = Exec::Incremental;
            return Ok(());
        }
        let Some(shape) = share::shared_join_shape(&rt.compiled) else { return Ok(()) };
        // Cost decision: marginal fields are the aggregate inputs this
        // statement would add to its cluster's existing bank/index unions.
        let (s1, s2) = (rt.slots[1], rt.slots[2]);
        let bank_fields: &[usize] =
            self.slots[s1].pane_bank.as_ref().map_or(&[], |b| b.fields.as_slice());
        let index_fields: &[usize] = self.slots[s2]
            .tindexes
            .iter()
            .find(|t| t.key_fields == shape.threshold_right_fields)
            .map_or(&[], |t| t.value_fields.as_slice());
        let marginal = shape.pane_agg_fields.iter().filter(|f| !bank_fields.contains(f)).count()
            + shape.threshold_agg_fields.iter().filter(|f| !index_fields.contains(f)).count();
        let est_private = cost::private_estimate(rt.compiled.sources[1].window);
        let est_shared = cost::shared_estimate(marginal);
        rt.cost_est = Some((est_private, est_shared));
        if self.sharing_enabled && est_shared < est_private {
            let (aggs, tindex) =
                ensure_join_state(&mut self.slots, s1, s2, &shape, &rt.compiled.agg_calls)?;
            rt.exec = Exec::Join { shape, aggs, tindex };
        }
        Ok(())
    }

    /// Removes a statement (dynamic rule management). Its listener is
    /// dropped; windows it shared live on for the remaining cluster
    /// members, windows it owned alone are freed.
    pub fn remove_statement(&mut self, id: StatementId) -> Result<(), CepError> {
        let idx = self
            .statements
            .iter()
            .position(|r| r.id == id)
            .ok_or_else(|| CepError::Semantic { reason: format!("no statement {id:?}") })?;
        let rt = self.statements.remove(idx);
        for &sid in &rt.slots {
            let slot = &mut self.slots[sid];
            slot.refs -= 1;
            if slot.refs == 0 {
                slot.tombstone();
            }
        }
        self.rebuild_routing();
        // Shared bank/index positions are allocated in statement order;
        // replan so surviving members keep consistent unions.
        self.replan_exec()
    }

    /// Rebuilds the stream→statement and stream→slot routing tables.
    fn rebuild_routing(&mut self) {
        self.by_stream.clear();
        for (i, r) in self.statements.iter().enumerate() {
            let mut streams: Vec<&str> =
                r.compiled.sources.iter().map(|s| s.stream.as_str()).collect();
            streams.sort_unstable();
            streams.dedup();
            for s in streams {
                self.by_stream.entry(s.to_string()).or_default().push(i);
            }
        }
        self.slots_by_stream.clear();
        for (sid, slot) in self.slots.iter().enumerate() {
            if slot.refs > 0 {
                self.slots_by_stream.entry(slot.key.stream.clone()).or_default().push(sid);
            }
        }
    }

    /// Re-chooses every statement's evaluation path (after a switch flip
    /// or a removal), rebuilding shared bank/index state from the live
    /// windows so the plan can change mid-stream.
    fn replan_exec(&mut self) -> Result<(), CepError> {
        for slot in &mut self.slots {
            slot.pane_bank = None;
            slot.tindexes.clear();
        }
        let mut statements = std::mem::take(&mut self.statements);
        let mut result = Ok(());
        for rt in &mut statements {
            if let Err(e) = self.plan_statement(rt) {
                result = Err(e);
                break;
            }
        }
        self.statements = statements;
        result
    }

    /// Number of registered statements.
    pub fn statement_count(&self) -> usize {
        self.statements.len()
    }

    /// How many times a statement has fired.
    pub fn fired_count(&self, id: StatementId) -> Option<u64> {
        self.statements.iter().find(|r| r.id == id).map(|r| r.fired)
    }

    /// Engine counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Ablation switch: disables the per-statement join-index cache so
    /// every evaluation rebuilds its hash indexes (the pre-optimization
    /// behaviour). Used by benchmarks to quantify the cache's effect.
    pub fn set_join_cache_enabled(&mut self, enabled: bool) {
        for rt in &mut self.statements {
            rt.cache.set_disabled(!enabled);
        }
    }

    /// Ablation switch: enables/disables incremental evaluation
    /// (delta-maintained aggregates and the anchor fast path). Disabled,
    /// every arrival rescans the full window state — the
    /// pre-optimization behaviour, kept selectable so benchmarks can
    /// quantify the incremental path and the differential tests can
    /// compare both. Re-enabling rebuilds aggregate state from the live
    /// windows, so the switch can flip mid-stream.
    pub fn set_incremental_enabled(&mut self, enabled: bool) -> Result<(), CepError> {
        self.incremental_enabled = enabled;
        self.replan_exec()
    }

    /// Whether the incremental evaluation path is enabled.
    pub fn incremental_enabled(&self) -> bool {
        self.incremental_enabled
    }

    /// Ablation switch: enables/disables the sharing planner. Disabling
    /// splits every shared window into per-claimant private copies (clone
    /// of the identical contents, so behaviour is unchanged); re-enabling
    /// merges windows that are fingerprint- *and* content-identical back
    /// into shared slots. Either way every statement is replanned, so the
    /// switch can flip mid-stream.
    pub fn set_sharing_enabled(&mut self, enabled: bool) -> Result<(), CepError> {
        if self.sharing_enabled == enabled {
            return Ok(());
        }
        self.sharing_enabled = enabled;
        if enabled {
            self.merge_identical_slots();
        } else {
            self.split_shared_slots();
        }
        self.rebuild_routing();
        self.replan_exec()
    }

    /// Whether the sharing planner is enabled.
    pub fn sharing_enabled(&self) -> bool {
        self.sharing_enabled
    }

    /// Gives every statement source past the first claimant of a shared
    /// slot its own private window (a clone, preserving contents exactly).
    fn split_shared_slots(&mut self) {
        let mut claimed: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for idx in 0..self.statements.len() {
            for pos in 0..self.statements[idx].slots.len() {
                let sid = self.statements[idx].slots[pos];
                if claimed.insert(sid) {
                    continue;
                }
                // Already claimed (by an earlier statement, or an earlier
                // source of a self-join): clone off a private copy.
                self.slots[sid].refs -= 1;
                let slot = WindowSlot {
                    key: self.slots[sid].key.clone(),
                    window: self.slots[sid].window.clone(),
                    refs: 1,
                    delta: WindowDelta::new(),
                    last_outcome: InsertOutcome { evaluate: false },
                    pane_bank: None,
                    tindexes: Vec::new(),
                };
                self.statements[idx].slots[pos] = push_slot(&mut self.slots, slot);
            }
        }
    }

    /// Merges fingerprint- and content-identical windows back into shared
    /// slots (the inverse of [`Engine::split_shared_slots`]).
    fn merge_identical_slots(&mut self) {
        let mut canonical: Vec<usize> = Vec::new();
        for idx in 0..self.statements.len() {
            for pos in 0..self.statements[idx].slots.len() {
                let sid = self.statements[idx].slots[pos];
                let found = canonical.iter().copied().find(|&c| {
                    c != sid
                        && self.slots[c].key == self.slots[sid].key
                        && self.slots[c].window.content_eq(&self.slots[sid].window)
                });
                match found {
                    Some(c) => {
                        self.slots[sid].refs -= 1;
                        if self.slots[sid].refs == 0 {
                            self.slots[sid].tombstone();
                        }
                        self.slots[c].refs += 1;
                        self.statements[idx].slots[pos] = c;
                    }
                    None => {
                        if !canonical.contains(&sid) {
                            canonical.push(sid);
                        }
                    }
                }
            }
        }
    }

    /// The chosen sharing plan plus realized counters: shared vs private
    /// window counts, the clusters with their bank/index occupancy, and
    /// the cost model's estimate of the plan against the all-private
    /// alternative.
    pub fn sharing_report(&self) -> SharingReport {
        let shared_windows = self.slots.iter().filter(|s| s.refs > 1).count();
        let private_windows = self.slots.iter().filter(|s| s.refs == 1).count();
        let mut clusters: Vec<((usize, usize, usize), ClusterInfo)> = Vec::new();
        let mut shared_statements = 0;
        let mut cost_rejected_statements = 0;
        let mut est_private_cost = 0.0;
        let mut est_shared_cost = 0.0;
        for rt in &self.statements {
            if let Some((est_p, est_s)) = rt.cost_est {
                est_private_cost += est_p;
                if let Exec::Join { .. } = rt.exec {
                    est_shared_cost += est_s;
                } else {
                    est_shared_cost += est_p;
                    if self.sharing_enabled {
                        cost_rejected_statements += 1;
                    }
                }
            }
            let Exec::Join { tindex, .. } = &rt.exec else { continue };
            shared_statements += 1;
            let key = (rt.slots[1], rt.slots[2], *tindex);
            let info = match clusters.iter_mut().find(|(k, _)| *k == key) {
                Some((_, info)) => info,
                None => {
                    let bank = self.slots[rt.slots[1]].pane_bank.as_ref();
                    let ti = &self.slots[rt.slots[2]].tindexes[*tindex];
                    clusters.push((
                        key,
                        ClusterInfo {
                            statements: Vec::new(),
                            bank_fields: bank.map_or(0, |b| b.fields.len()),
                            threshold_entries: ti.entry_count(),
                            bank_groups: bank.map_or(0, |b| b.group_count()),
                        },
                    ));
                    &mut clusters.last_mut().expect("just pushed").1
                }
            };
            info.statements.push(rt.id);
        }
        SharingReport {
            sharing_enabled: self.sharing_enabled,
            shared_windows,
            private_windows,
            shared_statements,
            cost_rejected_statements,
            clusters: clusters.into_iter().map(|(_, info)| info).collect(),
            est_private_cost,
            est_shared_cost,
            realized_shared_evals: self.realized_shared_evals,
            realized_private_evals: self.realized_private_evals,
        }
    }

    /// Enables/disables per-statement profiling. Off (the default) the
    /// event hot path takes no timestamps; on, every evaluation records
    /// its wall-time into a log₂ histogram plus path and rate counters.
    /// Re-enabling resets all profile counters to zero.
    pub fn set_profiling_enabled(&mut self, enabled: bool) {
        self.profiling_enabled = enabled;
        for rt in &mut self.statements {
            rt.profile = enabled.then(ProfileState::default);
        }
    }

    /// Whether per-statement profiling is enabled.
    pub fn profiling_enabled(&self) -> bool {
        self.profiling_enabled
    }

    /// Cumulative per-statement profiles, in statement registration
    /// order. Empty unless [`Engine::set_profiling_enabled`] is on.
    pub fn profile(&self) -> Vec<StatementProfile> {
        self.statements
            .iter()
            .filter_map(|rt| {
                rt.profile.as_ref().map(|p| StatementProfile {
                    id: rt.id,
                    events_in: p.events_in,
                    evals: p.evals,
                    firings: p.firings,
                    rows_out: p.rows_out,
                    eval_ns_sum: p.eval_ns_sum,
                    eval_ns_buckets: p.eval_ns_buckets,
                    path_shared: p.path_shared,
                    path_incremental: p.path_incremental,
                    path_anchor: p.path_anchor,
                    path_rescan: p.path_rescan,
                    window_len: rt.slots.iter().map(|&sid| self.slots[sid].window.len()).sum(),
                })
            })
            .collect()
    }

    /// Builds an event for a registered stream from field pairs.
    pub fn make_event(
        &self,
        stream: &str,
        timestamp_ms: u64,
        pairs: &[(&str, FieldValue)],
    ) -> Result<Event, CepError> {
        let ty = self
            .types
            .get(stream)
            .ok_or_else(|| CepError::UnknownStream(stream.to_string()))?;
        Event::from_pairs(ty, timestamp_ms, pairs)
    }

    /// Sends an event into the engine, running every subscribed statement
    /// and following `INSERT INTO` feedback.
    pub fn send_event(&mut self, event: Event) -> Result<(), CepError> {
        self.send_event_depth(event, 0)
    }

    fn send_event_depth(&mut self, event: Event, depth: usize) -> Result<(), CepError> {
        if depth >= MAX_FEEDBACK_DEPTH {
            return Err(CepError::FeedbackCycle { stream: event.event_type().to_string() });
        }
        if !self.types.contains_key(event.event_type()) {
            return Err(CepError::UnknownStream(event.event_type().to_string()));
        }
        self.stats.events_in += 1;

        // Phase 1: insert into every live slot fed by this stream — once
        // per distinct window, however many statements read it — folding
        // the change into the slot's bank/index state. The outcome and
        // delta stay on the slot for phase 2's consumers.
        let stream = event.event_type().to_string();
        if let Some(slot_ids) = self.slots_by_stream.get(&stream) {
            for &sid in slot_ids {
                let slot = &mut self.slots[sid];
                slot.last_outcome = slot.window.insert_with_delta(&event, &mut slot.delta);
                if let Some(bank) = &mut slot.pane_bank {
                    bank.apply_delta(&slot.window, &slot.delta)?;
                }
                for ti in &mut slot.tindexes {
                    for e in &slot.delta.inserted {
                        ti.insert(e)?;
                    }
                    debug_assert!(
                        slot.delta.evicted.is_empty(),
                        "threshold keepall windows never evict"
                    );
                }
            }
        }

        // Phase 2: run every subscribed statement against the updated
        // slots. Inserting all windows before any evaluation is
        // observationally equivalent to the per-statement interleaving:
        // statements only read their *own* slots, each of which received
        // exactly this one arrival since the last evaluation.
        let Some(subscribers) = self.by_stream.get(&stream).cloned() else {
            return Ok(());
        };
        let mut fed_back: Vec<Event> = Vec::new();
        {
            let Engine {
                statements,
                slots,
                types,
                stats,
                incremental_enabled,
                realized_shared_evals,
                realized_private_evals,
                ..
            } = self;
            for idx in subscribers {
                let rt = &mut statements[idx];
                if let Some(p) = rt.profile.as_mut() {
                    // Counted once per arrival, however many of the
                    // statement's sources (or cluster siblings) the event
                    // reached — profiles stay comparable across plans.
                    p.events_in += 1;
                }
                let mut evaluate = false;
                let mut batch_release = false;
                for (src, &sid) in rt.compiled.sources.iter().zip(&rt.slots) {
                    if src.stream != stream {
                        continue;
                    }
                    let slot = &slots[sid];
                    if slot.last_outcome.evaluate {
                        evaluate = true;
                        if matches!(
                            slot.window.spec(),
                            WindowSpec::LengthBatch(_) | WindowSpec::TimeBatchMs(_)
                        ) {
                            batch_release = true;
                        }
                    }
                }
                if let Some(state) = &mut rt.inc {
                    // Incremental statements are single-source, so their
                    // slot-0 delta is exactly this arrival's change.
                    let slot = &slots[rt.slots[0]];
                    rt.compiled.apply_delta(&slot.window, &slot.delta, state)?;
                }
                if !evaluate {
                    continue;
                }
                let anchor = if batch_release { None } else { Some(&event) };
                let t0 = rt.profile.is_some().then(Instant::now);
                let (rows, path) = if let Exec::Join { shape, aggs, tindex } = &rt.exec {
                    let s0 = &slots[rt.slots[0]];
                    let s1 = &slots[rt.slots[1]];
                    let s2 = &slots[rt.slots[2]];
                    let bank = s1.pane_bank.as_ref().expect("join exec keeps a bank");
                    let ti = &s2.tindexes[*tindex];
                    let sa = if rt.compiled.sources[0].stream == stream {
                        SharedAnchor::Source0(&event)
                    } else {
                        SharedAnchor::Threshold(&event)
                    };
                    (
                        share::evaluate_shared_join(
                            &rt.compiled,
                            shape,
                            aggs,
                            &s0.window,
                            &s1.window,
                            bank,
                            ti,
                            sa,
                        )?,
                        EvalPath::Shared,
                    )
                } else if let Some(state) = &rt.inc {
                    (rt.compiled.evaluate_incremental(anchor, state)?, EvalPath::Incremental)
                } else if *incremental_enabled
                    && rt.compiled.anchor_fast_eligible()
                    && !batch_release
                {
                    (rt.compiled.evaluate_anchor(&event)?, EvalPath::Anchor)
                } else {
                    let windows: Vec<&SourceWindow> =
                        rt.slots.iter().map(|&sid| &slots[sid].window).collect();
                    (rt.compiled.evaluate(&windows, anchor, &mut rt.cache)?, EvalPath::Rescan)
                };
                if path == EvalPath::Shared {
                    *realized_shared_evals += 1;
                } else {
                    *realized_private_evals += 1;
                }
                if let (Some(t0), Some(p)) = (t0, rt.profile.as_mut()) {
                    p.record_eval(t0.elapsed().as_nanos() as u64, path);
                }
                if rows.is_empty() {
                    continue;
                }
                rt.fired += 1;
                stats.firings += 1;
                stats.rows_out += rows.len() as u64;
                if let Some(p) = rt.profile.as_mut() {
                    p.firings += 1;
                    p.rows_out += rows.len() as u64;
                }
                if let Some(listener) = &mut rt.listener {
                    listener(rt.id, &rows);
                }
                if let Some(target) = rt.compiled.insert_into.clone() {
                    let ty = types
                        .get(&target)
                        .ok_or_else(|| CepError::UnknownStream(target.clone()))?
                        .clone();
                    for row in &rows {
                        let pairs: Vec<(&str, FieldValue)> = row
                            .columns()
                            .iter()
                            .map(|c| c.as_str())
                            .zip(row.values().iter().cloned())
                            .collect();
                        fed_back.push(Event::from_pairs(&ty, event.timestamp_ms(), &pairs)?);
                    }
                }
            }
        }
        for e in fed_back {
            self.send_event_depth(e, depth + 1)?;
        }
        Ok(())
    }

    /// Collects the migratable state of one stream's partition — every
    /// retained event (including batch-pending ones) whose `field` value
    /// is in `values` — without touching the engine. Non-destructive: the
    /// companion [`Engine::evict_partition`] removes the same events once
    /// the handoff is safely deposited, so an aborted migration leaves the
    /// source intact.
    ///
    /// Several slots on one stream hold *suffixes* of the same arrival
    /// sequence (a shorter window retains a subset of a longer one), so
    /// per matching key the longest per-slot sequence is shipped; the
    /// destination re-inserts under each of its own windows' specs, which
    /// re-derive their own suffixes. Rows come back merged across keys in
    /// timestamp order.
    pub fn collect_partition(
        &self,
        stream: &str,
        field: &str,
        values: &[FieldValue],
    ) -> Result<PartitionState, CepError> {
        let ty = self
            .types
            .get(stream)
            .ok_or_else(|| CepError::UnknownStream(stream.to_string()))?;
        let fidx = ty.index_of(field).ok_or_else(|| CepError::UnknownField {
            field: field.to_string(),
            context: format!("event type {stream}"),
        })?;
        let keys: std::collections::HashSet<crate::event::JoinKey> =
            values.iter().map(FieldValue::join_key).collect();
        let mut best: HashMap<crate::event::JoinKey, Vec<&Event>> = HashMap::new();
        for &sid in self.slots_by_stream.get(stream).map_or(&[][..], Vec::as_slice) {
            let mut per_key: HashMap<crate::event::JoinKey, Vec<&Event>> = HashMap::new();
            for e in self.slots[sid].window.iter_all() {
                let Some(v) = e.value_at(fidx) else { continue };
                let k = v.join_key();
                if keys.contains(&k) {
                    per_key.entry(k).or_default().push(e);
                }
            }
            for (k, seq) in per_key {
                let entry = best.entry(k).or_default();
                if seq.len() > entry.len() {
                    *entry = seq;
                }
            }
        }
        // Deterministic key order (the caller's `values` order), then a
        // stable timestamp sort to approximate global arrival order —
        // exact within each key, which is all grouped windows and
        // order-insensitive aggregates observe.
        let mut rows: Vec<(u64, Vec<FieldValue>)> = Vec::new();
        let mut seen: std::collections::HashSet<crate::event::JoinKey> =
            std::collections::HashSet::new();
        for v in values {
            let k = v.join_key();
            if !seen.insert(k.clone()) {
                continue;
            }
            if let Some(seq) = best.get(&k) {
                rows.extend(seq.iter().map(|e| (e.timestamp_ms(), e.values().to_vec())));
            }
        }
        rows.sort_by_key(|(ts, _)| *ts);
        Ok(PartitionState { stream: stream.to_string(), rows })
    }

    /// Destructively removes a stream partition's events from every
    /// window (the post-deposit half of a migration; call
    /// [`Engine::collect_partition`] first). Returns how many events were
    /// removed. Shared bank/index state and incremental aggregates are
    /// rebuilt from the surviving window contents, so remaining partitions
    /// evaluate exactly as before.
    pub fn evict_partition(
        &mut self,
        stream: &str,
        field: &str,
        values: &[FieldValue],
    ) -> Result<usize, CepError> {
        let ty = self
            .types
            .get(stream)
            .ok_or_else(|| CepError::UnknownStream(stream.to_string()))?;
        let fidx = ty.index_of(field).ok_or_else(|| CepError::UnknownField {
            field: field.to_string(),
            context: format!("event type {stream}"),
        })?;
        let keys: std::collections::HashSet<crate::event::JoinKey> =
            values.iter().map(FieldValue::join_key).collect();
        let sids = self.slots_by_stream.get(stream).cloned().unwrap_or_default();
        let mut removed = 0usize;
        for sid in sids {
            removed += self.slots[sid].window.remove_matching(|e| {
                e.value_at(fidx).is_some_and(|v| keys.contains(&v.join_key()))
            });
        }
        if removed > 0 {
            self.replan_exec()?;
        }
        Ok(removed)
    }

    /// Installs a shipped partition into every window of its stream —
    /// the destination half of a migration. Each row is revalidated
    /// against the local schema and inserted *without* statement
    /// evaluation (the migrated history already fired at the source);
    /// shared bank/index state and incremental aggregates are then
    /// rebuilt so the next genuine arrival evaluates over the merged
    /// windows. Returns how many events were absorbed.
    pub fn absorb_partition(&mut self, state: &PartitionState) -> Result<usize, CepError> {
        let ty = self
            .types
            .get(&state.stream)
            .ok_or_else(|| CepError::UnknownStream(state.stream.clone()))?
            .clone();
        // One instance per row, shared by every slot it lands in, so
        // instance-identity window comparisons (sharing merges) keep
        // working at the destination.
        let events: Vec<Event> = state
            .rows
            .iter()
            .map(|(ts, values)| Event::new(&ty, *ts, values.clone()))
            .collect::<Result<_, _>>()?;
        let sids = self.slots_by_stream.get(&state.stream).cloned().unwrap_or_default();
        if sids.is_empty() || events.is_empty() {
            return Ok(0);
        }
        for &sid in &sids {
            for e in &events {
                self.slots[sid].window.insert(e);
            }
        }
        self.replan_exec()?;
        Ok(events.len())
    }

    /// Advances event time for every time window (evicting expired events)
    /// without sending an event.
    pub fn advance_time(&mut self, now_ms: u64) {
        let Engine { statements, slots, .. } = self;
        for slot in slots.iter_mut() {
            if slot.refs == 0 {
                continue;
            }
            // Clears the delta even for time-insensitive windows, so
            // phase-2 consumers below never see a stale insert delta.
            slot.window.advance_time_with_delta(now_ms, &mut slot.delta);
            if let Some(bank) = &mut slot.pane_bank {
                bank.apply_delta(&slot.window, &slot.delta)
                    .expect("delta eviction cannot fail after a successful insert");
            }
        }
        for rt in statements.iter_mut() {
            if let Some(state) = &mut rt.inc {
                let slot = &slots[rt.slots[0]];
                rt.compiled
                    .apply_delta(&slot.window, &slot.delta, state)
                    // Removal re-evaluates only expressions that already
                    // succeeded when these events were inserted.
                    .expect("delta eviction cannot fail after a successful insert");
            }
        }
    }
}

/// Adds a slot to the arena, reusing a tombstoned slot when one exists.
fn push_slot(slots: &mut Vec<WindowSlot>, slot: WindowSlot) -> usize {
    match slots.iter().position(|s| s.refs == 0) {
        Some(sid) => {
            slots[sid] = slot;
            sid
        }
        None => {
            slots.push(slot);
            slots.len() - 1
        }
    }
}

/// Ensures the pane bank on `s1` and a threshold index on `s2` cover one
/// statement's aggregate fields, rebuilding from window contents when the
/// unions widen over non-empty windows. Returns the statement's resolved
/// aggregate sources and the index position.
fn ensure_join_state(
    slots: &mut [WindowSlot],
    s1: usize,
    s2: usize,
    shape: &SharedJoinShape,
    agg_calls: &[AggCall],
) -> Result<(Vec<AggSrc>, usize), CepError> {
    let mut pane_pos: HashMap<usize, usize> = HashMap::new();
    {
        let WindowSlot { window, pane_bank, .. } = &mut slots[s1];
        let bank = pane_bank.get_or_insert_with(PaneBank::default);
        let mut widened = false;
        for &f in &shape.pane_agg_fields {
            let (pos, w) = bank.ensure_field(f);
            pane_pos.insert(f, pos);
            widened |= w;
        }
        // Rebuild when the union widened, or when the bank is brand new
        // over a non-empty window (count(*)-only statements add no fields
        // but still need the per-group row counts).
        if !window.is_empty() && (widened || bank.group_count() == 0) {
            bank.rebuild(window)?;
        }
    }
    let mut thr_pos: HashMap<usize, usize> = HashMap::new();
    let tindex = {
        let WindowSlot { window, tindexes, .. } = &mut slots[s2];
        let tpos = match tindexes.iter().position(|t| t.key_fields == shape.threshold_right_fields)
        {
            Some(p) => p,
            None => {
                tindexes.push(ThresholdIndex::new(shape.threshold_right_fields.clone()));
                let p = tindexes.len() - 1;
                if !window.is_empty() {
                    tindexes[p].rebuild(window)?;
                }
                p
            }
        };
        let ti = &mut tindexes[tpos];
        let mut widened = false;
        for &f in &shape.threshold_agg_fields {
            let (pos, w) = ti.ensure_field(f);
            thr_pos.insert(f, pos);
            widened |= w;
        }
        if widened && !window.is_empty() {
            ti.rebuild(window)?;
        }
        tpos
    };
    let aggs = agg_calls
        .iter()
        .map(|c| match c.arg {
            None => AggSrc::CountStar,
            Some((1, f)) => AggSrc::Pane(pane_pos[&f]),
            Some((2, f)) => AggSrc::Threshold(thr_pos[&f]),
            Some(_) => unreachable!("shape detection rejects other aggregate sources"),
        })
        .collect();
    Ok((aggs, tindex))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FieldType;
    use parking_lot::Mutex;

    fn bus_type() -> EventType {
        EventType::with_fields(
            "bus",
            &[
                ("vehicle", FieldType::Int),
                ("location", FieldType::Str),
                ("delay", FieldType::Float),
                ("hour", FieldType::Int),
                ("day", FieldType::Str),
            ],
        )
        .unwrap()
    }

    fn threshold_type() -> EventType {
        EventType::with_fields(
            "thresholdLocation",
            &[
                ("location", FieldType::Str),
                ("hour", FieldType::Int),
                ("day", FieldType::Str),
                ("attribute", FieldType::Float),
            ],
        )
        .unwrap()
    }

    fn engine() -> Engine {
        let mut e = Engine::new();
        e.register_type(bus_type()).unwrap();
        e.register_type(threshold_type()).unwrap();
        e
    }

    fn capture() -> (Arc<Mutex<Vec<OutputRow>>>, Listener) {
        let sink: Arc<Mutex<Vec<OutputRow>>> = Arc::new(Mutex::new(Vec::new()));
        let s2 = sink.clone();
        let listener: Listener = Box::new(move |_, rows| s2.lock().extend(rows.iter().cloned()));
        (sink, listener)
    }

    fn bus_event(e: &Engine, ts: u64, vehicle: i64, loc: &str, delay: f64, hour: i64) -> Event {
        e.make_event(
            "bus",
            ts,
            &[
                ("vehicle", vehicle.into()),
                ("location", loc.into()),
                ("delay", delay.into()),
                ("hour", hour.into()),
                ("day", "weekday".into()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn simple_filter_statement_fires_per_matching_event() {
        let mut e = engine();
        let (sink, l) = capture();
        e.create_statement("SELECT vehicle, delay FROM bus WHERE delay > 60", l).unwrap();
        for (v, d) in [(1, 30.0), (2, 90.0), (3, 61.0), (4, 59.9)] {
            e.send_event(bus_event(&e, 0, v, "R1", d, 8)).unwrap();
        }
        let rows = sink.lock();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("vehicle").unwrap(), &FieldValue::Int(2));
        assert_eq!(rows[1].get("delay").unwrap(), &FieldValue::Float(61.0));
    }

    #[test]
    fn istream_semantics_do_not_refire_old_events() {
        // A length window holds old matching events; only the new arrival
        // may produce output.
        let mut e = engine();
        let (sink, l) = capture();
        e.create_statement("SELECT vehicle FROM bus.win:length(10) WHERE delay > 0", l)
            .unwrap();
        for v in 0..5 {
            e.send_event(bus_event(&e, v as u64, v, "R1", 10.0, 8)).unwrap();
        }
        assert_eq!(sink.lock().len(), 5, "one output per arrival, not per window row");
    }

    #[test]
    fn listing1_rule_fires_when_group_average_exceeds_threshold() {
        let mut e = engine();
        let (sink, l) = capture();
        e.create_statement(
            "SELECT bd2.location AS loc, avg(bd2.delay) AS mean_delay \
             FROM bus.std:lastevent() AS bd, \
                  bus.std:groupwin(location).win:length(3) AS bd2, \
                  thresholdLocation.win:keepall() AS thresholds \
             WHERE bd.hour = thresholds.hour AND bd.day = thresholds.day \
               AND bd.location = thresholds.location AND bd.location = bd2.location \
             GROUP BY bd2.location \
             HAVING avg(bd2.delay) > avg(thresholds.attribute)",
            l,
        )
        .unwrap();

        // Thresholds: R1 fires above 50, R2 above 500.
        let tty = threshold_type();
        for (loc, thr) in [("R1", 50.0), ("R2", 500.0)] {
            e.send_event(
                Event::from_pairs(
                    &tty,
                    0,
                    &[
                        ("location", loc.into()),
                        ("hour", 8i64.into()),
                        ("day", "weekday".into()),
                        ("attribute", thr.into()),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        }

        // R1: delays 40, 60, 80 → averages 40, 50, 60: fires on the third.
        e.send_event(bus_event(&e, 1, 1, "R1", 40.0, 8)).unwrap();
        assert_eq!(sink.lock().len(), 0);
        e.send_event(bus_event(&e, 2, 1, "R1", 60.0, 8)).unwrap();
        assert_eq!(sink.lock().len(), 0, "avg 50 is not > 50");
        e.send_event(bus_event(&e, 3, 1, "R1", 80.0, 8)).unwrap();
        {
            let rows = sink.lock();
            assert_eq!(rows.len(), 1);
            assert_eq!(rows[0].get("loc").unwrap(), &FieldValue::from("R1"));
            assert_eq!(rows[0].get("mean_delay").unwrap(), &FieldValue::Float(60.0));
        }

        // R2 has a huge threshold: same delays never fire.
        for (ts, d) in [(4, 100.0), (5, 200.0), (6, 300.0)] {
            e.send_event(bus_event(&e, ts, 2, "R2", d, 8)).unwrap();
        }
        assert_eq!(sink.lock().len(), 1);

        // Wrong hour: no threshold row joins, so no firing even with huge
        // delay.
        e.send_event(bus_event(&e, 7, 1, "R1", 9999.0, 3)).unwrap();
        assert_eq!(sink.lock().len(), 1);
    }

    #[test]
    fn sliding_window_recovers_after_congestion_passes() {
        let mut e = engine();
        let (sink, l) = capture();
        e.create_statement(
            "SELECT count(*) AS n FROM bus.std:groupwin(location).win:length(2) AS w \
             GROUP BY w.location HAVING avg(w.delay) > 100",
            l,
        )
        .unwrap();
        e.send_event(bus_event(&e, 1, 1, "R1", 200.0, 8)).unwrap();
        e.send_event(bus_event(&e, 2, 1, "R1", 200.0, 8)).unwrap();
        assert_eq!(sink.lock().len(), 2, "fires while averages stay high");
        // Low delays push the high ones out of the window.
        e.send_event(bus_event(&e, 3, 1, "R1", 0.0, 8)).unwrap();
        e.send_event(bus_event(&e, 4, 1, "R1", 0.0, 8)).unwrap();
        assert_eq!(sink.lock().len(), 2, "stops firing once the window cools down");
    }

    #[test]
    fn insert_into_feeds_downstream_rules() {
        let mut e = engine();
        // Pre-register the intermediate stream with the right schema.
        e.register_type(
            EventType::with_fields("delayed", &[("vehicle", FieldType::Int), ("delay", FieldType::Float)])
                .unwrap(),
        )
        .unwrap();
        e.create_statement_silent(
            "INSERT INTO delayed SELECT vehicle, delay FROM bus WHERE delay > 60",
        )
        .unwrap();
        let (sink, l) = capture();
        e.create_statement(
            "SELECT count(*) AS n FROM delayed.win:keepall() HAVING count(*) >= 2",
            l,
        )
        .unwrap();
        e.send_event(bus_event(&e, 1, 1, "R1", 100.0, 8)).unwrap();
        assert_eq!(sink.lock().len(), 0);
        e.send_event(bus_event(&e, 2, 2, "R1", 100.0, 8)).unwrap();
        let rows = sink.lock();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("n").unwrap(), &FieldValue::Float(2.0));
    }

    #[test]
    fn length_batch_emits_on_release_only() {
        let mut e = engine();
        let (sink, l) = capture();
        e.create_statement(
            "SELECT avg(delay) AS m FROM bus.win:length_batch(3)",
            l,
        )
        .unwrap();
        e.send_event(bus_event(&e, 1, 1, "R1", 10.0, 8)).unwrap();
        e.send_event(bus_event(&e, 2, 1, "R1", 20.0, 8)).unwrap();
        assert!(sink.lock().is_empty());
        e.send_event(bus_event(&e, 3, 1, "R1", 30.0, 8)).unwrap();
        let rows = sink.lock();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("m").unwrap(), &FieldValue::Float(20.0));
    }

    #[test]
    fn remove_statement_stops_firing() {
        let mut e = engine();
        let (sink, l) = capture();
        let h = e.create_statement("SELECT vehicle FROM bus WHERE delay > 0", l).unwrap();
        e.send_event(bus_event(&e, 1, 1, "R1", 1.0, 8)).unwrap();
        assert_eq!(sink.lock().len(), 1);
        e.remove_statement(h.id).unwrap();
        assert_eq!(e.statement_count(), 0);
        e.send_event(bus_event(&e, 2, 2, "R1", 1.0, 8)).unwrap();
        assert_eq!(sink.lock().len(), 1);
        assert!(e.remove_statement(h.id).is_err(), "double removal fails");
    }

    #[test]
    fn unknown_stream_and_bad_epl_rejected() {
        let mut e = engine();
        let (_, l) = capture();
        assert!(matches!(
            e.create_statement("SELECT * FROM nope", l),
            Err(CepError::UnknownStream(_))
        ));
        let (_, l) = capture();
        assert!(e.create_statement("SELECT FROM bus", l).is_err());
        let (_, l) = capture();
        assert!(matches!(
            e.create_statement("SELECT missing_field FROM bus", l),
            Err(CepError::UnknownField { .. })
        ));
        // Sending an event of an unregistered type.
        let other =
            EventType::with_fields("ghost", &[("x", FieldType::Int)]).unwrap();
        let ev = Event::new(&other, 0, vec![1i64.into()]).unwrap();
        assert!(matches!(e.send_event(ev), Err(CepError::UnknownStream(_))));
    }

    #[test]
    fn feedback_cycle_detected() {
        let mut e = Engine::new();
        e.register_type(EventType::with_fields("loopy", &[("x", FieldType::Float)]).unwrap())
            .unwrap();
        e.create_statement_silent("INSERT INTO loopy SELECT x FROM loopy WHERE x > 0")
            .unwrap();
        let ty = e.event_type("loopy").unwrap().clone();
        let ev = Event::new(&ty, 0, vec![1.0.into()]).unwrap();
        assert!(matches!(
            e.send_event(ev),
            Err(CepError::FeedbackCycle { .. })
        ));
    }

    #[test]
    fn time_window_with_advance_time() {
        let mut e = engine();
        let (sink, l) = capture();
        e.create_statement(
            "SELECT count(*) AS n FROM bus.win:time(10) HAVING count(*) >= 2",
            l,
        )
        .unwrap();
        e.send_event(bus_event(&e, 1_000, 1, "R1", 1.0, 8)).unwrap();
        e.send_event(bus_event(&e, 2_000, 2, "R1", 1.0, 8)).unwrap();
        assert_eq!(sink.lock().len(), 1, "two events within 10s fire");
        // 50 seconds later the window is empty; a single event cannot fire.
        e.advance_time(52_000);
        e.send_event(bus_event(&e, 52_500, 3, "R1", 1.0, 8)).unwrap();
        assert_eq!(sink.lock().len(), 1);
    }

    #[test]
    fn stats_and_fired_counts() {
        let mut e = engine();
        let (_, l) = capture();
        let h = e.create_statement("SELECT vehicle FROM bus WHERE delay > 50", l).unwrap();
        for d in [10.0, 60.0, 70.0] {
            e.send_event(bus_event(&e, 0, 1, "R1", d, 8)).unwrap();
        }
        assert_eq!(e.stats().events_in, 3);
        assert_eq!(e.stats().rows_out, 2);
        assert_eq!(e.fired_count(h.id), Some(2));
    }

    #[test]
    fn duplicate_type_registration() {
        let mut e = engine();
        e.register_type(bus_type()).unwrap(); // identical: ok
        let conflicting =
            EventType::with_fields("bus", &[("other", FieldType::Int)]).unwrap();
        assert!(matches!(e.register_type(conflicting), Err(CepError::TypeConflict(_))));
    }

    #[test]
    fn incremental_and_rescan_paths_agree() {
        // The same grouped sliding-average statement, one engine per
        // evaluation path; every firing must match row-for-row.
        let epl = "SELECT w.location AS loc, avg(w.delay) AS m, count(*) AS n \
                   FROM bus.std:groupwin(location).win:length(3) AS w \
                   GROUP BY w.location HAVING avg(w.delay) > 20";
        let mut fast = engine();
        let mut slow = engine();
        slow.set_incremental_enabled(false).unwrap();
        let (fsink, fl) = capture();
        let (ssink, sl) = capture();
        fast.create_statement(epl, fl).unwrap();
        slow.create_statement(epl, sl).unwrap();
        for (ts, v, loc, d) in [
            (1u64, 1i64, "R1", 10.0),
            (2, 2, "R2", 50.0),
            (3, 3, "R1", 40.0),
            (4, 4, "R1", 90.0),
            (5, 5, "R2", 0.0),
            (6, 6, "R1", 5.0),
        ] {
            fast.send_event(bus_event(&fast, ts, v, loc, d, 8)).unwrap();
            slow.send_event(bus_event(&slow, ts, v, loc, d, 8)).unwrap();
        }
        assert_eq!(*fsink.lock(), *ssink.lock());
        assert!(!fsink.lock().is_empty(), "the scenario must actually fire");
    }

    #[test]
    fn incremental_toggle_rebuilds_mid_stream() {
        let mut e = engine();
        let (sink, l) = capture();
        e.create_statement(
            "SELECT avg(delay) AS m FROM bus.win:length(3) HAVING count(*) >= 1",
            l,
        )
        .unwrap();
        e.send_event(bus_event(&e, 1, 1, "R1", 10.0, 8)).unwrap();
        e.send_event(bus_event(&e, 2, 2, "R1", 20.0, 8)).unwrap();
        // Disable (drops state), run one event on the rescan path, then
        // re-enable: state must rebuild from the live window.
        e.set_incremental_enabled(false).unwrap();
        e.send_event(bus_event(&e, 3, 3, "R1", 30.0, 8)).unwrap();
        e.set_incremental_enabled(true).unwrap();
        e.send_event(bus_event(&e, 4, 4, "R1", 40.0, 8)).unwrap();
        let rows = sink.lock();
        let means: Vec<f64> =
            rows.iter().map(|r| r.get("m").unwrap().as_f64().unwrap()).collect();
        assert_eq!(means, vec![10.0, 15.0, 20.0, 30.0]);
    }

    #[test]
    fn profiling_off_by_default_and_opt_in() {
        let mut e = engine();
        let (_, l) = capture();
        e.create_statement("SELECT vehicle FROM bus WHERE delay > 50", l).unwrap();
        e.send_event(bus_event(&e, 0, 1, "R1", 60.0, 8)).unwrap();
        assert!(e.profile().is_empty(), "no profiles unless enabled");
        assert!(!e.profiling_enabled());

        e.set_profiling_enabled(true);
        for d in [10.0, 60.0, 70.0] {
            e.send_event(bus_event(&e, 0, 1, "R1", d, 8)).unwrap();
        }
        let profiles = e.profile();
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        assert_eq!(p.events_in, 3);
        assert_eq!(p.evals, 3);
        assert_eq!(p.firings, 2);
        assert_eq!(p.rows_out, 2);
        assert_eq!(p.evals, p.eval_ns_buckets.iter().sum::<u64>());
        assert_eq!(
            p.evals,
            p.path_shared + p.path_incremental + p.path_anchor + p.path_rescan
        );
        // A filter-only statement takes the anchor fast path.
        assert_eq!(p.path_anchor, 3);

        // Disabling clears; re-enabling restarts from zero.
        e.set_profiling_enabled(false);
        assert!(e.profile().is_empty());
        e.set_profiling_enabled(true);
        assert_eq!(e.profile()[0].events_in, 0);
    }

    #[test]
    fn profile_reports_paths_and_window_occupancy() {
        let epl = "SELECT w.location AS loc, avg(w.delay) AS m \
                   FROM bus.std:groupwin(location).win:length(3) AS w \
                   GROUP BY w.location HAVING avg(w.delay) > 0";
        let mut e = engine();
        e.set_profiling_enabled(true);
        let (_, l) = capture();
        e.create_statement(epl, l).unwrap();
        for ts in 0..5u64 {
            e.send_event(bus_event(&e, ts, ts as i64, "R1", 10.0, 8)).unwrap();
        }
        let p = &e.profile()[0];
        assert_eq!(p.path_incremental, 5, "grouped aggregate takes the incremental path");
        assert_eq!(p.window_len, 3, "length-3 window holds three of five events");
        assert!(p.eval_ns_sum > 0, "wall time accumulates");

        // Rescan mode shows up in the path counters.
        e.set_incremental_enabled(false).unwrap();
        e.set_profiling_enabled(true); // reset counters
        e.send_event(bus_event(&e, 9, 9, "R1", 10.0, 8)).unwrap();
        assert_eq!(e.profile()[0].path_rescan, 1);
    }

    #[test]
    fn profile_bucket_matches_log2_contract() {
        assert_eq!(profile_bucket(0), 0, "sub-ns evals land in bucket 0");
        assert_eq!(profile_bucket(1), 0);
        assert_eq!(profile_bucket(2), 1);
        assert_eq!(profile_bucket(3), 1);
        assert_eq!(profile_bucket(4), 2);
        assert_eq!(profile_bucket(u64::MAX), PROFILE_BUCKETS - 1);
    }

    const LISTING1_EPL: &str = "SELECT bd2.location AS loc, avg(bd2.delay) AS mean_delay \
         FROM bus.std:lastevent() AS bd, \
              bus.std:groupwin(location).win:length(3) AS bd2, \
              thresholdLocation.win:keepall() AS thresholds \
         WHERE bd.hour = thresholds.hour AND bd.day = thresholds.day \
           AND bd.location = thresholds.location AND bd.location = bd2.location \
         GROUP BY bd2.location \
         HAVING avg(bd2.delay) > avg(thresholds.attribute)";

    fn threshold_event(ty: &EventType, loc: &str, thr: f64) -> Event {
        Event::from_pairs(
            ty,
            0,
            &[
                ("location", loc.into()),
                ("hour", 8i64.into()),
                ("day", "weekday".into()),
                ("attribute", thr.into()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn partition_migration_matches_never_migrated_run() {
        // Source serves R1+R2; R2 migrates mid-stream to a fresh engine.
        // A reference engine that saw the whole R2 history in place must
        // fire identically to the migrated destination.
        let mut source = engine();
        let mut dest = engine();
        let mut reference = engine();
        let (ssink, sl) = capture();
        let (dsink, dl) = capture();
        let (rsink, rl) = capture();
        source.create_statement(LISTING1_EPL, sl).unwrap();
        dest.create_statement(LISTING1_EPL, dl).unwrap();
        reference.create_statement(LISTING1_EPL, rl).unwrap();
        let tty = threshold_type();
        for (loc, thr) in [("R1", 50.0), ("R2", 30.0)] {
            source.send_event(threshold_event(&tty, loc, thr)).unwrap();
            if loc == "R2" {
                reference.send_event(threshold_event(&tty, loc, thr)).unwrap();
            }
        }
        // Pre-migration traffic; R2 stays at/below its threshold so far.
        for (ts, d) in [(1u64, 20.0), (2, 40.0)] {
            source.send_event(bus_event(&source, ts, 9, "R2", d, 8)).unwrap();
            reference.send_event(bus_event(&reference, ts, 9, "R2", d, 8)).unwrap();
        }
        source.send_event(bus_event(&source, 3, 1, "R1", 60.0, 8)).unwrap();
        assert_eq!(ssink.lock().len(), 1, "R1 fired at the source");
        assert_eq!(rsink.lock().len(), 0);

        // Migrate R2: ship window + threshold state, evict, absorb.
        let vals = [FieldValue::from("R2")];
        let bus_state = source.collect_partition("bus", "location", &vals).unwrap();
        let thr_state =
            source.collect_partition("thresholdLocation", "location", &vals).unwrap();
        assert_eq!(bus_state.len(), 2, "both retained R2 bus events ship");
        assert_eq!(thr_state.len(), 1, "R2's threshold row ships");
        assert!(source.evict_partition("bus", "location", &vals).unwrap() >= 2);
        source.evict_partition("thresholdLocation", "location", &vals).unwrap();
        assert!(
            source.collect_partition("bus", "location", &vals).unwrap().is_empty(),
            "source state gone after eviction"
        );
        dest.absorb_partition(&bus_state).unwrap();
        dest.absorb_partition(&thr_state).unwrap();
        assert_eq!(dsink.lock().len(), 0, "absorption must not fire listeners");

        // Post-migration R2 traffic runs at the destination; firings must
        // match the engine that never migrated, row for row.
        for (ts, d) in [(4u64, 40.0), (5, 45.0)] {
            dest.send_event(bus_event(&dest, ts, 9, "R2", d, 8)).unwrap();
            reference.send_event(bus_event(&reference, ts, 9, "R2", d, 8)).unwrap();
        }
        assert_eq!(*dsink.lock(), *rsink.lock());
        assert!(!dsink.lock().is_empty(), "the scenario must actually fire");

        // The source keeps serving R1 undisturbed.
        source.send_event(bus_event(&source, 6, 1, "R1", 70.0, 8)).unwrap();
        assert_eq!(ssink.lock().len(), 2);
    }

    #[test]
    fn evict_partition_keeps_sibling_statements_consistent() {
        // Two same-shape statements share windows; evicting one location
        // must leave the survivors evaluating exactly like an engine that
        // never held the evicted location at all.
        let epl_lo = "SELECT w.location AS loc, avg(w.delay) AS m \
                      FROM bus.std:groupwin(location).win:length(3) AS w \
                      GROUP BY w.location HAVING avg(w.delay) > 20";
        let epl_hi = "SELECT w.location AS loc, avg(w.delay) AS m \
                      FROM bus.std:groupwin(location).win:length(3) AS w \
                      GROUP BY w.location HAVING avg(w.delay) > 40";
        let mut e = engine();
        let mut fresh = engine();
        let (sink_lo, l_lo) = capture();
        let (sink_hi, l_hi) = capture();
        let (fsink_lo, fl_lo) = capture();
        let (fsink_hi, fl_hi) = capture();
        e.create_statement(epl_lo, l_lo).unwrap();
        e.create_statement(epl_hi, l_hi).unwrap();
        fresh.create_statement(epl_lo, fl_lo).unwrap();
        fresh.create_statement(epl_hi, fl_hi).unwrap();
        for (ts, loc, d) in [(1u64, "R1", 100.0), (2, "R2", 30.0), (3, "R1", 100.0)] {
            e.send_event(bus_event(&e, ts, 1, loc, d, 8)).unwrap();
            if loc == "R2" {
                fresh.send_event(bus_event(&fresh, ts, 1, loc, d, 8)).unwrap();
            }
        }
        let pre_lo = sink_lo.lock().len();
        let pre_hi = sink_hi.lock().len();
        let fresh_pre_lo = fsink_lo.lock().len();
        let fresh_pre_hi = fsink_hi.lock().len();
        assert!(pre_lo >= 1, "R1 and R2 fired the low-threshold rule");
        let removed = e.evict_partition("bus", "location", &[FieldValue::from("R1")]).unwrap();
        assert_eq!(removed, 2, "both retained R1 events leave every shared window");
        // Post-eviction traffic must match the fresh engine exactly.
        for (ts, d) in [(4u64, 35.0), (5, 60.0)] {
            e.send_event(bus_event(&e, ts, 1, "R2", d, 8)).unwrap();
            fresh.send_event(bus_event(&fresh, ts, 1, "R2", d, 8)).unwrap();
        }
        assert_eq!(sink_lo.lock()[pre_lo..], fsink_lo.lock()[fresh_pre_lo..]);
        assert_eq!(sink_hi.lock()[pre_hi..], fsink_hi.lock()[fresh_pre_hi..]);
        assert!(!fsink_hi.lock().is_empty(), "the high rule must fire post-eviction");
    }

    #[test]
    fn collect_partition_validates_stream_and_field() {
        let e = engine();
        assert!(matches!(
            e.collect_partition("nope", "location", &[]),
            Err(CepError::UnknownStream(_))
        ));
        assert!(matches!(
            e.collect_partition("bus", "nope", &[]),
            Err(CepError::UnknownField { .. })
        ));
        // No statements installed: empty but well-formed state.
        let s = e.collect_partition("bus", "location", &[FieldValue::from("R1")]).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn incremental_advance_time_evicts_state() {
        let mut e = engine();
        let (sink, l) = capture();
        e.create_statement(
            "SELECT count(*) AS n FROM bus.win:time(10) HAVING count(*) >= 2",
            l,
        )
        .unwrap();
        e.send_event(bus_event(&e, 1_000, 1, "R1", 1.0, 8)).unwrap();
        e.send_event(bus_event(&e, 2_000, 2, "R1", 1.0, 8)).unwrap();
        assert_eq!(sink.lock().len(), 1);
        // Advance past both events: incremental state must empty too, so
        // the next single arrival cannot reach count >= 2.
        e.advance_time(52_000);
        e.send_event(bus_event(&e, 52_500, 3, "R1", 1.0, 8)).unwrap();
        assert_eq!(sink.lock().len(), 1);
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::event::FieldType;
    use parking_lot::Mutex;

    fn market_engine() -> Engine {
        let mut e = Engine::new();
        e.register_type(
            EventType::with_fields(
                "tick",
                &[("symbol", FieldType::Str), ("price", FieldType::Float)],
            )
            .unwrap(),
        )
        .unwrap();
        e
    }

    fn tick(e: &Engine, ts: u64, symbol: &str, price: f64) -> Event {
        e.make_event("tick", ts, &[("symbol", symbol.into()), ("price", price.into())])
            .unwrap()
    }

    fn capture() -> (Arc<Mutex<Vec<Vec<String>>>>, Listener) {
        let sink: Arc<Mutex<Vec<Vec<String>>>> = Arc::new(Mutex::new(Vec::new()));
        let s2 = sink.clone();
        let listener: Listener = Box::new(move |_, rows| {
            s2.lock().push(
                rows.iter()
                    .map(|r| {
                        r.values().iter().map(|v| v.to_string()).collect::<Vec<_>>().join("|")
                    })
                    .collect(),
            )
        });
        (sink, listener)
    }

    #[test]
    fn order_by_sorts_batch_output() {
        let mut e = market_engine();
        let (sink, l) = capture();
        // Tumbling batches of 4, rows ordered by descending price.
        e.create_statement(
            "SELECT symbol, price FROM tick.win:length_batch(4) ORDER BY price DESC",
            l,
        )
        .unwrap();
        for (i, (s, p)) in
            [("A", 3.0), ("B", 9.0), ("C", 1.0), ("D", 5.0)].iter().enumerate()
        {
            e.send_event(tick(&e, i as u64, s, *p)).unwrap();
        }
        let rows = sink.lock();
        assert_eq!(rows.len(), 1, "one batch release");
        assert_eq!(rows[0], vec!["B|9", "D|5", "A|3", "C|1"]);
    }

    #[test]
    fn order_by_ascending_is_default() {
        let mut e = market_engine();
        let (sink, l) = capture();
        e.create_statement(
            "SELECT price FROM tick.win:length_batch(3) ORDER BY price",
            l,
        )
        .unwrap();
        for (i, p) in [7.0, 2.0, 5.0].iter().enumerate() {
            e.send_event(tick(&e, i as u64, "X", *p)).unwrap();
        }
        assert_eq!(sink.lock()[0], vec!["2", "5", "7"]);
    }

    #[test]
    fn order_by_aggregate_across_groups() {
        let mut e = market_engine();
        let (sink, l) = capture();
        // Batch of 4 grouped by symbol, groups ordered by avg price.
        e.create_statement(
            "SELECT w.symbol AS s, avg(w.price) AS m \
             FROM tick.std:groupwin(symbol).win:length_batch(2) AS w \
             GROUP BY w.symbol ORDER BY avg(w.price) DESC",
            l,
        )
        .unwrap();
        // Two groups, each completes a batch of 2 on its second tick; the
        // batch release evaluates all groups (anchor = None).
        e.send_event(tick(&e, 0, "A", 1.0)).unwrap();
        e.send_event(tick(&e, 1, "B", 10.0)).unwrap();
        e.send_event(tick(&e, 2, "A", 3.0)).unwrap(); // A releases: avg 2
        e.send_event(tick(&e, 3, "B", 20.0)).unwrap(); // B releases: avg 15 > A's 2
        let rows = sink.lock();
        let last = rows.last().unwrap();
        assert_eq!(last[0], "B|15");
        assert_eq!(last[1], "A|2");
    }

    #[test]
    fn unique_view_keeps_latest_per_key() {
        let mut e = market_engine();
        let (sink, l) = capture();
        e.create_statement(
            "SELECT count(*) AS n, sum(u.price) AS total \
             FROM tick.std:unique(symbol) AS u HAVING count(*) > 0",
            l,
        )
        .unwrap();
        e.send_event(tick(&e, 0, "A", 1.0)).unwrap();
        e.send_event(tick(&e, 1, "B", 2.0)).unwrap();
        // A's newer price replaces the old one: still 2 rows, total 2+7.
        e.send_event(tick(&e, 2, "A", 7.0)).unwrap();
        let rows = sink.lock();
        assert_eq!(rows.last().unwrap()[0], "2|9");
    }

    #[test]
    fn unique_rejects_bad_usage() {
        let mut e = market_engine();
        let (_, l) = capture();
        assert!(e
            .create_statement("SELECT * FROM tick.std:unique()", l)
            .is_err());
        let (_, l) = capture();
        assert!(e
            .create_statement("SELECT * FROM tick.std:unique(nope)", l)
            .is_err());
        let (_, l) = capture();
        assert!(e
            .create_statement(
                "SELECT * FROM tick.std:groupwin(symbol).std:unique(symbol)",
                l
            )
            .is_err());
    }

    #[test]
    fn time_batch_releases_per_interval() {
        let mut e = market_engine();
        let (sink, l) = capture();
        e.create_statement(
            "SELECT count(*) AS n FROM tick.win:time_batch(10)",
            l,
        )
        .unwrap();
        // Three ticks inside the first 10 s interval: nothing releases.
        e.send_event(tick(&e, 1_000, "A", 1.0)).unwrap();
        e.send_event(tick(&e, 4_000, "A", 1.0)).unwrap();
        e.send_event(tick(&e, 9_000, "A", 1.0)).unwrap();
        assert!(sink.lock().is_empty());
        // The first tick of the next interval releases the batch of 3.
        e.send_event(tick(&e, 12_000, "A", 1.0)).unwrap();
        let rows = sink.lock();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0], vec!["3"]);
    }

    #[test]
    fn order_by_parses_and_rejects_garbage() {
        let mut e = market_engine();
        let (_, l) = capture();
        assert!(e
            .create_statement("SELECT * FROM tick ORDER BY missing_field", l)
            .is_err());
        let (_, l) = capture();
        assert!(e.create_statement("SELECT * FROM tick ORDER price", l).is_err());
    }
}
