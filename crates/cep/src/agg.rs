//! Aggregation functions.
//!
//! `stddev` is the *sample* standard deviation (n−1 denominator), matching
//! Esper's `stddev` aggregate, which the paper's thresholds build on.

use crate::ast::AggFunc;
use crate::error::CepError;

/// Incremental accumulator for one aggregate call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Accumulator {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator { count: 0, sum: 0.0, sum_sq: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one numeric sample.
    pub fn add(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.sum_sq += v * v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Adds a row without a value — only meaningful for `count(*)`.
    pub fn add_row(&mut self) {
        self.count += 1;
    }

    /// Removes one previously-added sample (the inverse of [`add`], used
    /// when a window evicts an event). Count/sum/sum_sq subtract exactly;
    /// min/max cannot be subtracted, so the return value is `true` when
    /// the removed value sat at an extremum — the caller must then
    /// [`rebuild_extrema`] from the surviving values before the next
    /// `min`/`max` finish. Removing the last sample resets the
    /// accumulator wholesale, clearing any accumulated float drift.
    ///
    /// [`add`]: Accumulator::add
    /// [`rebuild_extrema`]: Accumulator::rebuild_extrema
    pub fn remove(&mut self, v: f64) -> bool {
        debug_assert!(self.count > 0, "remove without matching add");
        self.count -= 1;
        if self.count == 0 {
            *self = Accumulator::new();
            return false;
        }
        self.sum -= v;
        self.sum_sq -= v * v;
        v <= self.min || v >= self.max
    }

    /// Removes a row counted by [`add_row`](Accumulator::add_row).
    pub fn remove_row(&mut self) {
        debug_assert!(self.count > 0, "remove_row without matching add_row");
        self.count = self.count.saturating_sub(1);
    }

    /// Recomputes min/max from the surviving samples after [`remove`]
    /// reported a stale extremum. A lazy rescan: it only runs when an
    /// evicted value actually sat at the extremum *and* the statement
    /// reads `min`/`max`.
    ///
    /// [`remove`]: Accumulator::remove
    pub fn rebuild_extrema(&mut self, values: impl Iterator<Item = f64>) {
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
        for v in values {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The raw `(count, sum, sum_sq, min, max)` moments, for serializing
    /// accumulator state into a durability snapshot. Paired with
    /// [`from_raw_parts`](Accumulator::from_raw_parts) the round trip is
    /// bit-exact, so restored state finalizes identically.
    pub fn raw_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.count, self.sum, self.sum_sq, self.min, self.max)
    }

    /// Rebuilds an accumulator from [`raw_parts`](Accumulator::raw_parts).
    pub fn from_raw_parts(count: u64, sum: f64, sum_sq: f64, min: f64, max: f64) -> Self {
        Accumulator { count, sum, sum_sq, min, max }
    }

    /// The accumulator that would result from adding every sample `k`
    /// times instead of once: count/sum/sum_sq scale linearly, min/max
    /// are unchanged. The shared-join path uses this to finalize one
    /// per-pane accumulator under a join multiplicity of `k` — for
    /// integer-valued samples `k·sum` and `k·sum_sq` are exact, so the
    /// result matches a rescan that visited each row `k` times
    /// bit-for-bit (the same contract the incremental path relies on).
    pub fn scaled(&self, k: u64) -> Accumulator {
        if k == 1 || self.count == 0 {
            return self.clone();
        }
        Accumulator {
            count: self.count * k,
            sum: self.sum * k as f64,
            sum_sq: self.sum_sq * k as f64,
            min: self.min,
            max: self.max,
        }
    }

    /// Finalizes the aggregate. Returns an error for value-less aggregates
    /// over an empty input (`avg`/`min`/`max`/`stddev` of nothing), which
    /// the engine treats as "group does not fire".
    pub fn finish(&self, func: AggFunc) -> Result<f64, CepError> {
        match func {
            AggFunc::Count => Ok(self.count as f64),
            AggFunc::Sum => Ok(self.sum),
            AggFunc::Avg => {
                if self.count == 0 {
                    Err(empty(func))
                } else {
                    Ok(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => {
                if self.count == 0 {
                    Err(empty(func))
                } else {
                    Ok(self.min)
                }
            }
            AggFunc::Max => {
                if self.count == 0 {
                    Err(empty(func))
                } else {
                    Ok(self.max)
                }
            }
            AggFunc::Stddev => {
                if self.count < 2 {
                    Err(empty(func))
                } else {
                    let n = self.count as f64;
                    let var = (self.sum_sq - self.sum * self.sum / n) / (n - 1.0);
                    // Guard tiny negative values from float cancellation.
                    Ok(var.max(0.0).sqrt())
                }
            }
        }
    }
}

fn empty(func: AggFunc) -> CepError {
    let name = match func {
        AggFunc::Avg => "avg",
        AggFunc::Sum => "sum",
        AggFunc::Count => "count",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
        AggFunc::Stddev => "stddev",
    };
    CepError::EmptyAggregate { func: name }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(values: &[f64]) -> Accumulator {
        let mut a = Accumulator::new();
        for &v in values {
            a.add(v);
        }
        a
    }

    #[test]
    fn basic_aggregates() {
        let a = acc(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.finish(AggFunc::Count).unwrap(), 4.0);
        assert_eq!(a.finish(AggFunc::Sum).unwrap(), 10.0);
        assert_eq!(a.finish(AggFunc::Avg).unwrap(), 2.5);
        assert_eq!(a.finish(AggFunc::Min).unwrap(), 1.0);
        assert_eq!(a.finish(AggFunc::Max).unwrap(), 4.0);
    }

    #[test]
    fn sample_stddev() {
        // Sample stddev of [2,4,4,4,5,5,7,9] is ≈ 2.138.
        let a = acc(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        let s = a.finish(AggFunc::Stddev).unwrap();
        assert!((s - 2.138089935).abs() < 1e-6, "got {s}");
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        let a = acc(&[5.0; 10]);
        assert_eq!(a.finish(AggFunc::Stddev).unwrap(), 0.0);
    }

    #[test]
    fn empty_inputs() {
        let a = Accumulator::new();
        assert_eq!(a.finish(AggFunc::Count).unwrap(), 0.0);
        assert_eq!(a.finish(AggFunc::Sum).unwrap(), 0.0);
        assert!(matches!(a.finish(AggFunc::Avg), Err(CepError::EmptyAggregate { .. })));
        assert!(a.finish(AggFunc::Min).is_err());
        assert!(a.finish(AggFunc::Stddev).is_err());
        // Single sample: stddev undefined (n-1 = 0).
        assert!(acc(&[1.0]).finish(AggFunc::Stddev).is_err());
    }

    #[test]
    fn count_star_rows() {
        let mut a = Accumulator::new();
        a.add_row();
        a.add_row();
        assert_eq!(a.finish(AggFunc::Count).unwrap(), 2.0);
        a.remove_row();
        assert_eq!(a.finish(AggFunc::Count).unwrap(), 1.0);
    }

    #[test]
    fn remove_inverts_add() {
        let mut a = acc(&[1.0, 2.0, 3.0, 4.0]);
        let stale = a.remove(2.0);
        assert!(!stale, "2.0 was not an extremum");
        assert_eq!(a.finish(AggFunc::Count).unwrap(), 3.0);
        assert_eq!(a.finish(AggFunc::Sum).unwrap(), 8.0);
        assert!((a.finish(AggFunc::Avg).unwrap() - 8.0 / 3.0).abs() < 1e-12);
        // Extrema survive: 2.0 was interior.
        assert_eq!(a.finish(AggFunc::Min).unwrap(), 1.0);
        assert_eq!(a.finish(AggFunc::Max).unwrap(), 4.0);
    }

    #[test]
    fn remove_extremum_flags_stale_and_rebuild_fixes() {
        let mut a = acc(&[1.0, 2.0, 3.0, 4.0]);
        assert!(a.remove(4.0), "max removal must flag stale extrema");
        a.rebuild_extrema([1.0, 2.0, 3.0].into_iter());
        assert_eq!(a.finish(AggFunc::Max).unwrap(), 3.0);
        assert_eq!(a.finish(AggFunc::Min).unwrap(), 1.0);
        assert!(a.remove(1.0), "min removal must flag stale extrema");
        a.rebuild_extrema([2.0, 3.0].into_iter());
        assert_eq!(a.finish(AggFunc::Min).unwrap(), 2.0);
    }

    #[test]
    fn removing_last_sample_resets() {
        let mut a = acc(&[7.0]);
        a.remove(7.0);
        assert_eq!(a.finish(AggFunc::Count).unwrap(), 0.0);
        assert_eq!(a.finish(AggFunc::Sum).unwrap(), 0.0);
        assert!(a.finish(AggFunc::Min).is_err());
        // Refilling behaves like a fresh accumulator.
        a.add(3.0);
        assert_eq!(a.finish(AggFunc::Min).unwrap(), 3.0);
        assert_eq!(a.finish(AggFunc::Max).unwrap(), 3.0);
    }

    #[test]
    fn scaled_matches_k_fold_repeated_adds() {
        // scaled(k) must equal an accumulator that saw every sample k
        // times — the join-multiplicity contract of the shared path.
        let base = acc(&[2.0, 4.0, 5.0, 9.0]);
        for k in [1u64, 2, 3, 7] {
            let mut repeated = Accumulator::new();
            for &v in &[2.0, 4.0, 5.0, 9.0] {
                for _ in 0..k {
                    repeated.add(v);
                }
            }
            let s = base.scaled(k);
            for f in [AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max, AggFunc::Stddev] {
                assert_eq!(s.finish(f).unwrap(), repeated.finish(f).unwrap(), "{f:?} k={k}");
            }
        }
        // Scaling an empty accumulator stays empty.
        assert_eq!(Accumulator::new().scaled(5).count(), 0);
    }

    #[test]
    fn stddev_stays_exact_through_integer_add_remove_cycles() {
        // Integer-valued samples keep sum/sum_sq arithmetic exact, so a
        // remove-then-finish matches a fresh accumulator bit-for-bit —
        // the property the incremental evaluation path relies on.
        let mut a = acc(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        a.remove(2.0);
        a.remove(9.0);
        let fresh = acc(&[4.0, 4.0, 4.0, 5.0, 5.0, 7.0]);
        assert_eq!(
            a.finish(AggFunc::Stddev).unwrap(),
            fresh.finish(AggFunc::Stddev).unwrap()
        );
        assert_eq!(a.finish(AggFunc::Avg).unwrap(), fresh.finish(AggFunc::Avg).unwrap());
    }
}
