//! View (window) state for one FROM source.
//!
//! A [`WindowSpec`] is the *data window* at the end of a view chain;
//! `std:groupwin(field)` is modelled as an optional grouping key in front
//! of it, so `bus.std:groupwin(location).win:length(10)` keeps the last 10
//! events **per location** — exactly the Listing 1 semantics.

use crate::error::CepError;
use crate::event::{Event, JoinKey};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

/// The data window of a view chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowSpec {
    /// `std:lastevent()` — only the most recent event.
    LastEvent,
    /// `win:length(n)` — sliding window of the last `n` events.
    Length(usize),
    /// `win:length_batch(n)` — tumbling batches of `n` events: the window
    /// releases all `n` at once, then empties.
    LengthBatch(usize),
    /// `win:time(seconds)` — sliding window over event time.
    TimeMs(u64),
    /// `win:time_batch(seconds)` — tumbling batches over event time: the
    /// window releases everything accumulated in one interval at once.
    TimeBatchMs(u64),
    /// `win:keepall()` — unbounded retention.
    KeepAll,
}

/// Outcome of inserting an event into a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Whether statement evaluation should run now. Always true except for
    /// a `length_batch` window still accumulating its batch.
    pub evaluate: bool,
}

#[derive(Debug, Clone, Default)]
struct Pane {
    events: VecDeque<Event>,
    /// For `LengthBatch`/`TimeBatchMs`: events accumulating towards the
    /// next release.
    pending: VecDeque<Event>,
    /// For `TimeBatchMs`: timestamp starting the current batch interval.
    batch_start: Option<u64>,
}

/// Window state: ungrouped, or one pane per `groupwin` key.
#[derive(Debug, Clone)]
pub struct SourceWindow {
    spec: WindowSpec,
    /// Field index of the `std:groupwin` key within the source's event
    /// type, if grouped.
    group_field: Option<usize>,
    ungrouped: Pane,
    grouped: HashMap<JoinKey, Pane>,
    len: usize,
    /// Bumped on every mutation; lets the engine cache join indexes over
    /// windows that rarely change (e.g. the threshold `keepall` stream).
    version: u64,
}

impl SourceWindow {
    /// Creates a window.
    pub fn new(spec: WindowSpec, group_field: Option<usize>) -> Result<Self, CepError> {
        match spec {
            WindowSpec::Length(0) | WindowSpec::LengthBatch(0) => {
                return Err(CepError::BadView {
                    view: "win:length".into(),
                    reason: "window length must be at least 1".into(),
                })
            }
            WindowSpec::TimeMs(0) | WindowSpec::TimeBatchMs(0) => {
                return Err(CepError::BadView {
                    view: "win:time".into(),
                    reason: "time window must be positive".into(),
                })
            }
            _ => {}
        }
        Ok(SourceWindow {
            spec,
            group_field,
            ungrouped: Pane::default(),
            grouped: HashMap::new(),
            len: 0,
            version: 0,
        })
    }

    /// The window spec.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// Total number of retained events across panes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Monotone change counter; any mutation bumps it.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Inserts an event, evicting per the spec.
    pub fn insert(&mut self, event: &Event) -> InsertOutcome {
        self.version += 1;
        let ts = event.timestamp_ms();
        let spec = self.spec;
        let (pane, len) = match self.group_field {
            None => (&mut self.ungrouped, &mut self.len),
            Some(idx) => {
                let key = event
                    .value_at(idx)
                    .expect("group field index validated at compile time")
                    .join_key();
                let pane = match self.grouped.entry(key) {
                    Entry::Occupied(e) => e.into_mut(),
                    Entry::Vacant(e) => e.insert(Pane::default()),
                };
                (pane, &mut self.len)
            }
        };
        let mut evaluate = true;
        match spec {
            WindowSpec::LastEvent => {
                *len -= pane.events.len();
                pane.events.clear();
                pane.events.push_back(event.clone());
                *len += 1;
            }
            WindowSpec::Length(n) => {
                pane.events.push_back(event.clone());
                *len += 1;
                while pane.events.len() > n {
                    pane.events.pop_front();
                    *len -= 1;
                }
            }
            WindowSpec::LengthBatch(n) => {
                pane.pending.push_back(event.clone());
                if pane.pending.len() >= n {
                    *len -= pane.events.len();
                    pane.events = std::mem::take(&mut pane.pending);
                    *len += pane.events.len();
                } else {
                    evaluate = false;
                }
            }
            WindowSpec::TimeMs(w) => {
                pane.events.push_back(event.clone());
                *len += 1;
                let cutoff = ts.saturating_sub(w);
                while pane
                    .events
                    .front()
                    .is_some_and(|e| e.timestamp_ms() < cutoff)
                {
                    pane.events.pop_front();
                    *len -= 1;
                }
            }
            WindowSpec::TimeBatchMs(w) => {
                let start = *pane.batch_start.get_or_insert(ts);
                if ts.saturating_sub(start) >= w {
                    // The arriving event opens a new interval; everything
                    // accumulated in the previous one releases now.
                    *len -= pane.events.len();
                    pane.events = std::mem::take(&mut pane.pending);
                    *len += pane.events.len();
                    pane.batch_start = Some(ts);
                    pane.pending.push_back(event.clone());
                } else {
                    pane.pending.push_back(event.clone());
                    evaluate = false;
                }
            }
            WindowSpec::KeepAll => {
                pane.events.push_back(event.clone());
                *len += 1;
            }
        }
        InsertOutcome { evaluate }
    }

    /// Advances event time without an arrival, evicting expired events
    /// from time windows. Other specs are unaffected.
    pub fn advance_time(&mut self, now_ms: u64) {
        let WindowSpec::TimeMs(w) = self.spec else { return };
        let cutoff = now_ms.saturating_sub(w);
        let mut evicted = false;
        let panes = std::iter::once(&mut self.ungrouped).chain(self.grouped.values_mut());
        for pane in panes {
            while pane.events.front().is_some_and(|e| e.timestamp_ms() < cutoff) {
                pane.events.pop_front();
                self.len -= 1;
                evicted = true;
            }
        }
        if evicted {
            self.version += 1;
        }
    }

    /// Iterates all retained events (across panes, insertion order within
    /// a pane; pane order unspecified).
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.ungrouped
            .events
            .iter()
            .chain(self.grouped.values().flat_map(|p| p.events.iter()))
    }

    /// Fast path: retained events of one `groupwin` pane. Only valid when
    /// the window is grouped and `key` is the group key.
    pub fn iter_group(&self, key: &JoinKey) -> impl Iterator<Item = &Event> {
        self.grouped.get(key).into_iter().flat_map(|p| p.events.iter())
    }

    /// The group field index, if this window is grouped.
    pub fn group_field(&self) -> Option<usize> {
        self.group_field
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventType, FieldType, FieldValue};

    fn ty() -> EventType {
        EventType::with_fields(
            "bus",
            &[("location", FieldType::Str), ("delay", FieldType::Float)],
        )
        .unwrap()
    }

    fn ev(ty: &EventType, ts: u64, loc: &str, delay: f64) -> Event {
        Event::new(ty, ts, vec![loc.into(), delay.into()]).unwrap()
    }

    fn delays(w: &SourceWindow) -> Vec<f64> {
        let mut v: Vec<f64> = w.iter().map(|e| e.value_at(1).unwrap().as_f64().unwrap()).collect();
        v.sort_by(f64::total_cmp);
        v
    }

    #[test]
    fn last_event_keeps_one() {
        let t = ty();
        let mut w = SourceWindow::new(WindowSpec::LastEvent, None).unwrap();
        for i in 0..5 {
            assert!(w.insert(&ev(&t, i, "R1", i as f64)).evaluate);
        }
        assert_eq!(w.len(), 1);
        assert_eq!(delays(&w), vec![4.0]);
    }

    #[test]
    fn length_window_slides() {
        let t = ty();
        let mut w = SourceWindow::new(WindowSpec::Length(3), None).unwrap();
        for i in 0..5 {
            w.insert(&ev(&t, i, "R1", i as f64));
        }
        assert_eq!(w.len(), 3);
        assert_eq!(delays(&w), vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn grouped_length_window_is_per_key() {
        let t = ty();
        let mut w = SourceWindow::new(WindowSpec::Length(2), Some(0)).unwrap();
        for i in 0..4 {
            w.insert(&ev(&t, i, "R1", i as f64));
            w.insert(&ev(&t, i, "R2", 100.0 + i as f64));
        }
        assert_eq!(w.len(), 4);
        let k1 = FieldValue::from("R1").join_key();
        let g1: Vec<f64> =
            w.iter_group(&k1).map(|e| e.value_at(1).unwrap().as_f64().unwrap()).collect();
        assert_eq!(g1, vec![2.0, 3.0]);
        let k3 = FieldValue::from("R3").join_key();
        assert_eq!(w.iter_group(&k3).count(), 0);
    }

    #[test]
    fn length_batch_releases_in_batches() {
        let t = ty();
        let mut w = SourceWindow::new(WindowSpec::LengthBatch(3), None).unwrap();
        assert!(!w.insert(&ev(&t, 0, "R1", 0.0)).evaluate);
        assert!(!w.insert(&ev(&t, 1, "R1", 1.0)).evaluate);
        assert_eq!(w.len(), 0, "nothing released yet");
        assert!(w.insert(&ev(&t, 2, "R1", 2.0)).evaluate);
        assert_eq!(delays(&w), vec![0.0, 1.0, 2.0]);
        // The next batch replaces the previous one on release.
        for i in 3..6 {
            w.insert(&ev(&t, i, "R1", i as f64));
        }
        assert_eq!(delays(&w), vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn time_window_evicts_by_timestamp() {
        let t = ty();
        let mut w = SourceWindow::new(WindowSpec::TimeMs(1000), None).unwrap();
        w.insert(&ev(&t, 0, "R1", 0.0));
        w.insert(&ev(&t, 500, "R1", 1.0));
        w.insert(&ev(&t, 1400, "R1", 2.0));
        // ts=0 is now older than 1400-1000.
        assert_eq!(delays(&w), vec![1.0, 2.0]);
        w.advance_time(3000);
        assert!(w.is_empty());
    }

    #[test]
    fn keepall_never_evicts() {
        let t = ty();
        let mut w = SourceWindow::new(WindowSpec::KeepAll, None).unwrap();
        for i in 0..100 {
            w.insert(&ev(&t, i, "R1", i as f64));
        }
        assert_eq!(w.len(), 100);
    }

    #[test]
    fn zero_sized_windows_rejected() {
        assert!(SourceWindow::new(WindowSpec::Length(0), None).is_err());
        assert!(SourceWindow::new(WindowSpec::LengthBatch(0), None).is_err());
        assert!(SourceWindow::new(WindowSpec::TimeMs(0), None).is_err());
    }

    #[test]
    fn grouped_last_event() {
        let t = ty();
        let mut w = SourceWindow::new(WindowSpec::LastEvent, Some(0)).unwrap();
        w.insert(&ev(&t, 0, "R1", 1.0));
        w.insert(&ev(&t, 1, "R1", 2.0));
        w.insert(&ev(&t, 2, "R2", 3.0));
        assert_eq!(w.len(), 2, "one per group");
        assert_eq!(delays(&w), vec![2.0, 3.0]);
    }
}
