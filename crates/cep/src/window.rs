//! View (window) state for one FROM source.
//!
//! A [`WindowSpec`] is the *data window* at the end of a view chain;
//! `std:groupwin(field)` is modelled as an optional grouping key in front
//! of it, so `bus.std:groupwin(location).win:length(10)` keeps the last 10
//! events **per location** — exactly the Listing 1 semantics.

use crate::error::CepError;
use crate::event::{Event, JoinKey};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

/// The data window of a view chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowSpec {
    /// `std:lastevent()` — only the most recent event.
    LastEvent,
    /// `win:length(n)` — sliding window of the last `n` events.
    Length(usize),
    /// `win:length_batch(n)` — tumbling batches of `n` events: the window
    /// releases all `n` at once, then empties.
    LengthBatch(usize),
    /// `win:time(seconds)` — sliding window over event time.
    TimeMs(u64),
    /// `win:time_batch(seconds)` — tumbling batches over event time: the
    /// window releases everything accumulated in one interval at once.
    TimeBatchMs(u64),
    /// `win:keepall()` — unbounded retention.
    KeepAll,
}

/// Outcome of inserting an event into a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Whether statement evaluation should run now. Always true except for
    /// a `length_batch` window still accumulating its batch.
    pub evaluate: bool,
}

/// The change one mutation made to a window's *visible* contents.
///
/// Incremental statement evaluation consumes these instead of rescanning
/// the window: an arrival into a sliding window yields one `inserted`
/// event plus whatever it pushed out; a batch release yields the whole
/// outgoing batch as `evicted` and the released batch as `inserted`; an
/// accumulating batch window yields an empty delta (its visible contents
/// did not change). Reused as a scratch buffer — callers `clear()` between
/// mutations.
#[derive(Debug, Clone, Default)]
pub struct WindowDelta {
    /// Events that entered the visible window, in insertion order.
    pub inserted: Vec<Event>,
    /// Events that left the visible window, in eviction order.
    pub evicted: Vec<Event>,
}

impl WindowDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties both sides, keeping capacity.
    pub fn clear(&mut self) {
        self.inserted.clear();
        self.evicted.clear();
    }

    /// Whether the mutation changed nothing visible.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.evicted.is_empty()
    }
}

#[derive(Debug, Clone, Default)]
struct Pane {
    events: VecDeque<Event>,
    /// For `LengthBatch`/`TimeBatchMs`: events accumulating towards the
    /// next release.
    pending: VecDeque<Event>,
    /// For `TimeBatchMs`: timestamp starting the current batch interval.
    batch_start: Option<u64>,
}

/// Window state: ungrouped, or one pane per `groupwin` key.
#[derive(Debug, Clone)]
pub struct SourceWindow {
    spec: WindowSpec,
    /// Field index of the `std:groupwin` key within the source's event
    /// type, if grouped.
    group_field: Option<usize>,
    ungrouped: Pane,
    grouped: HashMap<JoinKey, Pane>,
    /// Group keys in first-seen order, so [`SourceWindow::iter`] walks
    /// panes deterministically (the rescan and incremental evaluation
    /// paths must emit identical row sequences).
    pane_order: Vec<JoinKey>,
    len: usize,
    /// Bumped on every mutation; lets the engine cache join indexes over
    /// windows that rarely change (e.g. the threshold `keepall` stream).
    version: u64,
}

impl SourceWindow {
    /// Creates a window.
    pub fn new(spec: WindowSpec, group_field: Option<usize>) -> Result<Self, CepError> {
        match spec {
            WindowSpec::Length(0) | WindowSpec::LengthBatch(0) => {
                return Err(CepError::BadView {
                    view: "win:length".into(),
                    reason: "window length must be at least 1".into(),
                })
            }
            WindowSpec::TimeMs(0) | WindowSpec::TimeBatchMs(0) => {
                return Err(CepError::BadView {
                    view: "win:time".into(),
                    reason: "time window must be positive".into(),
                })
            }
            _ => {}
        }
        Ok(SourceWindow {
            spec,
            group_field,
            ungrouped: Pane::default(),
            grouped: HashMap::new(),
            pane_order: Vec::new(),
            len: 0,
            version: 0,
        })
    }

    /// The window spec.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// Total number of retained events across panes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Monotone change counter; any mutation bumps it.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Inserts an event, evicting per the spec.
    pub fn insert(&mut self, event: &Event) -> InsertOutcome {
        self.insert_inner(event, None)
    }

    /// Inserts an event, recording the visible-window change in `delta`
    /// (which is cleared first).
    pub fn insert_with_delta(&mut self, event: &Event, delta: &mut WindowDelta) -> InsertOutcome {
        delta.clear();
        self.insert_inner(event, Some(delta))
    }

    fn insert_inner(&mut self, event: &Event, mut delta: Option<&mut WindowDelta>) -> InsertOutcome {
        self.version += 1;
        let ts = event.timestamp_ms();
        let spec = self.spec;
        let (pane, len) = match self.group_field {
            None => (&mut self.ungrouped, &mut self.len),
            Some(idx) => {
                let key = event
                    .value_at(idx)
                    .expect("group field index validated at compile time")
                    .join_key();
                let pane = match self.grouped.entry(key) {
                    Entry::Occupied(e) => e.into_mut(),
                    Entry::Vacant(e) => {
                        self.pane_order.push(e.key().clone());
                        e.insert(Pane::default())
                    }
                };
                (pane, &mut self.len)
            }
        };
        let mut evaluate = true;
        match spec {
            WindowSpec::LastEvent => {
                *len -= pane.events.len();
                if let Some(d) = delta.as_deref_mut() {
                    d.evicted.extend(pane.events.drain(..));
                } else {
                    pane.events.clear();
                }
                pane.events.push_back(event.clone());
                *len += 1;
                if let Some(d) = delta {
                    d.inserted.push(event.clone());
                }
            }
            WindowSpec::Length(n) => {
                pane.events.push_back(event.clone());
                *len += 1;
                while pane.events.len() > n {
                    let old = pane.events.pop_front();
                    *len -= 1;
                    if let (Some(d), Some(old)) = (delta.as_deref_mut(), old) {
                        d.evicted.push(old);
                    }
                }
                if let Some(d) = delta {
                    d.inserted.push(event.clone());
                }
            }
            WindowSpec::LengthBatch(n) => {
                pane.pending.push_back(event.clone());
                if pane.pending.len() >= n {
                    *len -= pane.events.len();
                    let old = std::mem::replace(&mut pane.events, std::mem::take(&mut pane.pending));
                    *len += pane.events.len();
                    if let Some(d) = delta {
                        d.evicted.extend(old);
                        d.inserted.extend(pane.events.iter().cloned());
                    }
                } else {
                    evaluate = false;
                }
            }
            WindowSpec::TimeMs(w) => {
                pane.events.push_back(event.clone());
                *len += 1;
                let cutoff = ts.saturating_sub(w);
                while pane
                    .events
                    .front()
                    .is_some_and(|e| e.timestamp_ms() < cutoff)
                {
                    let old = pane.events.pop_front();
                    *len -= 1;
                    if let (Some(d), Some(old)) = (delta.as_deref_mut(), old) {
                        d.evicted.push(old);
                    }
                }
                if let Some(d) = delta {
                    d.inserted.push(event.clone());
                }
            }
            WindowSpec::TimeBatchMs(w) => {
                let start = *pane.batch_start.get_or_insert(ts);
                if ts.saturating_sub(start) >= w {
                    // The arriving event opens a new interval; everything
                    // accumulated in the previous one releases now.
                    *len -= pane.events.len();
                    let old = std::mem::replace(&mut pane.events, std::mem::take(&mut pane.pending));
                    *len += pane.events.len();
                    pane.batch_start = Some(ts);
                    pane.pending.push_back(event.clone());
                    if let Some(d) = delta {
                        d.evicted.extend(old);
                        d.inserted.extend(pane.events.iter().cloned());
                    }
                } else {
                    pane.pending.push_back(event.clone());
                    evaluate = false;
                }
            }
            WindowSpec::KeepAll => {
                pane.events.push_back(event.clone());
                *len += 1;
                if let Some(d) = delta {
                    d.inserted.push(event.clone());
                }
            }
        }
        InsertOutcome { evaluate }
    }

    /// Advances event time without an arrival, evicting expired events
    /// from time windows. Other specs are unaffected.
    pub fn advance_time(&mut self, now_ms: u64) {
        self.advance_time_inner(now_ms, None);
    }

    /// Advances event time, recording evictions in `delta` (cleared
    /// first). Deterministic: panes are visited in first-seen order.
    pub fn advance_time_with_delta(&mut self, now_ms: u64, delta: &mut WindowDelta) {
        delta.clear();
        self.advance_time_inner(now_ms, Some(delta));
    }

    fn advance_time_inner(&mut self, now_ms: u64, mut delta: Option<&mut WindowDelta>) {
        let WindowSpec::TimeMs(w) = self.spec else { return };
        let cutoff = now_ms.saturating_sub(w);
        let SourceWindow { ungrouped, grouped, pane_order, len, .. } = self;
        // Ungrouped pane first, then keyed panes in first-seen order — the
        // same order `iter` exposes, so delta eviction order matches.
        let mut evicted = evict_expired(ungrouped, cutoff, len, &mut delta);
        for k in pane_order.iter() {
            if let Some(pane) = grouped.get_mut(k) {
                evicted |= evict_expired(pane, cutoff, len, &mut delta);
            }
        }
        if evicted {
            self.version += 1;
        }
    }

    /// Iterates all retained events: the ungrouped pane first, then each
    /// `groupwin` pane in first-seen key order (insertion order within a
    /// pane). The order is deterministic so rescan evaluation matches the
    /// incremental path row-for-row.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.ungrouped.events.iter().chain(
            self.pane_order
                .iter()
                .filter_map(|k| self.grouped.get(k))
                .flat_map(|p| p.events.iter()),
        )
    }

    /// Iterates *everything* the window holds: visible events plus the
    /// pending accumulation of batch windows, pane by pane (ungrouped
    /// first, then first-seen key order). Within one pane the visible
    /// events precede the pending ones, which is arrival order — batch
    /// windows accumulate strictly after their last release. This is the
    /// migration view: a state handoff must ship events a batch window
    /// has absorbed but not yet released.
    pub fn iter_all(&self) -> impl Iterator<Item = &Event> {
        let panes = std::iter::once(&self.ungrouped)
            .chain(self.pane_order.iter().filter_map(|k| self.grouped.get(k)));
        panes.flat_map(|p| p.events.iter().chain(p.pending.iter()))
    }

    /// Removes every event matching `pred` from the window — visible and
    /// batch-pending alike — returning how many were removed. Emptied
    /// `groupwin` panes are dropped entirely. Any removal bumps the
    /// version, invalidating cached indexes over this window. This is the
    /// destructive half of a partition migration; the engine rebuilds
    /// bank/index/incremental state afterwards.
    pub fn remove_matching(&mut self, pred: impl Fn(&Event) -> bool) -> usize {
        let mut removed = 0usize;
        let len = &mut self.len;
        let mut filter_pane = |pane: &mut Pane| {
            let before = pane.events.len();
            pane.events.retain(|e| !pred(e));
            *len -= before - pane.events.len();
            removed += before - pane.events.len();
            let before = pane.pending.len();
            pane.pending.retain(|e| !pred(e));
            removed += before - pane.pending.len();
        };
        filter_pane(&mut self.ungrouped);
        for key in &self.pane_order {
            if let Some(pane) = self.grouped.get_mut(key) {
                filter_pane(pane);
            }
        }
        self.pane_order.retain(|k| {
            let keep = self
                .grouped
                .get(k)
                .is_some_and(|p| !p.events.is_empty() || !p.pending.is_empty());
            if !keep {
                self.grouped.remove(k);
            }
            keep
        });
        if removed > 0 {
            self.version += 1;
        }
        removed
    }

    /// Fast path: retained events of one `groupwin` pane. Only valid when
    /// the window is grouped and `key` is the group key.
    pub fn iter_group(&self, key: &JoinKey) -> impl Iterator<Item = &Event> {
        self.grouped.get(key).into_iter().flat_map(|p| p.events.iter())
    }

    /// Number of retained events in one `groupwin` pane (0 for an unseen
    /// key). O(1) — the shared-join path reads this instead of scanning.
    pub fn group_len(&self, key: &JoinKey) -> usize {
        self.grouped.get(key).map_or(0, |p| p.events.len())
    }

    /// Most recently retained event of one `groupwin` pane.
    pub fn group_back(&self, key: &JoinKey) -> Option<&Event> {
        self.grouped.get(key).and_then(|p| p.events.back())
    }

    /// The group field index, if this window is grouped.
    pub fn group_field(&self) -> Option<usize> {
        self.group_field
    }

    /// Whether two windows hold the *identical* state: same spec and
    /// grouping, same mutation count, and the very same event instances in
    /// the same pane structure (including batch-pending events). Two
    /// windows that satisfy this are interchangeable — the sharing planner
    /// merges them without any observable semantic change, because every
    /// future mutation applied to both would keep them identical.
    pub fn content_eq(&self, other: &SourceWindow) -> bool {
        if self.spec != other.spec
            || self.group_field != other.group_field
            || self.version != other.version
            || self.len != other.len
            || self.pane_order != other.pane_order
        {
            return false;
        }
        if !pane_eq(&self.ungrouped, &other.ungrouped) {
            return false;
        }
        self.pane_order.iter().all(|k| match (self.grouped.get(k), other.grouped.get(k)) {
            (Some(a), Some(b)) => pane_eq(a, b),
            (None, None) => true,
            _ => false,
        })
    }
}

/// Instance-identity equality of two panes (events are `Arc`-backed, so
/// "the same event" means the same allocation, not merely equal fields).
fn pane_eq(a: &Pane, b: &Pane) -> bool {
    a.batch_start == b.batch_start
        && a.events.len() == b.events.len()
        && a.pending.len() == b.pending.len()
        && a.events.iter().zip(b.events.iter()).all(|(x, y)| x.same_instance(y))
        && a.pending.iter().zip(b.pending.iter()).all(|(x, y)| x.same_instance(y))
}

/// Pops expired events off a pane's front, recording them in `delta`.
fn evict_expired(
    pane: &mut Pane,
    cutoff: u64,
    len: &mut usize,
    delta: &mut Option<&mut WindowDelta>,
) -> bool {
    let mut any = false;
    while pane.events.front().is_some_and(|e| e.timestamp_ms() < cutoff) {
        let old = pane.events.pop_front();
        *len -= 1;
        any = true;
        if let (Some(d), Some(old)) = (delta.as_deref_mut(), old) {
            d.evicted.push(old);
        }
    }
    any
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventType, FieldType, FieldValue};

    fn ty() -> EventType {
        EventType::with_fields(
            "bus",
            &[("location", FieldType::Str), ("delay", FieldType::Float)],
        )
        .unwrap()
    }

    fn ev(ty: &EventType, ts: u64, loc: &str, delay: f64) -> Event {
        Event::new(ty, ts, vec![loc.into(), delay.into()]).unwrap()
    }

    fn delays(w: &SourceWindow) -> Vec<f64> {
        let mut v: Vec<f64> = w.iter().map(|e| e.value_at(1).unwrap().as_f64().unwrap()).collect();
        v.sort_by(f64::total_cmp);
        v
    }

    #[test]
    fn last_event_keeps_one() {
        let t = ty();
        let mut w = SourceWindow::new(WindowSpec::LastEvent, None).unwrap();
        for i in 0..5 {
            assert!(w.insert(&ev(&t, i, "R1", i as f64)).evaluate);
        }
        assert_eq!(w.len(), 1);
        assert_eq!(delays(&w), vec![4.0]);
    }

    #[test]
    fn length_window_slides() {
        let t = ty();
        let mut w = SourceWindow::new(WindowSpec::Length(3), None).unwrap();
        for i in 0..5 {
            w.insert(&ev(&t, i, "R1", i as f64));
        }
        assert_eq!(w.len(), 3);
        assert_eq!(delays(&w), vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn grouped_length_window_is_per_key() {
        let t = ty();
        let mut w = SourceWindow::new(WindowSpec::Length(2), Some(0)).unwrap();
        for i in 0..4 {
            w.insert(&ev(&t, i, "R1", i as f64));
            w.insert(&ev(&t, i, "R2", 100.0 + i as f64));
        }
        assert_eq!(w.len(), 4);
        let k1 = FieldValue::from("R1").join_key();
        let g1: Vec<f64> =
            w.iter_group(&k1).map(|e| e.value_at(1).unwrap().as_f64().unwrap()).collect();
        assert_eq!(g1, vec![2.0, 3.0]);
        let k3 = FieldValue::from("R3").join_key();
        assert_eq!(w.iter_group(&k3).count(), 0);
    }

    #[test]
    fn length_batch_releases_in_batches() {
        let t = ty();
        let mut w = SourceWindow::new(WindowSpec::LengthBatch(3), None).unwrap();
        assert!(!w.insert(&ev(&t, 0, "R1", 0.0)).evaluate);
        assert!(!w.insert(&ev(&t, 1, "R1", 1.0)).evaluate);
        assert_eq!(w.len(), 0, "nothing released yet");
        assert!(w.insert(&ev(&t, 2, "R1", 2.0)).evaluate);
        assert_eq!(delays(&w), vec![0.0, 1.0, 2.0]);
        // The next batch replaces the previous one on release.
        for i in 3..6 {
            w.insert(&ev(&t, i, "R1", i as f64));
        }
        assert_eq!(delays(&w), vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn time_window_evicts_by_timestamp() {
        let t = ty();
        let mut w = SourceWindow::new(WindowSpec::TimeMs(1000), None).unwrap();
        w.insert(&ev(&t, 0, "R1", 0.0));
        w.insert(&ev(&t, 500, "R1", 1.0));
        w.insert(&ev(&t, 1400, "R1", 2.0));
        // ts=0 is now older than 1400-1000.
        assert_eq!(delays(&w), vec![1.0, 2.0]);
        w.advance_time(3000);
        assert!(w.is_empty());
    }

    #[test]
    fn keepall_never_evicts() {
        let t = ty();
        let mut w = SourceWindow::new(WindowSpec::KeepAll, None).unwrap();
        for i in 0..100 {
            w.insert(&ev(&t, i, "R1", i as f64));
        }
        assert_eq!(w.len(), 100);
    }

    #[test]
    fn zero_sized_windows_rejected() {
        assert!(SourceWindow::new(WindowSpec::Length(0), None).is_err());
        assert!(SourceWindow::new(WindowSpec::LengthBatch(0), None).is_err());
        assert!(SourceWindow::new(WindowSpec::TimeMs(0), None).is_err());
    }

    #[test]
    fn grouped_last_event() {
        let t = ty();
        let mut w = SourceWindow::new(WindowSpec::LastEvent, Some(0)).unwrap();
        w.insert(&ev(&t, 0, "R1", 1.0));
        w.insert(&ev(&t, 1, "R1", 2.0));
        w.insert(&ev(&t, 2, "R2", 3.0));
        assert_eq!(w.len(), 2, "one per group");
        assert_eq!(delays(&w), vec![2.0, 3.0]);
    }

    fn dvals(events: &[Event]) -> Vec<f64> {
        events.iter().map(|e| e.value_at(1).unwrap().as_f64().unwrap()).collect()
    }

    #[test]
    fn length_delta_reports_inserted_and_evicted() {
        let t = ty();
        let mut w = SourceWindow::new(WindowSpec::Length(2), None).unwrap();
        let mut d = WindowDelta::new();
        w.insert_with_delta(&ev(&t, 0, "R1", 0.0), &mut d);
        assert_eq!(dvals(&d.inserted), vec![0.0]);
        assert!(d.evicted.is_empty());
        w.insert_with_delta(&ev(&t, 1, "R1", 1.0), &mut d);
        assert!(d.evicted.is_empty());
        w.insert_with_delta(&ev(&t, 2, "R1", 2.0), &mut d);
        assert_eq!(dvals(&d.inserted), vec![2.0]);
        assert_eq!(dvals(&d.evicted), vec![0.0], "window of 2 pushed out the oldest");
    }

    #[test]
    fn last_event_delta_swaps_previous() {
        let t = ty();
        let mut w = SourceWindow::new(WindowSpec::LastEvent, None).unwrap();
        let mut d = WindowDelta::new();
        w.insert_with_delta(&ev(&t, 0, "R1", 1.0), &mut d);
        assert!(d.evicted.is_empty());
        w.insert_with_delta(&ev(&t, 1, "R1", 2.0), &mut d);
        assert_eq!(dvals(&d.evicted), vec![1.0]);
        assert_eq!(dvals(&d.inserted), vec![2.0]);
    }

    #[test]
    fn length_batch_delta_is_empty_while_accumulating() {
        let t = ty();
        let mut w = SourceWindow::new(WindowSpec::LengthBatch(3), None).unwrap();
        let mut d = WindowDelta::new();
        assert!(!w.insert_with_delta(&ev(&t, 0, "R1", 0.0), &mut d).evaluate);
        assert!(d.is_empty(), "visible window unchanged while accumulating");
        w.insert_with_delta(&ev(&t, 1, "R1", 1.0), &mut d);
        assert!(w.insert_with_delta(&ev(&t, 2, "R1", 2.0), &mut d).evaluate);
        assert_eq!(dvals(&d.inserted), vec![0.0, 1.0, 2.0], "whole batch enters at once");
        assert!(d.evicted.is_empty());
        // Next release evicts the previous batch.
        for i in 3..5 {
            w.insert_with_delta(&ev(&t, i, "R1", i as f64), &mut d);
        }
        w.insert_with_delta(&ev(&t, 5, "R1", 5.0), &mut d);
        assert_eq!(dvals(&d.evicted), vec![0.0, 1.0, 2.0]);
        assert_eq!(dvals(&d.inserted), vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn time_delta_and_advance_time_delta() {
        let t = ty();
        let mut w = SourceWindow::new(WindowSpec::TimeMs(1000), None).unwrap();
        let mut d = WindowDelta::new();
        w.insert_with_delta(&ev(&t, 0, "R1", 0.0), &mut d);
        w.insert_with_delta(&ev(&t, 500, "R1", 1.0), &mut d);
        w.insert_with_delta(&ev(&t, 1400, "R1", 2.0), &mut d);
        assert_eq!(dvals(&d.evicted), vec![0.0], "expired on arrival");
        w.advance_time_with_delta(3000, &mut d);
        assert_eq!(dvals(&d.evicted), vec![1.0, 2.0]);
        assert!(d.inserted.is_empty());
        assert!(w.is_empty());
        // No further evictions: delta comes back empty.
        w.advance_time_with_delta(4000, &mut d);
        assert!(d.is_empty());
    }

    #[test]
    fn remove_matching_filters_panes_and_updates_len() {
        let t = ty();
        let mut w = SourceWindow::new(WindowSpec::Length(3), Some(0)).unwrap();
        for i in 0..3 {
            w.insert(&ev(&t, i, "R1", i as f64));
            w.insert(&ev(&t, i, "R2", 100.0 + i as f64));
        }
        let v0 = w.version();
        let is_r1 = |e: &Event| e.value_at(0).unwrap() == &FieldValue::from("R1");
        assert_eq!(w.remove_matching(is_r1), 3);
        assert_eq!(w.len(), 3, "R2's pane is untouched");
        assert!(w.version() > v0, "removal bumps the version");
        assert!(w.iter().all(|e| !is_r1(e)));
        // The emptied pane is gone: re-removal finds nothing.
        assert_eq!(w.remove_matching(is_r1), 0);
        let k1 = FieldValue::from("R1").join_key();
        assert_eq!(w.group_len(&k1), 0);
    }

    #[test]
    fn iter_all_and_remove_matching_cover_batch_pending() {
        let t = ty();
        let mut w = SourceWindow::new(WindowSpec::LengthBatch(3), None).unwrap();
        w.insert(&ev(&t, 0, "R1", 0.0));
        w.insert(&ev(&t, 1, "R2", 1.0));
        assert_eq!(w.iter().count(), 0, "nothing released yet");
        assert_eq!(w.iter_all().count(), 2, "pending events are migration state");
        let removed =
            w.remove_matching(|e| e.value_at(0).unwrap() == &FieldValue::from("R2"));
        assert_eq!(removed, 1);
        assert_eq!(w.len(), 0, "pending events never counted in len");
        assert_eq!(w.iter_all().count(), 1);
    }

    #[test]
    fn iter_order_is_first_seen_pane_order() {
        let t = ty();
        let mut w = SourceWindow::new(WindowSpec::Length(2), Some(0)).unwrap();
        w.insert(&ev(&t, 0, "B", 1.0));
        w.insert(&ev(&t, 1, "A", 2.0));
        w.insert(&ev(&t, 2, "B", 3.0));
        let order: Vec<f64> =
            w.iter().map(|e| e.value_at(1).unwrap().as_f64().unwrap()).collect();
        assert_eq!(order, vec![1.0, 3.0, 2.0], "pane B (seen first) before pane A");
    }
}
