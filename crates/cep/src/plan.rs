//! Statement compilation and execution.
//!
//! Compilation resolves every field reference to a `(source, field-index)`
//! pair, extracts equi-join keys from the WHERE conjuncts (so multi-stream
//! joins run as hash joins in FROM order, not nested loops), and validates
//! views against the registered event types.
//!
//! Execution is *push-based*: when an event arrives, the engine inserts it
//! into the statement's windows and calls [`CompiledStatement::evaluate`]
//! with the arriving event as the *anchor*. The join runs over the full
//! window state; output is then restricted to rows (or, for aggregated
//! statements, groups) in which the anchor participates — this is the
//! "istream" behaviour: a standing query only reports what the new event
//! changed.

use crate::agg::Accumulator;
use crate::ast::{
    AggFunc, BinOp, Expr, FieldRef, SelectItem, SelectList, Statement, ViewArg, ViewSpec,
};
use crate::error::CepError;
use crate::event::{Event, EventType, FieldValue, JoinKey};
use crate::expr::eval;
use crate::window::{SourceWindow, WindowDelta, WindowSpec};
use std::collections::HashMap;
use std::sync::Arc;

/// A compiled scalar expression: all field references resolved.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr {
    /// A literal value.
    Const(FieldValue),
    /// Field of the event bound at `source`.
    Field {
        /// FROM-source index.
        source: usize,
        /// Field index within that source's event type.
        field: usize,
    },
    /// Reference to the `idx`-th aggregate call of the statement.
    Agg {
        /// Index into [`CompiledStatement::agg_calls`].
        idx: usize,
    },
    /// Binary operation.
    Bin {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<CExpr>,
        /// Right operand.
        rhs: Box<CExpr>,
    },
    /// Logical negation.
    Not(Box<CExpr>),
    /// Arithmetic negation.
    Neg(Box<CExpr>),
}

/// One compiled FROM source.
#[derive(Debug, Clone)]
pub struct CompiledSource {
    /// Stream (event type) name.
    pub stream: String,
    /// Alias used in the statement.
    pub alias: String,
    /// The source's event type.
    pub event_type: Arc<EventType>,
    /// Data window at the end of the view chain.
    pub window: WindowSpec,
    /// `std:groupwin` field index, if present.
    pub group_field: Option<usize>,
}

impl CompiledSource {
    /// Creates the runtime window for this source.
    pub fn make_window(&self) -> Result<SourceWindow, CepError> {
        SourceWindow::new(self.window, self.group_field)
    }
}

/// Hash-join step for source `i`: equi keys pairing an already-bound
/// source's field with a field of source `i`.
#[derive(Debug, Clone)]
pub struct JoinStep {
    /// `(left_source, left_field)` — the probe side, already bound.
    pub left_keys: Vec<(usize, usize)>,
    /// Field indices within source `i` — the build side.
    pub right_keys: Vec<usize>,
    /// Residual predicates evaluable once sources `0..=i` are bound.
    pub residual: Vec<CExpr>,
    /// True when the single join key is the window's `groupwin` field:
    /// the window's group panes *are* the hash index, no build needed.
    pub group_fast_path: bool,
}

/// One distinct aggregate call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggCall {
    /// The aggregation function.
    pub func: AggFunc,
    /// `(source, field)` argument; `None` for `count(*)`.
    pub arg: Option<(usize, usize)>,
}

/// The projection.
#[derive(Debug, Clone)]
pub enum CSelect {
    /// `SELECT *`: every field of every source, columns named
    /// `alias.field` (or bare `field` for single-source statements).
    Wildcard,
    /// Explicit expressions.
    Items(Vec<CExpr>),
}

/// One output row pushed to a listener.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputRow {
    columns: Arc<Vec<String>>,
    values: Vec<FieldValue>,
}

impl OutputRow {
    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Values, parallel to [`Self::columns`].
    pub fn values(&self) -> &[FieldValue] {
        &self.values
    }

    /// Value of a named column.
    pub fn get(&self, column: &str) -> Option<&FieldValue> {
        let idx = self.columns.iter().position(|c| c == column)?;
        self.values.get(idx)
    }
}

/// A fully compiled statement.
#[derive(Debug, Clone)]
pub struct CompiledStatement {
    /// Original EPL text (for diagnostics and re-registration).
    pub epl: String,
    /// `INSERT INTO` target stream.
    pub insert_into: Option<String>,
    /// FROM sources in order.
    pub sources: Vec<CompiledSource>,
    /// Join steps for sources `1..`.
    pub join_steps: Vec<JoinStep>,
    /// Predicates on source 0 alone.
    pub first_filter: Vec<CExpr>,
    /// GROUP BY keys as `(source, field)`.
    pub group_by: Vec<(usize, usize)>,
    /// HAVING predicate.
    pub having: Option<CExpr>,
    /// Distinct aggregate calls (referenced by `CExpr::Agg`).
    pub agg_calls: Vec<AggCall>,
    /// Projection.
    pub select: CSelect,
    /// ORDER BY keys: compiled expression + descending flag.
    pub order_by: Vec<(CExpr, bool)>,
    /// Output column names.
    pub columns: Arc<Vec<String>>,
}

impl CompiledStatement {
    /// Whether the statement aggregates (explicitly or via GROUP BY).
    pub fn is_aggregated(&self) -> bool {
        !self.agg_calls.is_empty() || !self.group_by.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

/// Compiles a parsed statement against the registered event types.
pub fn compile(
    stmt: &Statement,
    epl: &str,
    types: &HashMap<String, Arc<EventType>>,
) -> Result<CompiledStatement, CepError> {
    if stmt.from.is_empty() {
        return Err(CepError::Semantic { reason: "FROM clause is empty".into() });
    }

    // Resolve sources and their views.
    let mut sources = Vec::with_capacity(stmt.from.len());
    let mut alias_to_source: HashMap<&str, usize> = HashMap::new();
    for (i, src) in stmt.from.iter().enumerate() {
        let event_type = types
            .get(&src.stream)
            .ok_or_else(|| CepError::UnknownStream(src.stream.clone()))?
            .clone();
        if alias_to_source.insert(src.alias.as_str(), i).is_some() {
            return Err(CepError::BadAlias {
                alias: src.alias.clone(),
                reason: "declared more than once".into(),
            });
        }
        let (window, group_field) = compile_views(&src.views, &event_type)?;
        sources.push(CompiledSource {
            stream: src.stream.clone(),
            alias: src.alias.clone(),
            event_type,
            window,
            group_field,
        });
    }

    let resolver = Resolver { sources: &sources, alias_to_source: &alias_to_source };

    // Aggregate calls are collected globally (SELECT + HAVING) and deduped.
    let mut agg_calls: Vec<AggCall> = Vec::new();

    // WHERE: split into conjuncts; pure equi-joins become hash-join keys,
    // everything else becomes a residual filter at the latest source it
    // mentions.
    let mut equi: Vec<((usize, usize), (usize, usize))> = Vec::new();
    let mut residuals: Vec<(usize, CExpr)> = Vec::new();
    if let Some(wc) = &stmt.where_clause {
        if wc.has_aggregate() {
            return Err(CepError::Semantic {
                reason: "aggregates are not allowed in WHERE; use HAVING".into(),
            });
        }
        for conj in wc.conjuncts() {
            if let Some(pair) = as_equi_join(conj, &resolver)? {
                equi.push(pair);
                continue;
            }
            let compiled = resolver.compile_expr(conj, &mut agg_calls)?;
            residuals.push((max_source(&compiled), compiled));
        }
    }

    // Join steps per source.
    let mut join_steps = Vec::with_capacity(sources.len().saturating_sub(1));
    let mut first_filter = Vec::new();
    for (at, compiled) in residuals {
        if at == 0 {
            first_filter.push(compiled);
        }
    }
    #[allow(clippy::needless_range_loop)] // i is the join-step/source index
    for i in 1..sources.len() {
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        for &((ls, lf), (rs, rf)) in &equi {
            // Keys usable at step i: one side is source i, the other is
            // earlier.
            if rs == i && ls < i {
                left_keys.push((ls, lf));
                right_keys.push(rf);
            } else if ls == i && rs < i {
                left_keys.push((rs, rf));
                right_keys.push(lf);
            }
        }
        let group_fast_path =
            right_keys.len() == 1 && sources[i].group_field == Some(right_keys[0]);
        join_steps.push(JoinStep { left_keys, right_keys, residual: Vec::new(), group_fast_path });
    }
    // Equi pairs not usable as keys at any step (both sides the same
    // source, e.g. `bd.a = bd.b`) become residuals.
    for &((ls, lf), (rs, rf)) in &equi {
        if ls == rs {
            let e = CExpr::Bin {
                op: BinOp::Eq,
                lhs: Box::new(CExpr::Field { source: ls, field: lf }),
                rhs: Box::new(CExpr::Field { source: rs, field: rf }),
            };
            if ls == 0 {
                first_filter.push(e);
            } else {
                join_steps[ls - 1].residual.push(e);
            }
        }
    }
    // Re-attach non-equi residuals at their steps (recompute here to keep
    // ordering stable: first_filter handled above for at == 0).
    if let Some(wc) = &stmt.where_clause {
        for conj in wc.conjuncts() {
            if as_equi_join(conj, &resolver)?.is_some() {
                continue;
            }
            let compiled = resolver.compile_expr(conj, &mut agg_calls)?;
            let at = max_source(&compiled);
            if at > 0 {
                join_steps[at - 1].residual.push(compiled);
            }
        }
    }
    if !agg_calls.is_empty() {
        return Err(CepError::Semantic {
            reason: "aggregates are not allowed in WHERE; use HAVING".into(),
        });
    }

    // GROUP BY keys.
    let group_by = stmt
        .group_by
        .iter()
        .map(|f| resolver.resolve_field(f))
        .collect::<Result<Vec<_>, _>>()?;

    // HAVING.
    let having = match &stmt.having {
        Some(h) => Some(resolver.compile_expr(h, &mut agg_calls)?),
        None => None,
    };

    // ORDER BY.
    let order_by = stmt
        .order_by
        .iter()
        .map(|k| Ok((resolver.compile_expr(&k.expr, &mut agg_calls)?, k.descending)))
        .collect::<Result<Vec<_>, CepError>>()?;

    // SELECT.
    let (select, columns) = match &stmt.select {
        SelectList::Wildcard => {
            let mut cols = Vec::new();
            let single = sources.len() == 1;
            for s in &sources {
                for (fname, _) in s.event_type.fields() {
                    if single {
                        cols.push(fname.clone());
                    } else {
                        cols.push(format!("{}.{}", s.alias, fname));
                    }
                }
            }
            (CSelect::Wildcard, cols)
        }
        SelectList::Items(items) => {
            let mut exprs = Vec::with_capacity(items.len());
            let mut cols = Vec::with_capacity(items.len());
            for (i, SelectItem { expr, alias }) in items.iter().enumerate() {
                exprs.push(resolver.compile_expr(expr, &mut agg_calls)?);
                cols.push(match alias {
                    Some(a) => a.clone(),
                    None => default_column_name(expr, i),
                });
            }
            (CSelect::Items(exprs), cols)
        }
    };

    // Aggregated statements may not mix non-grouped bare fields in the
    // projection *validation* is relaxed (Esper resolves them to the last
    // event per group); nothing to check here.

    if !agg_calls.is_empty() && stmt.having.is_none() && stmt.group_by.is_empty() {
        // Fine: plain `SELECT avg(x) FROM ...` — single implicit group.
    }

    Ok(CompiledStatement {
        epl: epl.to_string(),
        insert_into: stmt.insert_into.clone(),
        sources,
        join_steps,
        first_filter,
        group_by,
        having,
        agg_calls,
        select,
        order_by,
        columns: Arc::new(columns),
    })
}

fn default_column_name(expr: &Expr, idx: usize) -> String {
    match expr {
        Expr::Field(f) => f.field.clone(),
        Expr::Agg { func, arg } => {
            let f = format!("{func:?}").to_lowercase();
            match arg {
                Some(a) => format!("{f}({})", a.field),
                None => format!("{f}(*)"),
            }
        }
        _ => format!("col{idx}"),
    }
}

/// Compiles a view chain into (data window, groupwin field).
fn compile_views(
    views: &[ViewSpec],
    event_type: &EventType,
) -> Result<(WindowSpec, Option<usize>), CepError> {
    let mut group_field = None;
    let mut window = None;
    for v in views {
        let full = format!("{}:{}", v.namespace, v.name);
        match (v.namespace.as_str(), v.name.as_str()) {
            ("std", "groupwin") => {
                if group_field.is_some() {
                    return Err(CepError::BadView {
                        view: full,
                        reason: "groupwin specified twice".into(),
                    });
                }
                if window.is_some() {
                    return Err(CepError::BadView {
                        view: full,
                        reason: "groupwin must precede the data window".into(),
                    });
                }
                let [ViewArg::Field(fname)] = v.args.as_slice() else {
                    return Err(CepError::BadView {
                        view: full,
                        reason: "groupwin takes exactly one field argument".into(),
                    });
                };
                let idx = event_type.index_of(fname).ok_or_else(|| CepError::UnknownField {
                    field: fname.clone(),
                    context: format!("groupwin on stream {}", event_type.name()),
                })?;
                group_field = Some(idx);
            }
            ("std", "lastevent") => set_window(&mut window, WindowSpec::LastEvent, &full, v)?,
            ("std", "unique") => {
                // `std:unique(f)`: most recent event per distinct value of
                // f — a grouped last-event window.
                let [ViewArg::Field(fname)] = v.args.as_slice() else {
                    return Err(CepError::BadView {
                        view: full,
                        reason: "unique takes exactly one field argument".into(),
                    });
                };
                let idx = event_type.index_of(fname).ok_or_else(|| CepError::UnknownField {
                    field: fname.clone(),
                    context: format!("unique on stream {}", event_type.name()),
                })?;
                if group_field.is_some() {
                    return Err(CepError::BadView {
                        view: full,
                        reason: "unique cannot combine with groupwin".into(),
                    });
                }
                group_field = Some(idx);
                if window.is_some() {
                    return Err(CepError::BadView {
                        view: full,
                        reason: "more than one data window in the chain".into(),
                    });
                }
                window = Some(WindowSpec::LastEvent);
            }
            ("win", "length") => {
                let n = int_arg(v, &full)?;
                set_window(&mut window, WindowSpec::Length(n), &full, v)?;
            }
            ("win", "length_batch") => {
                let n = int_arg(v, &full)?;
                set_window(&mut window, WindowSpec::LengthBatch(n), &full, v)?;
            }
            ("win", "time") | ("win", "time_batch") => {
                let secs = match v.args.as_slice() {
                    [ViewArg::Int(n)] if *n > 0 => *n as f64,
                    [ViewArg::Float(x)] if *x > 0.0 => *x,
                    _ => {
                        return Err(CepError::BadView {
                            view: full,
                            reason: "time takes one positive numeric argument (seconds)".into(),
                        })
                    }
                };
                let ms = (secs * 1000.0) as u64;
                let spec = if v.name == "time" {
                    WindowSpec::TimeMs(ms)
                } else {
                    WindowSpec::TimeBatchMs(ms)
                };
                set_window(&mut window, spec, &full, v)?;
            }
            ("win", "keepall") => set_window(&mut window, WindowSpec::KeepAll, &full, v)?,
            _ => {
                return Err(CepError::BadView {
                    view: full,
                    reason: "unknown view".into(),
                })
            }
        }
    }
    // A bare stream (no data window) behaves as lastevent: each arriving
    // event is visible until the next one — Esper's default for a stream
    // without a view is "all events" (keepall-ish istream); we pick
    // lastevent, which is what plain `FROM stream` means in push mode.
    Ok((window.unwrap_or(WindowSpec::LastEvent), group_field))
}

fn set_window(
    slot: &mut Option<WindowSpec>,
    spec: WindowSpec,
    full: &str,
    v: &ViewSpec,
) -> Result<(), CepError> {
    if matches!(spec, WindowSpec::LastEvent | WindowSpec::KeepAll) && !v.args.is_empty() {
        return Err(CepError::BadView {
            view: full.to_string(),
            reason: "view takes no arguments".into(),
        });
    }
    if slot.is_some() {
        return Err(CepError::BadView {
            view: full.to_string(),
            reason: "more than one data window in the chain".into(),
        });
    }
    *slot = Some(spec);
    Ok(())
}

fn int_arg(v: &ViewSpec, full: &str) -> Result<usize, CepError> {
    match v.args.as_slice() {
        [ViewArg::Int(n)] if *n > 0 => Ok(*n as usize),
        _ => Err(CepError::BadView {
            view: full.to_string(),
            reason: "expected one positive integer argument".into(),
        }),
    }
}

struct Resolver<'a> {
    sources: &'a [CompiledSource],
    alias_to_source: &'a HashMap<&'a str, usize>,
}

impl Resolver<'_> {
    fn resolve_field(&self, f: &FieldRef) -> Result<(usize, usize), CepError> {
        match &f.alias {
            Some(alias) => {
                let &src = self.alias_to_source.get(alias.as_str()).ok_or_else(|| {
                    CepError::BadAlias {
                        alias: alias.clone(),
                        reason: "not declared in FROM".into(),
                    }
                })?;
                let idx = self.sources[src].event_type.index_of(&f.field).ok_or_else(|| {
                    CepError::UnknownField {
                        field: f.field.clone(),
                        context: format!("stream {} (alias {alias})", self.sources[src].stream),
                    }
                })?;
                Ok((src, idx))
            }
            None => {
                // Resolve by unique field name across sources.
                let mut hit = None;
                for (si, s) in self.sources.iter().enumerate() {
                    if let Some(fi) = s.event_type.index_of(&f.field) {
                        if hit.is_some() {
                            return Err(CepError::Semantic {
                                reason: format!(
                                    "field {} is ambiguous; qualify it with an alias",
                                    f.field
                                ),
                            });
                        }
                        hit = Some((si, fi));
                    }
                }
                hit.ok_or_else(|| CepError::UnknownField {
                    field: f.field.clone(),
                    context: "any FROM source".into(),
                })
            }
        }
    }

    fn compile_expr(&self, e: &Expr, agg_calls: &mut Vec<AggCall>) -> Result<CExpr, CepError> {
        Ok(match e {
            Expr::Int(v) => CExpr::Const(FieldValue::Int(*v)),
            Expr::Float(v) => CExpr::Const(FieldValue::Float(*v)),
            Expr::Str(s) => CExpr::Const(FieldValue::from(s.as_str())),
            Expr::Bool(b) => CExpr::Const(FieldValue::Bool(*b)),
            Expr::Field(f) => {
                let (source, field) = self.resolve_field(f)?;
                CExpr::Field { source, field }
            }
            Expr::Agg { func, arg } => {
                let arg = match arg {
                    Some(f) => Some(self.resolve_field(f)?),
                    None => None,
                };
                let call = AggCall { func: *func, arg };
                let idx = match agg_calls.iter().position(|c| *c == call) {
                    Some(i) => i,
                    None => {
                        agg_calls.push(call);
                        agg_calls.len() - 1
                    }
                };
                CExpr::Agg { idx }
            }
            Expr::Bin { op, lhs, rhs } => CExpr::Bin {
                op: *op,
                lhs: Box::new(self.compile_expr(lhs, agg_calls)?),
                rhs: Box::new(self.compile_expr(rhs, agg_calls)?),
            },
            Expr::Not(inner) => CExpr::Not(Box::new(self.compile_expr(inner, agg_calls)?)),
            Expr::Neg(inner) => CExpr::Neg(Box::new(self.compile_expr(inner, agg_calls)?)),
        })
    }
}

/// A resolved `(source, field)` pair.
type FieldSlot = (usize, usize);

/// Recognizes `a.x = b.y` between two *different* sources (or the same —
/// handled by the caller).
fn as_equi_join(
    e: &Expr,
    resolver: &Resolver<'_>,
) -> Result<Option<(FieldSlot, FieldSlot)>, CepError> {
    let Expr::Bin { op: BinOp::Eq, lhs, rhs } = e else { return Ok(None) };
    let (Expr::Field(lf), Expr::Field(rf)) = (lhs.as_ref(), rhs.as_ref()) else {
        return Ok(None);
    };
    let l = resolver.resolve_field(lf)?;
    let r = resolver.resolve_field(rf)?;
    Ok(Some((l, r)))
}

/// Total order over field values for ORDER BY: numerics by value,
/// strings lexicographically, booleans false < true; across kinds, the
/// order is numeric < string < bool (arbitrary but total).
fn order_values(a: &FieldValue, b: &FieldValue) -> std::cmp::Ordering {
    use FieldValue::*;
    fn rank(v: &FieldValue) -> u8 {
        match v {
            Int(_) | Float(_) => 0,
            Str(_) => 1,
            Bool(_) => 2,
        }
    }
    match (a, b) {
        (Str(x), Str(y)) => x.cmp(y),
        (Bool(x), Bool(y)) => x.cmp(y),
        _ => match (a.as_f64(), b.as_f64()) {
            (Ok(x), Ok(y)) => x.total_cmp(&y),
            _ => rank(a).cmp(&rank(b)),
        },
    }
}

/// Highest source index referenced by a compiled expression (0 if none).
fn max_source(e: &CExpr) -> usize {
    match e {
        CExpr::Field { source, .. } => *source,
        CExpr::Bin { lhs, rhs, .. } => max_source(lhs).max(max_source(rhs)),
        CExpr::Not(inner) | CExpr::Neg(inner) => max_source(inner),
        _ => 0,
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// A partial joined row: one bound event per source, filled left to right
/// (events are `Arc`-backed, so these are reference bumps).
type Binding = Vec<Event>;

/// A hash index from composite join key to the matching window events.
type KeyIndex = HashMap<Vec<JoinKey>, Vec<Event>>;

/// Cached hash index over one source's window, keyed by that source's
/// join-step keys. Valid while the window's version is unchanged — the
/// point is the threshold `keepall` stream, which is written once at
/// start-up and then joined by every tuple. Single-key joins (by far the
/// common case in the paper's rules) index by the bare [`JoinKey`],
/// skipping a `Vec` allocation per indexed event and per probe.
#[derive(Debug, Default)]
pub struct SourceIndexCache {
    version: Option<u64>,
    index: KeyIndex,
    single: HashMap<JoinKey, Vec<Event>>,
}

/// Per-statement cache: one slot per FROM source, plus a reusable probe
/// key buffer for composite-key joins.
#[derive(Debug, Default)]
pub struct JoinCache {
    per_source: Vec<SourceIndexCache>,
    scratch: Vec<JoinKey>,
    disabled: bool,
}

impl JoinCache {
    /// A cache sized for a statement.
    pub fn for_statement(stmt: &CompiledStatement) -> JoinCache {
        JoinCache {
            per_source: (0..stmt.sources.len()).map(|_| SourceIndexCache::default()).collect(),
            scratch: Vec::new(),
            disabled: false,
        }
    }

    /// Disables memoization (ablation switch): every evaluation rebuilds
    /// its hash indexes from scratch, the pre-optimization behaviour.
    pub fn set_disabled(&mut self, disabled: bool) {
        self.disabled = disabled;
        if disabled {
            for slot in &mut self.per_source {
                slot.version = None;
                slot.index.clear();
                slot.single.clear();
            }
        }
    }
}

/// Delta-maintained per-group aggregate state for one statement.
///
/// Owned by the engine alongside the statement's windows; updated from
/// [`WindowDelta`]s by [`CompiledStatement::apply_delta`] and read by
/// [`CompiledStatement::evaluate_incremental`]. Only built for statements
/// where [`CompiledStatement::incremental_eligible`] holds.
#[derive(Debug, Default)]
pub struct IncrementalState {
    groups: HashMap<Vec<JoinKey>, IncGroup>,
}

impl IncrementalState {
    /// Number of live groups (for tests/diagnostics).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

/// One group's running aggregates.
#[derive(Debug)]
struct IncGroup {
    aggs: Vec<Accumulator>,
    /// Latest surviving row of the group — bare field refs resolve
    /// against it (Esper's last-event-per-group rule). Eligibility
    /// guarantees group eviction is FIFO, so the evicted event is never
    /// the last row unless the group empties entirely.
    last_row: Event,
    rows: u64,
}

impl CompiledStatement {
    /// Evaluates the statement against the given window state.
    ///
    /// `anchor` is the event whose arrival triggered the evaluation; when
    /// `Some`, output is restricted to rows/groups in which that exact
    /// event instance participates. `None` (used for `length_batch`
    /// releases) emits everything. `cache` memoizes per-source hash
    /// indexes across calls (invalidated by window versions).
    #[allow(clippy::type_complexity)] // the signature is the public contract
    pub fn evaluate(
        &self,
        windows: &[&SourceWindow],
        anchor: Option<&Event>,
        cache: &mut JoinCache,
    ) -> Result<Vec<OutputRow>, CepError> {
        debug_assert_eq!(windows.len(), self.sources.len());
        debug_assert_eq!(cache.per_source.len(), self.sources.len());

        // ---- Join pipeline (hash joins in FROM order) --------------------
        let mut rows: Vec<Binding> = Vec::new();
        'first: for e in windows[0].iter() {
            for f in &self.first_filter {
                if !eval(f, std::slice::from_ref(e), None)?.as_bool()? {
                    continue 'first;
                }
            }
            rows.push(vec![e.clone()]);
        }

        for (i, step) in self.join_steps.iter().enumerate() {
            let src = i + 1;
            if rows.is_empty() {
                return Ok(Vec::new());
            }
            let mut next: Vec<Binding> = Vec::new();
            if step.group_fast_path {
                // The groupwin panes are the index: probe them directly.
                for row in &rows {
                    let (ls, lf) = step.left_keys[0];
                    let key = row[ls].value_at(lf).expect("validated index").join_key();
                    'group: for e in windows[src].iter_group(&key) {
                        let mut candidate = row.clone();
                        candidate.push(e.clone());
                        for r in &step.residual {
                            if !eval(r, &candidate, None)?.as_bool()? {
                                continue 'group;
                            }
                        }
                        next.push(candidate);
                    }
                }
            } else if step.right_keys.is_empty() {
                // Cross join (rare; e.g. a keepall side with residual-only
                // predicates).
                for row in &rows {
                    'cross: for e in windows[src].iter() {
                        let mut candidate = row.clone();
                        candidate.push(e.clone());
                        for r in &step.residual {
                            if !eval(r, &candidate, None)?.as_bool()? {
                                continue 'cross;
                            }
                        }
                        next.push(candidate);
                    }
                }
            } else {
                // (Re)build the hash index only when the window changed.
                let single_key = step.right_keys.len() == 1;
                let disabled = cache.disabled;
                let slot = &mut cache.per_source[src];
                if disabled {
                    slot.version = None;
                }
                if slot.version != Some(windows[src].version()) {
                    slot.index.clear();
                    slot.single.clear();
                    if single_key {
                        let fi = step.right_keys[0];
                        for e in windows[src].iter() {
                            let key = e.value_at(fi).expect("validated index").join_key();
                            slot.single.entry(key).or_default().push(e.clone());
                        }
                    } else {
                        for e in windows[src].iter() {
                            let key: Vec<JoinKey> = step
                                .right_keys
                                .iter()
                                .map(|&fi| e.value_at(fi).expect("validated index").join_key())
                                .collect();
                            slot.index.entry(key).or_default().push(e.clone());
                        }
                    }
                    slot.version = Some(windows[src].version());
                }
                // Probe without allocating a fresh key per row: single-key
                // joins hash the bare key, composite joins reuse the cache's
                // scratch buffer (`Vec<JoinKey>: Borrow<[JoinKey]>`).
                let JoinCache { per_source, scratch, .. } = &mut *cache;
                let slot = &per_source[src];
                for row in &rows {
                    let matches = if single_key {
                        let (ls, lf) = step.left_keys[0];
                        let key = row[ls].value_at(lf).expect("validated index").join_key();
                        slot.single.get(&key)
                    } else {
                        scratch.clear();
                        for &(ls, lf) in &step.left_keys {
                            scratch.push(row[ls].value_at(lf).expect("validated index").join_key());
                        }
                        slot.index.get(scratch.as_slice())
                    };
                    let Some(matches) = matches else { continue };
                    'probe: for e in matches {
                        let mut candidate = row.clone();
                        candidate.push(e.clone());
                        for r in &step.residual {
                            if !eval(r, &candidate, None)?.as_bool()? {
                                continue 'probe;
                            }
                        }
                        next.push(candidate);
                    }
                }
            }
            rows = next;
        }

        // Anchor restriction for non-aggregated statements.
        if !self.is_aggregated() {
            let mut out = Vec::new();
            for row in &rows {
                if let Some(a) = anchor {
                    if !row.iter().any(|e| e.same_instance(a)) {
                        continue;
                    }
                }
                let keys = self.order_keys(row, None)?;
                out.push((self.project(row, None)?, keys));
            }
            return Ok(self.sorted(out));
        }

        // ---- Grouping + aggregation ---------------------------------------
        struct Group {
            aggs: Vec<crate::agg::Accumulator>,
            /// Latest row of the group: bare field refs in SELECT/HAVING
            /// resolve against it (Esper's last-event-per-group rule).
            last_row: Binding,
            has_anchor: bool,
        }
        let mut groups: HashMap<Vec<JoinKey>, Group> = HashMap::new();
        for row in &rows {
            let key: Vec<JoinKey> = self
                .group_by
                .iter()
                .map(|&(s, f)| row[s].value_at(f).expect("validated index").join_key())
                .collect();
            let group = groups.entry(key).or_insert_with(|| Group {
                aggs: vec![crate::agg::Accumulator::new(); self.agg_calls.len()],
                last_row: row.clone(),
                has_anchor: false,
            });
            for (acc, call) in group.aggs.iter_mut().zip(&self.agg_calls) {
                match call.arg {
                    Some((s, f)) => {
                        acc.add(row[s].value_at(f).expect("validated index").as_f64()?)
                    }
                    None => acc.add_row(),
                }
            }
            group.last_row = row.clone();
            if let Some(a) = anchor {
                if row.iter().any(|e| e.same_instance(a)) {
                    group.has_anchor = true;
                }
            } else {
                group.has_anchor = true;
            }
        }

        // Emit groups in sorted-key order: deterministic, and identical to
        // the order the incremental path produces, so the two evaluation
        // strategies are row-for-row interchangeable.
        let mut keyed: Vec<(&Vec<JoinKey>, &Group)> = groups.iter().collect();
        keyed.sort_by(|a, b| a.0.cmp(b.0));
        let mut out = Vec::new();
        for (_, group) in keyed {
            if !group.has_anchor {
                continue;
            }
            // Finalize aggregates; an empty-aggregate means "does not fire".
            let mut agg_values = Vec::with_capacity(self.agg_calls.len());
            let mut skip = false;
            for (acc, call) in group.aggs.iter().zip(&self.agg_calls) {
                match acc.finish(call.func) {
                    Ok(v) => agg_values.push(v),
                    Err(CepError::EmptyAggregate { .. }) => {
                        skip = true;
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            if skip {
                continue;
            }
            if let Some(h) = &self.having {
                match eval(h, &group.last_row, Some(&agg_values)) {
                    Ok(v) => {
                        if !v.as_bool()? {
                            continue;
                        }
                    }
                    Err(CepError::EmptyAggregate { .. }) => continue,
                    Err(e) => return Err(e),
                }
            }
            let keys = self.order_keys(&group.last_row, Some(&agg_values))?;
            out.push((self.project(&group.last_row, Some(&agg_values))?, keys));
        }
        Ok(self.sorted(out))
    }

    /// Whether the delta-maintained incremental path can evaluate this
    /// statement: a single FROM source with aggregation, where group
    /// membership is FIFO — the window is ungrouped (eviction pops the
    /// oldest event overall) or the GROUP BY key is exactly the
    /// `groupwin` field (each group is one pane, evicted front-first).
    /// FIFO membership guarantees an evicted event is never a surviving
    /// group's `last_row`, so last-event-per-group semantics need no
    /// rescan on eviction.
    pub fn incremental_eligible(&self) -> bool {
        if self.sources.len() != 1 || !self.is_aggregated() {
            return false;
        }
        match self.sources[0].group_field {
            None => true,
            Some(g) => self.group_by.len() == 1 && self.group_by[0] == (0, g),
        }
    }

    /// Whether the anchor restriction's source-0 filter passes for one
    /// event (the predicates of the WHERE clause that mention only
    /// source 0).
    pub fn passes_first_filter(&self, e: &Event) -> Result<bool, CepError> {
        for f in &self.first_filter {
            if !eval(f, std::slice::from_ref(e), None)?.as_bool()? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Finalizes one joined group from externally maintained aggregate
    /// values — the tail of [`evaluate`] (HAVING, ORDER BY, projection)
    /// factored out so the engine's shared-join path, which computes
    /// `agg_values` from a cluster's accumulator bank instead of a window
    /// scan, emits through the identical code.
    ///
    /// [`evaluate`]: CompiledStatement::evaluate
    pub fn emit_shared_group(
        &self,
        binding: &[Event],
        agg_values: &[f64],
    ) -> Result<Vec<OutputRow>, CepError> {
        if let Some(h) = &self.having {
            match eval(h, binding, Some(agg_values)) {
                Ok(v) => {
                    if !v.as_bool()? {
                        return Ok(Vec::new());
                    }
                }
                Err(CepError::EmptyAggregate { .. }) => return Ok(Vec::new()),
                Err(e) => return Err(e),
            }
        }
        let keys = self.order_keys(binding, Some(agg_values))?;
        Ok(self.sorted(vec![(self.project(binding, Some(agg_values))?, keys)]))
    }

    /// Whether the anchor fast path applies: a single-source statement
    /// without aggregation emits, per arrival, exactly the anchor row (if
    /// it passes the filters) — the window contents are irrelevant to the
    /// output, so evaluation needs no window scan at all.
    pub fn anchor_fast_eligible(&self) -> bool {
        self.sources.len() == 1 && !self.is_aggregated()
    }

    /// Anchor fast path (see [`anchor_fast_eligible`]): evaluates the
    /// statement for one arrival by testing the filters against the
    /// anchor alone. Byte-identical to [`evaluate`] with `Some(anchor)`
    /// for eligible statements.
    ///
    /// [`anchor_fast_eligible`]: CompiledStatement::anchor_fast_eligible
    /// [`evaluate`]: CompiledStatement::evaluate
    pub fn evaluate_anchor(&self, anchor: &Event) -> Result<Vec<OutputRow>, CepError> {
        debug_assert!(self.anchor_fast_eligible());
        for f in &self.first_filter {
            if !eval(f, std::slice::from_ref(anchor), None)?.as_bool()? {
                return Ok(Vec::new());
            }
        }
        Ok(vec![self.project(std::slice::from_ref(anchor), None)?])
    }

    /// Builds incremental state from scratch by replaying the window —
    /// used at statement registration and when the incremental path is
    /// re-enabled after an ablation run.
    pub fn build_incremental(&self, window: &SourceWindow) -> Result<IncrementalState, CepError> {
        debug_assert!(self.incremental_eligible());
        let mut state = IncrementalState::default();
        for e in window.iter() {
            self.inc_insert(e, &mut state)?;
        }
        Ok(state)
    }

    /// Folds one window mutation into the incremental state. Evictions
    /// apply before insertions (a batch release replaces the old batch;
    /// a sliding window evicts before the arrival is visible).
    pub fn apply_delta(
        &self,
        window: &SourceWindow,
        delta: &WindowDelta,
        state: &mut IncrementalState,
    ) -> Result<(), CepError> {
        for e in &delta.evicted {
            self.inc_remove(e, window, state)?;
        }
        for e in &delta.inserted {
            self.inc_insert(e, state)?;
        }
        Ok(())
    }

    /// Evaluates an eligible statement from its incremental state in
    /// O(groups touched) instead of O(window). With an anchor, only the
    /// anchor's group can have changed, so only it may emit (matching
    /// the rescan path's istream restriction); a batch release
    /// (`anchor = None`) emits every group in sorted key order — the
    /// same order [`evaluate`] produces.
    ///
    /// [`evaluate`]: CompiledStatement::evaluate
    pub fn evaluate_incremental(
        &self,
        anchor: Option<&Event>,
        state: &IncrementalState,
    ) -> Result<Vec<OutputRow>, CepError> {
        let mut out = Vec::new();
        match anchor {
            Some(a) => {
                for f in &self.first_filter {
                    if !eval(f, std::slice::from_ref(a), None)?.as_bool()? {
                        return Ok(Vec::new());
                    }
                }
                let key = self.inc_group_key(a);
                if let Some(group) = state.groups.get(&key) {
                    self.emit_inc_group(group, &mut out)?;
                }
            }
            None => {
                let mut keys: Vec<&Vec<JoinKey>> = state.groups.keys().collect();
                keys.sort();
                for k in keys {
                    self.emit_inc_group(&state.groups[k], &mut out)?;
                }
            }
        }
        Ok(self.sorted(out))
    }

    /// GROUP BY key of one source-0 event.
    fn inc_group_key(&self, e: &Event) -> Vec<JoinKey> {
        self.group_by
            .iter()
            .map(|&(_, f)| e.value_at(f).expect("validated index").join_key())
            .collect()
    }

    fn inc_insert(&self, e: &Event, state: &mut IncrementalState) -> Result<(), CepError> {
        for f in &self.first_filter {
            if !eval(f, std::slice::from_ref(e), None)?.as_bool()? {
                return Ok(());
            }
        }
        let key = self.inc_group_key(e);
        let group = state.groups.entry(key).or_insert_with(|| IncGroup {
            aggs: vec![Accumulator::new(); self.agg_calls.len()],
            last_row: e.clone(),
            rows: 0,
        });
        for (acc, call) in group.aggs.iter_mut().zip(&self.agg_calls) {
            match call.arg {
                Some((_, f)) => acc.add(e.value_at(f).expect("validated index").as_f64()?),
                None => acc.add_row(),
            }
        }
        group.rows += 1;
        group.last_row = e.clone();
        Ok(())
    }

    fn inc_remove(
        &self,
        e: &Event,
        window: &SourceWindow,
        state: &mut IncrementalState,
    ) -> Result<(), CepError> {
        for f in &self.first_filter {
            if !eval(f, std::slice::from_ref(e), None)?.as_bool()? {
                return Ok(());
            }
        }
        let key = self.inc_group_key(e);
        let Some(group) = state.groups.get_mut(&key) else {
            debug_assert!(false, "eviction for a group the state never saw");
            return Ok(());
        };
        group.rows -= 1;
        if group.rows == 0 {
            state.groups.remove(&key);
            return Ok(());
        }
        let mut stale: Vec<usize> = Vec::new();
        for (i, (acc, call)) in group.aggs.iter_mut().zip(&self.agg_calls).enumerate() {
            match call.arg {
                Some((_, f)) => {
                    let v = e.value_at(f).expect("validated index").as_f64()?;
                    if acc.remove(v) && matches!(call.func, AggFunc::Min | AggFunc::Max) {
                        stale.push(i);
                    }
                }
                None => acc.remove_row(),
            }
        }
        // Lazy extrema repair: only when the evicted value sat at a
        // min/max the statement actually reads. This is the one place the
        // incremental path rescans, and only the group's own members.
        for i in stale {
            let (_, f) = self.agg_calls[i].arg.expect("min/max always takes an argument");
            let mut values = Vec::new();
            'scan: for w in window.iter() {
                for fil in &self.first_filter {
                    if !eval(fil, std::slice::from_ref(w), None)?.as_bool()? {
                        continue 'scan;
                    }
                }
                if self.inc_group_key(w) != key {
                    continue;
                }
                values.push(w.value_at(f).expect("validated index").as_f64()?);
            }
            group.aggs[i].rebuild_extrema(values.into_iter());
        }
        Ok(())
    }

    /// Finalizes and projects one incremental group (shared by the
    /// anchored and batch-release emission paths).
    fn emit_inc_group(
        &self,
        group: &IncGroup,
        out: &mut Vec<(OutputRow, Vec<FieldValue>)>,
    ) -> Result<(), CepError> {
        let mut agg_values = Vec::with_capacity(self.agg_calls.len());
        for (acc, call) in group.aggs.iter().zip(&self.agg_calls) {
            match acc.finish(call.func) {
                Ok(v) => agg_values.push(v),
                Err(CepError::EmptyAggregate { .. }) => return Ok(()),
                Err(e) => return Err(e),
            }
        }
        let binding = std::slice::from_ref(&group.last_row);
        if let Some(h) = &self.having {
            match eval(h, binding, Some(&agg_values)) {
                Ok(v) => {
                    if !v.as_bool()? {
                        return Ok(());
                    }
                }
                Err(CepError::EmptyAggregate { .. }) => return Ok(()),
                Err(e) => return Err(e),
            }
        }
        let keys = self.order_keys(binding, Some(&agg_values))?;
        out.push((self.project(binding, Some(&agg_values))?, keys));
        Ok(())
    }

    /// Evaluates the ORDER BY keys for one row.
    fn order_keys(
        &self,
        row: &[Event],
        agg_values: Option<&[f64]>,
    ) -> Result<Vec<FieldValue>, CepError> {
        self.order_by
            .iter()
            .map(|(e, _)| eval(e, row, agg_values))
            .collect()
    }

    /// Applies the statement's ORDER BY to the produced rows (honouring
    /// each key's ASC/DESC). Without an ORDER BY clause the evaluation
    /// order is kept as computed.
    fn sorted(&self, mut rows: Vec<(OutputRow, Vec<FieldValue>)>) -> Vec<OutputRow> {
        if !self.order_by.is_empty() {
            rows.sort_by(|(_, ka), (_, kb)| {
                for ((a, b), (_, descending)) in ka.iter().zip(kb).zip(&self.order_by) {
                    let mut ord = order_values(a, b);
                    if *descending {
                        ord = ord.reverse();
                    }
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        rows.into_iter().map(|(r, _)| r).collect()
    }

    fn project(
        &self,
        row: &[Event],
        agg_values: Option<&[f64]>,
    ) -> Result<OutputRow, CepError> {
        let values = match &self.select {
            CSelect::Wildcard => {
                let mut vs = Vec::new();
                for (si, _) in self.sources.iter().enumerate() {
                    vs.extend(row[si].values().iter().cloned());
                }
                vs
            }
            CSelect::Items(items) => items
                .iter()
                .map(|e| eval(e, row, agg_values))
                .collect::<Result<Vec<_>, _>>()?,
        };
        Ok(OutputRow { columns: self.columns.clone(), values })
    }
}
