//! Event types (schemas) and events.
//!
//! An [`EventType`] names a stream and fixes its fields; an [`Event`] is
//! one tuple of that stream. Field storage is positional (`Vec<FieldValue>`
//! indexed through the schema) and events are cheaply cloneable via `Arc`,
//! because the Splitter bolt fans the same event to several engines and a
//! single engine fans it to several rules.

use crate::error::CepError;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Type of an event field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float (integers widen into float fields).
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

/// Value of an event field.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An integer value.
    Int(i64),
    /// A float value.
    Float(f64),
    /// A string value (shared; events are fanned out widely).
    Str(Arc<str>),
    /// A boolean value.
    Bool(bool),
}

impl FieldValue {
    /// The field type of this value.
    pub fn field_type(&self) -> FieldType {
        match self {
            FieldValue::Int(_) => FieldType::Int,
            FieldValue::Float(_) => FieldType::Float,
            FieldValue::Str(_) => FieldType::Str,
            FieldValue::Bool(_) => FieldType::Bool,
        }
    }

    /// Numeric view; integers widen to floats.
    pub fn as_f64(&self) -> Result<f64, CepError> {
        match self {
            FieldValue::Int(v) => Ok(*v as f64),
            FieldValue::Float(v) => Ok(*v),
            other => Err(CepError::TypeError {
                reason: format!("expected a numeric value, got {other:?}"),
            }),
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Result<bool, CepError> {
        match self {
            FieldValue::Bool(v) => Ok(*v),
            other => Err(CepError::TypeError {
                reason: format!("expected a boolean value, got {other:?}"),
            }),
        }
    }

    /// Equality that widens numerics (1 == 1.0). Strings and bools compare
    /// within their own type only.
    pub fn loose_eq(&self, other: &FieldValue) -> bool {
        match (self, other) {
            (FieldValue::Str(a), FieldValue::Str(b)) => a == b,
            (FieldValue::Bool(a), FieldValue::Bool(b)) => a == b,
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Ok(x), Ok(y)) => x == y,
                _ => false,
            },
        }
    }

    /// A hashable join key. Floats are keyed by bit pattern — join keys in
    /// the paper's rules are location ids / hours / day types, which are
    /// exact values, so bitwise equality is the right semantics; integers
    /// are normalized through f64 so `Int(1)` and `Float(1.0)` join.
    pub fn join_key(&self) -> JoinKey {
        match self {
            FieldValue::Int(v) => JoinKey::Num((*v as f64).to_bits()),
            FieldValue::Float(v) => JoinKey::Num(v.to_bits()),
            FieldValue::Str(s) => JoinKey::Str(s.clone()),
            FieldValue::Bool(b) => JoinKey::Bool(*b),
        }
    }
}

/// Hashable key form of a [`FieldValue`], used by group-by and hash joins.
/// The derived `Ord` is an arbitrary but *total* order (numeric keys
/// compare by f64 bit pattern) — enough for the engine to emit group rows
/// in a deterministic order on both evaluation paths.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum JoinKey {
    /// A numeric key (f64 bit pattern; ints normalized through f64).
    Num(u64),
    /// A string key.
    Str(Arc<str>),
    /// A boolean key.
    Bool(bool),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::Int(v) => write!(f, "{v}"),
            FieldValue::Float(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::Int(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::Float(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(Arc::from(v))
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(Arc::from(v.as_str()))
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// Schema of a stream.
#[derive(Debug, Clone, PartialEq)]
pub struct EventType {
    name: Arc<str>,
    fields: Vec<(String, FieldType)>,
    by_name: HashMap<String, usize>,
}

impl EventType {
    /// Builds an event type; field names must be unique.
    pub fn new(
        name: impl Into<String>,
        fields: Vec<(String, FieldType)>,
    ) -> Result<Self, CepError> {
        let name: Arc<str> = Arc::from(name.into().as_str());
        let mut by_name = HashMap::with_capacity(fields.len());
        for (i, (f, _)) in fields.iter().enumerate() {
            if by_name.insert(f.clone(), i).is_some() {
                return Err(CepError::Semantic {
                    reason: format!("duplicate field {f:?} in event type {name}"),
                });
            }
        }
        Ok(EventType { name, fields, by_name })
    }

    /// Convenience constructor from `(&str, FieldType)` pairs.
    pub fn with_fields(name: &str, fields: &[(&str, FieldType)]) -> Result<Self, CepError> {
        Self::new(name, fields.iter().map(|(n, t)| (n.to_string(), *t)).collect())
    }

    /// Stream name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Field declarations in order.
    pub fn fields(&self) -> &[(String, FieldType)] {
        &self.fields
    }

    /// Index of a field.
    pub fn index_of(&self, field: &str) -> Option<usize> {
        self.by_name.get(field).copied()
    }
}

/// Shared payload of an event.
#[derive(Debug)]
struct EventInner {
    event_type: Arc<str>,
    timestamp_ms: u64,
    values: Vec<FieldValue>,
}

/// One tuple of a stream. Cloning is an `Arc` bump.
#[derive(Debug, Clone)]
pub struct Event {
    inner: Arc<EventInner>,
}

impl Event {
    /// Creates an event, validating it against the type.
    pub fn new(
        event_type: &EventType,
        timestamp_ms: u64,
        values: Vec<FieldValue>,
    ) -> Result<Self, CepError> {
        if values.len() != event_type.fields.len() {
            return Err(CepError::EventMismatch {
                event_type: event_type.name.to_string(),
                reason: format!(
                    "expected {} values, got {}",
                    event_type.fields.len(),
                    values.len()
                ),
            });
        }
        for (v, (fname, ftype)) in values.iter().zip(&event_type.fields) {
            let ok = match (v.field_type(), ftype) {
                (a, b) if a == *b => true,
                // Integers widen into float fields.
                (FieldType::Int, FieldType::Float) => true,
                _ => false,
            };
            if !ok {
                return Err(CepError::EventMismatch {
                    event_type: event_type.name.to_string(),
                    reason: format!("value {v:?} does not fit field {fname} ({ftype:?})"),
                });
            }
        }
        Ok(Event {
            inner: Arc::new(EventInner {
                event_type: event_type.name.clone(),
                timestamp_ms,
                values,
            }),
        })
    }

    /// Builds an event from `(field, value)` pairs in any order.
    pub fn from_pairs(
        event_type: &EventType,
        timestamp_ms: u64,
        pairs: &[(&str, FieldValue)],
    ) -> Result<Self, CepError> {
        let mut values: Vec<Option<FieldValue>> = vec![None; event_type.fields.len()];
        for (name, value) in pairs {
            let idx = event_type.index_of(name).ok_or_else(|| CepError::UnknownField {
                field: name.to_string(),
                context: format!("event type {}", event_type.name),
            })?;
            values[idx] = Some(value.clone());
        }
        let values: Result<Vec<FieldValue>, CepError> = values
            .into_iter()
            .enumerate()
            .map(|(i, v)| {
                v.ok_or_else(|| CepError::EventMismatch {
                    event_type: event_type.name.to_string(),
                    reason: format!("missing field {}", event_type.fields[i].0),
                })
            })
            .collect();
        Event::new(event_type, timestamp_ms, values?)
    }

    /// The stream this event belongs to.
    pub fn event_type(&self) -> &str {
        &self.inner.event_type
    }

    /// Event timestamp in milliseconds.
    pub fn timestamp_ms(&self) -> u64 {
        self.inner.timestamp_ms
    }

    /// Positional field access.
    pub fn value_at(&self, idx: usize) -> Option<&FieldValue> {
        self.inner.values.get(idx)
    }

    /// All field values in schema order.
    pub fn values(&self) -> &[FieldValue] {
        &self.inner.values
    }

    /// Whether `self` and `other` are clones of the same event instance
    /// (pointer identity of the shared payload). Used by the engine's
    /// "istream" restriction: only output involving the just-arrived
    /// instance is emitted.
    pub fn same_instance(&self, other: &Event) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus_type() -> EventType {
        EventType::with_fields(
            "bus",
            &[
                ("vehicle", FieldType::Int),
                ("delay", FieldType::Float),
                ("location", FieldType::Str),
                ("congestion", FieldType::Bool),
            ],
        )
        .unwrap()
    }

    #[test]
    fn event_type_rejects_duplicate_fields() {
        let err = EventType::with_fields("t", &[("a", FieldType::Int), ("a", FieldType::Int)]);
        assert!(err.is_err());
    }

    #[test]
    fn event_validation() {
        let ty = bus_type();
        let ok = Event::new(
            &ty,
            0,
            vec![1i64.into(), 2.5.into(), "R1".into(), false.into()],
        );
        assert!(ok.is_ok());
        // Int widens into the float field.
        let widened = Event::new(&ty, 0, vec![1i64.into(), 3i64.into(), "R1".into(), false.into()]);
        assert!(widened.is_ok());
        // Arity mismatch.
        assert!(Event::new(&ty, 0, vec![1i64.into()]).is_err());
        // Type mismatch.
        assert!(Event::new(
            &ty,
            0,
            vec!["x".into(), 2.5.into(), "R1".into(), false.into()]
        )
        .is_err());
    }

    #[test]
    fn from_pairs_any_order_and_missing_field() {
        let ty = bus_type();
        let e = Event::from_pairs(
            &ty,
            7,
            &[
                ("location", "R9".into()),
                ("vehicle", 33i64.into()),
                ("congestion", true.into()),
                ("delay", 120.0.into()),
            ],
        )
        .unwrap();
        assert_eq!(e.timestamp_ms(), 7);
        assert_eq!(e.value_at(ty.index_of("location").unwrap()).unwrap(), &"R9".into());
        let missing =
            Event::from_pairs(&ty, 0, &[("vehicle", 1i64.into())]);
        assert!(missing.is_err());
        let unknown = Event::from_pairs(&ty, 0, &[("nope", 1i64.into())]);
        assert!(matches!(unknown, Err(CepError::UnknownField { .. })));
    }

    #[test]
    fn loose_equality_and_join_keys() {
        assert!(FieldValue::Int(1).loose_eq(&FieldValue::Float(1.0)));
        assert!(!FieldValue::Int(1).loose_eq(&FieldValue::Str(Arc::from("1"))));
        assert_eq!(FieldValue::Int(2).join_key(), FieldValue::Float(2.0).join_key());
        assert_ne!(FieldValue::Str(Arc::from("a")).join_key(), FieldValue::Str(Arc::from("b")).join_key());
    }

    #[test]
    fn clone_is_shallow() {
        let ty = bus_type();
        let e = Event::new(&ty, 0, vec![1i64.into(), 0.0.into(), "R1".into(), false.into()])
            .unwrap();
        let c = e.clone();
        assert!(Arc::ptr_eq(&e.inner, &c.inner));
    }
}
