//! Evaluation of compiled scalar expressions.

use crate::ast::BinOp;
use crate::error::CepError;
use crate::event::{Event, FieldValue};
use crate::plan::CExpr;

/// Evaluates a compiled expression against a joined row.
///
/// `row[i]` is the event bound at source `i`; `agg_values[k]` is the
/// finalized value of the statement's `k`-th aggregate call (only present
/// when evaluating HAVING / aggregated SELECT items).
pub fn eval(
    expr: &CExpr,
    row: &[Event],
    agg_values: Option<&[f64]>,
) -> Result<FieldValue, CepError> {
    match expr {
        CExpr::Const(v) => Ok(v.clone()),
        CExpr::Field { source, field } => row
            .get(*source)
            .and_then(|e| e.value_at(*field))
            .cloned()
            .ok_or_else(|| CepError::TypeError {
                reason: format!("unbound field reference ({source}, {field})"),
            }),
        CExpr::Agg { idx } => {
            let values = agg_values.ok_or_else(|| CepError::TypeError {
                reason: "aggregate referenced outside an aggregated context".into(),
            })?;
            values.get(*idx).map(|v| FieldValue::Float(*v)).ok_or_else(|| {
                CepError::TypeError { reason: format!("aggregate index {idx} out of range") }
            })
        }
        CExpr::Not(inner) => Ok(FieldValue::Bool(!eval(inner, row, agg_values)?.as_bool()?)),
        CExpr::Neg(inner) => {
            let v = eval(inner, row, agg_values)?;
            match v {
                FieldValue::Int(i) => Ok(FieldValue::Int(-i)),
                FieldValue::Float(f) => Ok(FieldValue::Float(-f)),
                other => Err(CepError::TypeError {
                    reason: format!("cannot negate non-numeric value {other:?}"),
                }),
            }
        }
        CExpr::Bin { op, lhs, rhs } => {
            // Short-circuit AND / OR.
            match op {
                BinOp::And => {
                    if !eval(lhs, row, agg_values)?.as_bool()? {
                        return Ok(FieldValue::Bool(false));
                    }
                    return Ok(FieldValue::Bool(eval(rhs, row, agg_values)?.as_bool()?));
                }
                BinOp::Or => {
                    if eval(lhs, row, agg_values)?.as_bool()? {
                        return Ok(FieldValue::Bool(true));
                    }
                    return Ok(FieldValue::Bool(eval(rhs, row, agg_values)?.as_bool()?));
                }
                _ => {}
            }
            let l = eval(lhs, row, agg_values)?;
            let r = eval(rhs, row, agg_values)?;
            apply_binop(*op, &l, &r)
        }
    }
}

fn apply_binop(op: BinOp, l: &FieldValue, r: &FieldValue) -> Result<FieldValue, CepError> {
    use FieldValue::*;
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
            // Integer arithmetic stays integral except for division, which
            // always yields a float (EPL-style numeric division would
            // truncate ints; we document and test the float choice, which
            // is what threshold formulas want).
            match (l, r, op) {
                (Int(a), Int(b), BinOp::Add) => Ok(Int(a.wrapping_add(*b))),
                (Int(a), Int(b), BinOp::Sub) => Ok(Int(a.wrapping_sub(*b))),
                (Int(a), Int(b), BinOp::Mul) => Ok(Int(a.wrapping_mul(*b))),
                _ => {
                    let a = l.as_f64()?;
                    let b = r.as_f64()?;
                    Ok(Float(match op {
                        BinOp::Add => a + b,
                        BinOp::Sub => a - b,
                        BinOp::Mul => a * b,
                        BinOp::Div => a / b,
                        _ => unreachable!("arithmetic op"),
                    }))
                }
            }
        }
        BinOp::Eq => Ok(Bool(l.loose_eq(r))),
        BinOp::Neq => Ok(Bool(!l.loose_eq(r))),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let ord = compare(l, r)?;
            Ok(Bool(match op {
                BinOp::Lt => ord == std::cmp::Ordering::Less,
                BinOp::Le => ord != std::cmp::Ordering::Greater,
                BinOp::Gt => ord == std::cmp::Ordering::Greater,
                BinOp::Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!("comparison op"),
            }))
        }
        BinOp::And | BinOp::Or => unreachable!("handled with short-circuiting"),
    }
}

fn compare(l: &FieldValue, r: &FieldValue) -> Result<std::cmp::Ordering, CepError> {
    use FieldValue::*;
    match (l, r) {
        (Str(a), Str(b)) => Ok(a.cmp(b)),
        (Bool(_), _) | (_, Bool(_)) | (Str(_), _) | (_, Str(_)) => Err(CepError::TypeError {
            reason: format!("cannot order {l:?} against {r:?}"),
        }),
        _ => Ok(l.as_f64()?.total_cmp(&r.as_f64()?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventType, FieldType};

    fn ty() -> EventType {
        EventType::with_fields(
            "t",
            &[("i", FieldType::Int), ("f", FieldType::Float), ("s", FieldType::Str), ("b", FieldType::Bool)],
        )
        .unwrap()
    }

    fn row_event() -> Event {
        Event::new(&ty(), 0, vec![7i64.into(), 2.5.into(), "abc".into(), true.into()]).unwrap()
    }

    fn f(idx: usize) -> CExpr {
        CExpr::Field { source: 0, field: idx }
    }

    fn bin(op: BinOp, l: CExpr, r: CExpr) -> CExpr {
        CExpr::Bin { op, lhs: Box::new(l), rhs: Box::new(r) }
    }

    #[test]
    fn arithmetic() {
        let row = vec![row_event()];
        // 7 + 1 = 8 (stays Int)
        assert_eq!(
            eval(&bin(BinOp::Add, f(0), CExpr::Const(1i64.into())), &row, None).unwrap(),
            FieldValue::Int(8)
        );
        // 7 / 2 = 3.5 (division always floats)
        assert_eq!(
            eval(&bin(BinOp::Div, f(0), CExpr::Const(2i64.into())), &row, None).unwrap(),
            FieldValue::Float(3.5)
        );
        // 7 * 2.5 = 17.5 (mixed widens)
        assert_eq!(
            eval(&bin(BinOp::Mul, f(0), f(1)), &row, None).unwrap(),
            FieldValue::Float(17.5)
        );
        // -f = -2.5
        assert_eq!(eval(&CExpr::Neg(Box::new(f(1))), &row, None).unwrap(), FieldValue::Float(-2.5));
    }

    #[test]
    fn comparisons() {
        let row = vec![row_event()];
        assert_eq!(
            eval(&bin(BinOp::Gt, f(0), CExpr::Const(5i64.into())), &row, None).unwrap(),
            FieldValue::Bool(true)
        );
        assert_eq!(
            eval(&bin(BinOp::Le, f(1), CExpr::Const(2.5.into())), &row, None).unwrap(),
            FieldValue::Bool(true)
        );
        // String ordering.
        assert_eq!(
            eval(&bin(BinOp::Lt, f(2), CExpr::Const("abd".into())), &row, None).unwrap(),
            FieldValue::Bool(true)
        );
        // Cross-type ordering is a type error.
        assert!(eval(&bin(BinOp::Lt, f(2), f(0)), &row, None).is_err());
        // Loose equality across Int/Float.
        assert_eq!(
            eval(&bin(BinOp::Eq, f(0), CExpr::Const(7.0.into())), &row, None).unwrap(),
            FieldValue::Bool(true)
        );
    }

    #[test]
    fn boolean_logic_short_circuits() {
        let row = vec![row_event()];
        // (false AND <type error>) must not evaluate the rhs.
        let bad = bin(BinOp::Lt, f(2), f(0));
        let expr = bin(BinOp::And, CExpr::Const(false.into()), bad.clone());
        assert_eq!(eval(&expr, &row, None).unwrap(), FieldValue::Bool(false));
        let expr = bin(BinOp::Or, CExpr::Const(true.into()), bad);
        assert_eq!(eval(&expr, &row, None).unwrap(), FieldValue::Bool(true));
        // NOT.
        assert_eq!(
            eval(&CExpr::Not(Box::new(f(3))), &row, None).unwrap(),
            FieldValue::Bool(false)
        );
    }

    #[test]
    fn aggregates_need_context() {
        let row = vec![row_event()];
        let agg = CExpr::Agg { idx: 0 };
        assert!(eval(&agg, &row, None).is_err());
        assert_eq!(eval(&agg, &row, Some(&[4.5])).unwrap(), FieldValue::Float(4.5));
        assert!(eval(&CExpr::Agg { idx: 3 }, &row, Some(&[4.5])).is_err());
    }

    #[test]
    fn type_errors_reported() {
        let row = vec![row_event()];
        // Negating a string.
        assert!(eval(&CExpr::Neg(Box::new(f(2))), &row, None).is_err());
        // Arithmetic on a bool.
        assert!(eval(&bin(BinOp::Add, f(3), f(0)), &row, None).is_err());
        // NOT of a number.
        assert!(eval(&CExpr::Not(Box::new(f(0))), &row, None).is_err());
    }
}
