//! Tokenizer for the EPL subset.

use crate::error::CepError;

/// A token with its byte offset in the source (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was recognized.
    pub kind: TokenKind,
    /// Byte offset in the source text.
    pub offset: usize,
}

/// Token kinds. Keywords are recognized case-insensitively and carried as
/// [`TokenKind::Ident`]; the parser matches them by upper-cased text, so
/// identifiers that collide with keywords are simply not usable as names —
/// the same trade-off Esper's EPL makes.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword (keywords are matched by the parser).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A quoted string literal (quotes stripped).
    Str(String),
    /// `*`
    Star,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `:`
    Colon,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
}

/// Tokenizes EPL text.
pub fn lex(src: &str) -> Result<Vec<Token>, CepError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '*' => {
                tokens.push(Token { kind: TokenKind::Star, offset: i });
                i += 1;
            }
            ',' => {
                tokens.push(Token { kind: TokenKind::Comma, offset: i });
                i += 1;
            }
            '.' => {
                tokens.push(Token { kind: TokenKind::Dot, offset: i });
                i += 1;
            }
            '(' => {
                tokens.push(Token { kind: TokenKind::LParen, offset: i });
                i += 1;
            }
            ')' => {
                tokens.push(Token { kind: TokenKind::RParen, offset: i });
                i += 1;
            }
            ':' => {
                tokens.push(Token { kind: TokenKind::Colon, offset: i });
                i += 1;
            }
            '+' => {
                tokens.push(Token { kind: TokenKind::Plus, offset: i });
                i += 1;
            }
            '-' => {
                tokens.push(Token { kind: TokenKind::Minus, offset: i });
                i += 1;
            }
            '/' => {
                tokens.push(Token { kind: TokenKind::Slash, offset: i });
                i += 1;
            }
            '=' => {
                tokens.push(Token { kind: TokenKind::Eq, offset: i });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Neq, offset: i });
                    i += 2;
                } else {
                    return Err(CepError::Lex {
                        position: i,
                        reason: "expected '=' after '!'".into(),
                    });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(Token { kind: TokenKind::Le, offset: i });
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Token { kind: TokenKind::Neq, offset: i });
                    i += 2;
                }
                _ => {
                    tokens.push(Token { kind: TokenKind::Lt, offset: i });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Ge, offset: i });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Gt, offset: i });
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(CepError::Lex {
                                position: start,
                                reason: "unterminated string literal".into(),
                            })
                        }
                        Some(&b) if b as char == quote => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token { kind: TokenKind::Str(s), offset: start });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                // Fractional part: a dot followed by a digit (a bare dot is
                // the view-chain separator).
                if i + 1 < bytes.len()
                    && bytes[i] == b'.'
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                // Exponent.
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &src[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|e| CepError::Lex {
                        position: start,
                        reason: format!("bad float literal {text:?}: {e}"),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|e| CepError::Lex {
                        position: start,
                        reason: format!("bad integer literal {text:?}: {e}"),
                    })?)
                };
                tokens.push(Token { kind, offset: start });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_alphanumeric() || b == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_string()),
                    offset: start,
                });
            }
            other => {
                return Err(CepError::Lex {
                    position: i,
                    reason: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_the_listing1_shape() {
        let toks = kinds("SELECT * FROM bus.std:lastevent() as bd");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Star,
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("bus".into()),
                TokenKind::Dot,
                TokenKind::Ident("std".into()),
                TokenKind::Colon,
                TokenKind::Ident("lastevent".into()),
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Ident("as".into()),
                TokenKind::Ident("bd".into()),
            ]
        );
    }

    #[test]
    fn numbers_vs_view_dots() {
        assert_eq!(kinds("3.25"), vec![TokenKind::Float(3.25)]);
        assert_eq!(
            kinds("win:length(10)"),
            vec![
                TokenKind::Ident("win".into()),
                TokenKind::Colon,
                TokenKind::Ident("length".into()),
                TokenKind::LParen,
                TokenKind::Int(10),
                TokenKind::RParen,
            ]
        );
        // "bus.std" keeps the dot as a separator.
        assert_eq!(
            kinds("bus.std"),
            vec![
                TokenKind::Ident("bus".into()),
                TokenKind::Dot,
                TokenKind::Ident("std".into()),
            ]
        );
        assert_eq!(kinds("1e3"), vec![TokenKind::Float(1000.0)]);
        assert_eq!(kinds("2.5e-1"), vec![TokenKind::Float(0.25)]);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("a >= 1 and b <= 2 or c != 3 and d <> 4"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ge,
                TokenKind::Int(1),
                TokenKind::Ident("and".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Le,
                TokenKind::Int(2),
                TokenKind::Ident("or".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Neq,
                TokenKind::Int(3),
                TokenKind::Ident("and".into()),
                TokenKind::Ident("d".into()),
                TokenKind::Neq,
                TokenKind::Int(4),
            ]
        );
    }

    #[test]
    fn string_literals_both_quotes() {
        assert_eq!(kinds("'abc'"), vec![TokenKind::Str("abc".into())]);
        assert_eq!(kinds("\"x y\""), vec![TokenKind::Str("x y".into())]);
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn bad_characters_rejected_with_position() {
        match lex("a # b") {
            Err(CepError::Lex { position, .. }) => assert_eq!(position, 2),
            other => panic!("expected lex error, got {other:?}"),
        }
        assert!(lex("a ! b").is_err());
    }
}
