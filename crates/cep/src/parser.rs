//! Recursive-descent parser for the EPL subset.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! statement  := [INSERT INTO ident] SELECT select_list FROM sources
//!               [WHERE expr] [GROUP BY field_list] [HAVING expr]
//!               [ORDER BY expr [ASC|DESC] (',' expr [ASC|DESC])*]
//! select_list:= '*' | select_item (',' select_item)*
//! select_item:= expr [AS ident]
//! sources    := source (',' source)*
//! source     := ident ('.' view)* [AS ident]
//! view       := ident ':' ident '(' [view_arg (',' view_arg)*] ')'
//! view_arg   := ident | int | float
//! expr       := or_expr
//! or_expr    := and_expr (OR and_expr)*
//! and_expr   := not_expr (AND not_expr)*
//! not_expr   := NOT not_expr | cmp_expr
//! cmp_expr   := add_expr [cmp_op add_expr]
//! add_expr   := mul_expr (('+'|'-') mul_expr)*
//! mul_expr   := unary (('*'|'/') unary)*
//! unary      := '-' unary | primary
//! primary    := literal | agg '(' ('*' | field) ')' | field | '(' expr ')'
//! field      := ident ['.' ident]
//! ```

use crate::ast::*;
use crate::error::CepError;
use crate::lexer::{lex, Token, TokenKind};

/// Parses one EPL statement.
pub fn parse_statement(src: &str) -> Result<Statement, CepError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    if p.pos != p.tokens.len() {
        return Err(p.err(format!("unexpected trailing input: {:?}", p.peek_kind())));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, reason: String) -> CepError {
        CepError::Parse { position: self.pos, reason }
    }

    fn peek_kind(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    /// Peeks the upper-cased identifier at the cursor, if any.
    fn peek_keyword(&self) -> Option<String> {
        match self.peek_kind() {
            Some(TokenKind::Ident(s)) => Some(s.to_uppercase()),
            _ => None,
        }
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), CepError> {
        if self.peek_keyword().as_deref() == Some(kw) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}, found {:?}", self.peek_kind())))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword().as_deref() == Some(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), CepError> {
        if self.peek_kind() == Some(&kind) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {kind:?}, found {:?}", self.peek_kind())))
        }
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if self.peek_kind() == Some(&kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, CepError> {
        match self.bump() {
            Some(TokenKind::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement, CepError> {
        let insert_into = if self.eat_keyword("INSERT") {
            self.expect_keyword("INTO")?;
            Some(self.ident()?)
        } else {
            None
        };
        self.expect_keyword("SELECT")?;
        let select = self.select_list()?;
        self.expect_keyword("FROM")?;
        let from = self.sources()?;
        let where_clause = if self.eat_keyword("WHERE") { Some(self.expr()?) } else { None };
        let group_by = if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            self.field_list()?
        } else {
            Vec::new()
        };
        let having = if self.eat_keyword("HAVING") { Some(self.expr()?) } else { None };
        let order_by = if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            let mut keys = Vec::new();
            loop {
                let expr = self.expr()?;
                let descending = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                keys.push(OrderKey { expr, descending });
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
            keys
        } else {
            Vec::new()
        };
        Ok(Statement { insert_into, select, from, where_clause, group_by, having, order_by })
    }

    fn select_list(&mut self) -> Result<SelectList, CepError> {
        if self.eat(TokenKind::Star) {
            return Ok(SelectList::Wildcard);
        }
        let mut items = Vec::new();
        loop {
            let expr = self.expr()?;
            let alias = if self.eat_keyword("AS") { Some(self.ident()?) } else { None };
            items.push(SelectItem { expr, alias });
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        Ok(SelectList::Items(items))
    }

    fn sources(&mut self) -> Result<Vec<StreamSource>, CepError> {
        let mut out = Vec::new();
        loop {
            out.push(self.source()?);
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        Ok(out)
    }

    fn source(&mut self) -> Result<StreamSource, CepError> {
        let stream = self.ident()?;
        let mut views = Vec::new();
        while self.eat(TokenKind::Dot) {
            views.push(self.view()?);
        }
        let alias = if self.eat_keyword("AS") { self.ident()? } else { stream.clone() };
        Ok(StreamSource { stream, views, alias })
    }

    fn view(&mut self) -> Result<ViewSpec, CepError> {
        let namespace = self.ident()?;
        self.expect(TokenKind::Colon)?;
        let name = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if !self.eat(TokenKind::RParen) {
            loop {
                let arg = match self.bump() {
                    Some(TokenKind::Ident(s)) => ViewArg::Field(s),
                    Some(TokenKind::Int(v)) => ViewArg::Int(v),
                    Some(TokenKind::Float(v)) => ViewArg::Float(v),
                    other => {
                        return Err(self.err(format!("expected view argument, found {other:?}")))
                    }
                };
                args.push(arg);
                if self.eat(TokenKind::RParen) {
                    break;
                }
                self.expect(TokenKind::Comma)?;
            }
        }
        Ok(ViewSpec { namespace: namespace.to_lowercase(), name: name.to_lowercase(), args })
    }

    fn field_list(&mut self) -> Result<Vec<FieldRef>, CepError> {
        let mut out = Vec::new();
        loop {
            out.push(self.field_ref()?);
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        Ok(out)
    }

    fn field_ref(&mut self) -> Result<FieldRef, CepError> {
        let first = self.ident()?;
        if self.eat(TokenKind::Dot) {
            let second = self.ident()?;
            Ok(FieldRef { alias: Some(first), field: second })
        } else {
            Ok(FieldRef { alias: None, field: first })
        }
    }

    // ---- expressions ------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, CepError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, CepError> {
        let mut lhs = self.and_expr()?;
        while self.eat_keyword("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::Bin { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, CepError> {
        let mut lhs = self.not_expr()?;
        while self.eat_keyword("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::Bin { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, CepError> {
        if self.eat_keyword("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr, CepError> {
        let lhs = self.add_expr()?;
        let op = match self.peek_kind() {
            Some(TokenKind::Eq) => Some(BinOp::Eq),
            Some(TokenKind::Neq) => Some(BinOp::Neq),
            Some(TokenKind::Lt) => Some(BinOp::Lt),
            Some(TokenKind::Le) => Some(BinOp::Le),
            Some(TokenKind::Gt) => Some(BinOp::Gt),
            Some(TokenKind::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let rhs = self.add_expr()?;
                Ok(Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
            }
            None => Ok(lhs),
        }
    }

    fn add_expr(&mut self) -> Result<Expr, CepError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek_kind() {
                Some(TokenKind::Plus) => BinOp::Add,
                Some(TokenKind::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, CepError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek_kind() {
                Some(TokenKind::Star) => BinOp::Mul,
                Some(TokenKind::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CepError> {
        if self.eat(TokenKind::Minus) {
            Ok(Expr::Neg(Box::new(self.unary()?)))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr, CepError> {
        match self.peek_kind().cloned() {
            Some(TokenKind::Int(v)) => {
                self.pos += 1;
                Ok(Expr::Int(v))
            }
            Some(TokenKind::Float(v)) => {
                self.pos += 1;
                Ok(Expr::Float(v))
            }
            Some(TokenKind::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Str(s))
            }
            Some(TokenKind::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            Some(TokenKind::Ident(name)) => {
                let lower = name.to_lowercase();
                match lower.as_str() {
                    "true" => {
                        self.pos += 1;
                        return Ok(Expr::Bool(true));
                    }
                    "false" => {
                        self.pos += 1;
                        return Ok(Expr::Bool(false));
                    }
                    _ => {}
                }
                if let Some(func) = AggFunc::parse(&lower) {
                    // Aggregate call if followed by '('.
                    if self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::LParen) {
                        self.pos += 2; // name + '('
                        let arg = if self.eat(TokenKind::Star) {
                            None
                        } else {
                            Some(self.field_ref()?)
                        };
                        self.expect(TokenKind::RParen)?;
                        return Ok(Expr::Agg { func, arg });
                    }
                }
                Ok(Expr::Field(self.field_ref()?))
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Listing 1, verbatim modulo whitespace.
    const LISTING1: &str = "SELECT * \
        FROM bus.std:lastevent() as bd, \
             bus.std:groupwin(location).win:length(10) as bd2, \
             thresholdLocation.win:keepall() as thresholds \
        WHERE bd.hour = thresholds.hour and bd.day = thresholds.day \
          and bd.location = thresholds.location and bd.location = bd2.location \
        GROUP BY bd2.location \
        HAVING avg(bd2.attribute) > avg(thresholds.attribute)";

    #[test]
    fn parses_listing1() {
        let stmt = parse_statement(LISTING1).unwrap();
        assert_eq!(stmt.select, SelectList::Wildcard);
        assert_eq!(stmt.from.len(), 3);
        assert_eq!(stmt.from[0].alias, "bd");
        assert_eq!(stmt.from[0].views.len(), 1);
        assert_eq!(stmt.from[0].views[0].name, "lastevent");
        assert_eq!(stmt.from[1].views.len(), 2);
        assert_eq!(stmt.from[1].views[0].name, "groupwin");
        assert_eq!(
            stmt.from[1].views[0].args,
            vec![ViewArg::Field("location".into())]
        );
        assert_eq!(stmt.from[1].views[1].name, "length");
        assert_eq!(stmt.from[1].views[1].args, vec![ViewArg::Int(10)]);
        assert_eq!(stmt.from[2].stream, "thresholdLocation");
        assert_eq!(stmt.from[2].views[0].name, "keepall");
        let wc = stmt.where_clause.as_ref().unwrap();
        assert_eq!(wc.conjuncts().len(), 4);
        assert_eq!(stmt.group_by.len(), 1);
        assert!(stmt.having.as_ref().unwrap().has_aggregate());
    }

    #[test]
    fn parses_insert_into() {
        let stmt = parse_statement(
            "INSERT INTO alerts SELECT vehicle, delay FROM bus.win:length(5) WHERE delay > 60",
        )
        .unwrap();
        assert_eq!(stmt.insert_into.as_deref(), Some("alerts"));
        match &stmt.select {
            SelectList::Items(items) => assert_eq!(items.len(), 2),
            other => panic!("expected items, got {other:?}"),
        }
    }

    #[test]
    fn select_items_with_aliases_and_arithmetic() {
        let stmt = parse_statement(
            "SELECT avg(delay) AS mean_delay, delay - 3 * 2 AS adjusted FROM bus.win:keepall()",
        )
        .unwrap();
        let SelectList::Items(items) = &stmt.select else { panic!() };
        assert_eq!(items[0].alias.as_deref(), Some("mean_delay"));
        assert!(items[0].expr.has_aggregate());
        // Precedence: delay - (3*2).
        match &items[1].expr {
            Expr::Bin { op: BinOp::Sub, rhs, .. } => {
                assert!(matches!(**rhs, Expr::Bin { op: BinOp::Mul, .. }));
            }
            other => panic!("bad precedence: {other:?}"),
        }
    }

    #[test]
    fn default_alias_is_stream_name() {
        let stmt = parse_statement("SELECT * FROM bus.win:length(3)").unwrap();
        assert_eq!(stmt.from[0].alias, "bus");
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let stmt = parse_statement(
            "select * from bus.WIN:LENGTH(4) As b where b.x > 1 group by b.loc having count(*) >= 2",
        )
        .unwrap();
        assert_eq!(stmt.from[0].alias, "b");
        assert_eq!(stmt.from[0].views[0].name, "length");
        assert_eq!(stmt.group_by.len(), 1);
    }

    #[test]
    fn count_star_and_boolean_literals() {
        let stmt = parse_statement(
            "SELECT count(*) FROM bus.win:keepall() WHERE congestion = true HAVING count(*) > 5",
        )
        .unwrap();
        let SelectList::Items(items) = &stmt.select else { panic!() };
        assert_eq!(items[0].expr, Expr::Agg { func: AggFunc::Count, arg: None });
        assert!(stmt.where_clause.is_some());
    }

    #[test]
    fn not_and_parentheses() {
        let stmt = parse_statement(
            "SELECT * FROM bus.win:length(1) WHERE NOT (a = 1 OR b = 2) AND c != 3",
        )
        .unwrap();
        let wc = stmt.where_clause.unwrap();
        let cs = wc.conjuncts();
        assert_eq!(cs.len(), 2);
        assert!(matches!(cs[0], Expr::Not(_)));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_statement("").is_err());
        assert!(parse_statement("SELECT").is_err());
        assert!(parse_statement("SELECT * FROM").is_err());
        assert!(parse_statement("SELECT * FROM bus WHERE").is_err());
        assert!(parse_statement("SELECT * FROM bus.win:length()extra()").is_err());
        assert!(parse_statement("SELECT * FROM bus trailing garbage").is_err());
        assert!(parse_statement("INSERT SELECT * FROM bus").is_err());
        assert!(parse_statement("SELECT * FROM bus.win:length(").is_err());
    }

    #[test]
    fn multi_view_args() {
        let stmt = parse_statement("SELECT * FROM bus.win:time(30.5)").unwrap();
        assert_eq!(stmt.from[0].views[0].args, vec![ViewArg::Float(30.5)]);
    }
}
