//! Acceptance tests for the sharing planner: cluster formation, dynamic
//! rule churn against shared state, cost-model rejections, per-statement
//! profile accounting, and mid-stream enable/disable toggles.

use parking_lot::Mutex;
use std::sync::Arc;
use tms_cep::engine::Listener;
use tms_cep::{Engine, EventType, FieldType, FieldValue, OutputRow};

fn bus_type() -> EventType {
    EventType::with_fields(
        "bus",
        &[
            ("vehicle", FieldType::Int),
            ("location", FieldType::Str),
            ("delay", FieldType::Float),
            ("hour", FieldType::Int),
            ("day", FieldType::Str),
        ],
    )
    .unwrap()
}

fn threshold_type() -> EventType {
    EventType::with_fields(
        "thresholdLocation",
        &[
            ("location", FieldType::Str),
            ("hour", FieldType::Int),
            ("day", FieldType::Str),
            ("attribute", FieldType::Float),
        ],
    )
    .unwrap()
}

fn engine(sharing: bool) -> Engine {
    let mut e = Engine::new();
    e.register_type(bus_type()).unwrap();
    e.register_type(threshold_type()).unwrap();
    e.set_sharing_enabled(sharing).unwrap();
    e.set_profiling_enabled(true);
    e
}

fn capture() -> (Arc<Mutex<Vec<OutputRow>>>, Listener) {
    let sink: Arc<Mutex<Vec<OutputRow>>> = Arc::new(Mutex::new(Vec::new()));
    let s2 = sink.clone();
    let listener: Listener = Box::new(move |_, rows| s2.lock().extend(rows.iter().cloned()));
    (sink, listener)
}

/// A Listing-1 rule over `win:length(l)`, location-grouped.
fn epl(l: usize) -> String {
    format!(
        "SELECT bd2.location AS loc, avg(bd2.delay) AS m \
         FROM bus.std:lastevent() AS bd, \
              bus.std:groupwin(location).win:length({l}) AS bd2, \
              thresholdLocation.win:keepall() AS thresholds \
         WHERE bd.hour = thresholds.hour AND bd.day = thresholds.day \
           AND bd.location = thresholds.location AND bd.location = bd2.location \
         GROUP BY bd2.location \
         HAVING avg(bd2.delay) > avg(thresholds.attribute)"
    )
}

fn send_bus(e: &mut Engine, ts: u64, loc: &str, delay: f64) {
    let ev = e
        .make_event(
            "bus",
            ts,
            &[
                ("vehicle", 1i64.into()),
                ("location", loc.into()),
                ("delay", delay.into()),
                ("hour", 8i64.into()),
                ("day", "weekday".into()),
            ],
        )
        .unwrap();
    e.send_event(ev).unwrap();
}

fn send_threshold(e: &mut Engine, ts: u64, loc: &str, attr: f64) {
    let ev = e
        .make_event(
            "thresholdLocation",
            ts,
            &[
                ("location", loc.into()),
                ("hour", 8i64.into()),
                ("day", "weekday".into()),
                ("attribute", attr.into()),
            ],
        )
        .unwrap();
    e.send_event(ev).unwrap();
}

#[test]
fn batch_installed_same_shape_rules_form_one_cluster() {
    let mut e = engine(true);
    let (sink_a, la) = capture();
    let (sink_b, lb) = capture();
    let a = e.create_statement(&epl(3), la).unwrap();
    let b = e.create_statement(&epl(3), lb).unwrap();

    let report = e.sharing_report();
    assert!(report.sharing_enabled);
    assert_eq!(report.shared_statements, 2, "both rules join the cluster");
    assert_eq!(report.clusters.len(), 1);
    assert_eq!(report.clusters[0].statements, vec![a.id, b.id]);
    // lastevent + pane + keepall, each referenced by both statements.
    assert_eq!(report.shared_windows, 3);
    assert_eq!(report.private_windows, 0);
    assert!(
        report.est_shared_cost < report.est_private_cost,
        "the planner must only share when the model predicts a win"
    );

    send_threshold(&mut e, 0, "R1", 3.0);
    send_bus(&mut e, 10, "R1", 5.0);
    send_bus(&mut e, 20, "R1", 7.0);
    assert_eq!(sink_a.lock().len(), 2, "avg {{5}}, then avg {{5,7}}, both > 3");
    assert_eq!(*sink_a.lock(), *sink_b.lock(), "cluster members see identical rows");

    let report = e.sharing_report();
    assert!(report.realized_shared_evals > 0, "evals must actually run shared");
    assert_eq!(report.realized_private_evals, 0);
    assert_eq!(report.clusters[0].threshold_entries, 1);
    assert_eq!(report.clusters[0].bank_groups, 1);
}

#[test]
fn rule_churn_leaves_sibling_cluster_state_intact() {
    // Reference: rule A alone over the full script.
    let mut reference = engine(true);
    let (ref_sink, rl) = capture();
    reference.create_statement(&epl(3), rl).unwrap();

    // Under test: A and B clustered, B removed mid-stream, C added after.
    let mut e = engine(true);
    let (sink_a, la) = capture();
    let (sink_b, lb) = capture();
    let a = e.create_statement(&epl(3), la).unwrap();
    let b = e.create_statement(&epl(3), lb).unwrap();

    for eng in [&mut reference, &mut e] {
        send_threshold(eng, 0, "R1", 3.0);
        send_bus(eng, 10, "R1", 5.0);
        send_bus(eng, 20, "R1", 7.0);
    }
    let fired_before = sink_b.lock().len();
    assert_eq!(fired_before, 2);

    e.remove_statement(b.id).unwrap();
    // A's windows must be untouched by the removal: lastevent (1) +
    // pane group R1 (2) + keepall (1 threshold).
    let profile = e.profile();
    let pa = profile.iter().find(|p| p.id == a.id).unwrap();
    assert_eq!(pa.window_len, 4, "sibling occupancy survives the removal");

    for eng in [&mut reference, &mut e] {
        send_bus(eng, 30, "R1", 9.0);
    }
    assert_eq!(sink_b.lock().len(), fired_before, "removed rules stay silent");

    // A late joiner gets fresh (private) windows — it must fire once its
    // own threshold window is fed, without disturbing A.
    let (sink_c, lc) = capture();
    let c = e.create_statement(&epl(3), lc).unwrap();
    for eng in [&mut reference, &mut e] {
        send_threshold(eng, 40, "R1", 3.0);
        send_bus(eng, 50, "R1", 11.0);
    }
    assert_eq!(
        *ref_sink.lock(),
        *sink_a.lock(),
        "A's output must be byte-identical to running alone"
    );
    assert_eq!(sink_c.lock().len(), 1, "the late joiner fires on its own state");
    let profile = e.profile();
    let pc = profile.iter().find(|p| p.id == c.id).unwrap();
    assert_eq!(pc.window_len, 3, "late joiner: lastevent 1 + pane 1 + keepall 1");
}

#[test]
fn cluster_members_count_events_in_once() {
    let mut e = engine(true);
    let (_, la) = capture();
    let (_, lb) = capture();
    e.create_statement(&epl(10), la).unwrap();
    e.create_statement(&epl(10), lb).unwrap();

    send_threshold(&mut e, 0, "R1", 100.0);
    for i in 0..5 {
        send_bus(&mut e, 10 + i, "R1", 1.0);
    }
    for p in e.profile() {
        assert_eq!(
            p.events_in, 6,
            "each member sees 1 threshold + 5 bus events exactly once"
        );
        assert_eq!(p.evals, 6);
        assert_eq!(p.path_shared, 6, "all evals served from cluster state");
        assert_eq!(p.path_rescan, 0);
    }
}

#[test]
fn cost_model_keeps_length_one_panes_private() {
    let mut e = engine(true);
    let (sink, l) = capture();
    e.create_statement(&epl(1), l).unwrap();

    let report = e.sharing_report();
    assert_eq!(report.shared_statements, 0);
    assert_eq!(report.cost_rejected_statements, 1, "length(1) predicts no win");

    send_threshold(&mut e, 0, "R1", 3.0);
    send_bus(&mut e, 10, "R1", 5.0);
    assert_eq!(sink.lock().len(), 1);
    let p = &e.profile()[0];
    assert_eq!(p.path_shared, 0, "rejected statements stay on private paths");
    assert!(p.path_rescan > 0);
}

#[test]
fn mid_stream_toggles_preserve_outputs_exactly() {
    // Three engines over the same script: always-off, on→off at the
    // midpoint, off→on at the midpoint (exercising the split and merge
    // paths on live window state).
    let mut always_off = engine(false);
    let mut on_then_off = engine(true);
    let mut off_then_on = engine(false);
    let mut sinks = Vec::new();
    for e in [&mut always_off, &mut on_then_off, &mut off_then_on] {
        let (s1, l1) = capture();
        let (s2, l2) = capture();
        e.create_statement(&epl(3), l1).unwrap();
        e.create_statement(&epl(5), l2).unwrap();
        sinks.push((s1, s2));
    }
    let feed = |e: &mut Engine, base: u64| {
        send_threshold(e, base, "R1", 2.0);
        send_bus(e, base + 10, "R1", 5.0);
        send_bus(e, base + 20, "R2", 7.0);
        send_threshold(e, base + 30, "R2", 4.0);
        send_bus(e, base + 40, "R1", 3.0);
        send_bus(e, base + 50, "R1", 8.0);
    };
    for e in [&mut always_off, &mut on_then_off, &mut off_then_on] {
        feed(e, 0);
    }
    on_then_off.set_sharing_enabled(false).unwrap();
    off_then_on.set_sharing_enabled(true).unwrap();
    for e in [&mut always_off, &mut on_then_off, &mut off_then_on] {
        feed(e, 100);
    }
    for (name, (s1, s2)) in
        [("on-then-off", &sinks[1]), ("off-then-on", &sinks[2])]
    {
        assert_eq!(*sinks[0].0.lock(), *s1.lock(), "{name}: rule 1 diverged");
        assert_eq!(*sinks[0].1.lock(), *s2.lock(), "{name}: rule 2 diverged");
    }
    // The re-enable merged identical keepall/lastevent slots back together.
    let report = off_then_on.sharing_report();
    assert!(report.sharing_enabled);
    assert!(report.shared_windows > 0, "identical live windows re-merge");
}

#[test]
fn rule_removal_mid_migration_keeps_sibling_shared_state_intact() {
    // Elastic migration is collect → (drain) → evict; a dynamic rule
    // removal can land in that gap. The removal must neither invalidate
    // the collected partition nor let the later eviction corrupt the
    // surviving sibling's shared slots.

    // Reference: rule A alone, same script including the R2 eviction.
    let mut reference = engine(true);
    let (ref_sink, rl) = capture();
    reference.create_statement(&epl(3), rl).unwrap();

    // Under test: A and B share one cluster.
    let mut e = engine(true);
    let (sink_a, la) = capture();
    let (sink_b, lb) = capture();
    let a = e.create_statement(&epl(3), la).unwrap();
    let b = e.create_statement(&epl(3), lb).unwrap();
    assert_eq!(e.sharing_report().clusters.len(), 1, "A and B must cluster");

    for eng in [&mut reference, &mut e] {
        send_threshold(eng, 0, "R1", 3.0);
        send_threshold(eng, 1, "R2", 3.0);
        send_bus(eng, 10, "R1", 5.0);
        send_bus(eng, 20, "R2", 6.0);
        send_bus(eng, 30, "R2", 8.0);
    }
    assert_eq!(*sink_a.lock(), *sink_b.lock(), "cluster members agree pre-migration");

    // Migration of R2 begins: collect from the live shared windows...
    let vals = [FieldValue::from("R2")];
    let bus_state = e.collect_partition("bus", "location", &vals).unwrap();
    let thr_state = e.collect_partition("thresholdLocation", "location", &vals).unwrap();
    assert_eq!(bus_state.len(), 2, "both retained R2 bus events ship");
    assert_eq!(thr_state.len(), 1, "R2's threshold row ships");

    // ...then B is removed in the collect→evict gap...
    e.remove_statement(b.id).unwrap();

    // ...and the eviction completes against the post-removal engine.
    assert!(e.evict_partition("bus", "location", &vals).unwrap() >= 2);
    e.evict_partition("thresholdLocation", "location", &vals).unwrap();
    reference.evict_partition("bus", "location", &vals).unwrap();
    reference.evict_partition("thresholdLocation", "location", &vals).unwrap();

    // A's R1 occupancy survives both the removal and the eviction: pane
    // R1 (1) + R1 threshold (1). The lastevent slot empties — it held the
    // most recent event, an R2 bus trace, which the eviction removed.
    let profile = e.profile();
    let pa = profile.iter().find(|p| p.id == a.id).unwrap();
    assert_eq!(pa.window_len, 2, "sibling keeps exactly its R1 state");

    // The collected payload is still installable — the removal must not
    // have invalidated it. A fresh destination absorbs and fires on R2.
    let mut dest = engine(true);
    let (sink_d, ld) = capture();
    dest.create_statement(&epl(3), ld).unwrap();
    dest.absorb_partition(&bus_state).unwrap();
    dest.absorb_partition(&thr_state).unwrap();
    assert!(sink_d.lock().is_empty(), "absorption must not fire listeners");
    send_bus(&mut dest, 40, "R2", 9.0);
    assert!(!sink_d.lock().is_empty(), "migrated R2 state keeps detecting");

    // A continues on R1 byte-identically to running alone.
    let fired_b = sink_b.lock().len();
    for eng in [&mut reference, &mut e] {
        send_bus(eng, 50, "R1", 9.0);
        send_bus(eng, 60, "R1", 11.0);
    }
    assert_eq!(*ref_sink.lock(), *sink_a.lock(), "sibling output diverged");
    assert_eq!(sink_b.lock().len(), fired_b, "removed rules stay silent");
}
