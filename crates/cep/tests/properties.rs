//! Property-based tests of the CEP engine against reference models.

use proptest::prelude::*;
use tms_cep::{Engine, Event, EventType, FieldType};

fn engine_with_type() -> (Engine, std::sync::Arc<EventType>) {
    let mut e = Engine::new();
    e.register_type(
        EventType::with_fields("s", &[("k", FieldType::Str), ("v", FieldType::Float)]).unwrap(),
    )
    .unwrap();
    let ty = e.event_type("s").unwrap().clone();
    (e, ty)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The lexer and parser never panic on arbitrary input (errors are
    /// fine; crashes are not).
    #[test]
    fn parser_never_panics(src in ".{0,120}") {
        let _ = tms_cep::parse_statement(&src);
    }

    /// Mutating a valid statement's characters never panics either (this
    /// walks much closer to the grammar than fully random strings).
    #[test]
    fn mutated_epl_never_panics(pos in 0usize..200, c in any::<char>()) {
        let base = "SELECT w.k AS k, avg(w.v) AS m FROM s.std:groupwin(k).win:length(5) AS w \
                    WHERE w.v > 0 GROUP BY w.k HAVING avg(w.v) > 1 ORDER BY avg(w.v) DESC";
        let mut chars: Vec<char> = base.chars().collect();
        if pos < chars.len() {
            chars[pos] = c;
        }
        let mutated: String = chars.into_iter().collect();
        let _ = tms_cep::parse_statement(&mutated);
    }

    /// `sum` and `count` over a sliding length window match a reference
    /// computation for any event sequence, any window size.
    #[test]
    fn sliding_sum_matches_reference(
        values in prop::collection::vec(-1000.0f64..1000.0, 1..50),
        n in 1usize..10,
    ) {
        let (mut engine, ty) = engine_with_type();
        let outputs = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let sink = outputs.clone();
        engine.create_statement(
            &format!("SELECT sum(w.v) AS s, count(*) AS n FROM s.win:length({n}) AS w"),
            Box::new(move |_, rows| {
                for r in rows {
                    sink.lock().push((
                        r.get("s").unwrap().as_f64().unwrap(),
                        r.get("n").unwrap().as_f64().unwrap(),
                    ));
                }
            }),
        ).unwrap();
        for (i, &v) in values.iter().enumerate() {
            engine.send_event(
                Event::from_pairs(&ty, i as u64, &[("k", "x".into()), ("v", v.into())]).unwrap(),
            ).unwrap();
            let (got_sum, got_n) = *outputs.lock().last().expect("fires every event");
            let lo = values[..=i].len().saturating_sub(n);
            let window = &values[lo..=i];
            let want: f64 = window.iter().sum();
            prop_assert!((got_sum - want).abs() < 1e-6, "sum {} vs {}", got_sum, want);
            prop_assert_eq!(got_n as usize, window.len());
        }
    }

    /// `min`/`max` over a grouped window match a reference for interleaved
    /// groups.
    #[test]
    fn grouped_min_max_match_reference(
        events in prop::collection::vec((0u8..4, -500.0f64..500.0), 1..40),
    ) {
        let (mut engine, ty) = engine_with_type();
        let outputs = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let sink = outputs.clone();
        engine.create_statement(
            "SELECT w.k AS k, min(w.v) AS lo, max(w.v) AS hi \
             FROM s.std:groupwin(k).win:keepall() AS w GROUP BY w.k",
            Box::new(move |_, rows| {
                for r in rows {
                    sink.lock().push((
                        r.get("k").unwrap().to_string(),
                        r.get("lo").unwrap().as_f64().unwrap(),
                        r.get("hi").unwrap().as_f64().unwrap(),
                    ));
                }
            }),
        ).unwrap();
        let mut reference: std::collections::HashMap<String, (f64, f64)> = Default::default();
        for (i, (g, v)) in events.iter().enumerate() {
            let key = format!("g{g}");
            engine.send_event(
                Event::from_pairs(&ty, i as u64, &[("k", key.as_str().into()), ("v", (*v).into())])
                    .unwrap(),
            ).unwrap();
            let entry = reference.entry(key.clone()).or_insert((*v, *v));
            entry.0 = entry.0.min(*v);
            entry.1 = entry.1.max(*v);
            let (k, lo, hi) = outputs.lock().last().cloned().expect("fires");
            prop_assert_eq!(&k, &key, "fired for the arriving group");
            prop_assert_eq!(lo, entry.0);
            prop_assert_eq!(hi, entry.1);
        }
    }

    /// A filter statement fires exactly for the events satisfying the
    /// predicate, in arrival order.
    #[test]
    fn filter_matches_reference(
        values in prop::collection::vec(-100i64..100, 0..60),
        threshold in -50i64..50,
    ) {
        let (mut engine, ty) = engine_with_type();
        let outputs = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let sink = outputs.clone();
        engine.create_statement(
            &format!("SELECT v FROM s WHERE v > {threshold}"),
            Box::new(move |_, rows| {
                for r in rows {
                    sink.lock().push(r.get("v").unwrap().as_f64().unwrap());
                }
            }),
        ).unwrap();
        for (i, &v) in values.iter().enumerate() {
            engine.send_event(
                Event::from_pairs(&ty, i as u64, &[("k", "x".into()), ("v", (v as f64).into())])
                    .unwrap(),
            ).unwrap();
        }
        let want: Vec<f64> =
            values.iter().filter(|&&v| v > threshold).map(|&v| v as f64).collect();
        prop_assert_eq!(outputs.lock().clone(), want);
    }
}
