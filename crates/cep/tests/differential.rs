//! Differential property test: the incremental evaluation path (delta-
//! maintained aggregates + anchor fast path) must emit byte-identical
//! `OutputRow` sequences to the full-window rescan path, for random event
//! streams over random window specs — including empty-window starts,
//! filtered-out events, and all-evicted time windows.
//!
//! Delays are integer-valued so sum/sum_sq arithmetic is exact in f64 and
//! subtract-on-evict matches recompute-from-scratch bit-for-bit.

use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;
use tms_cep::engine::Listener;
use tms_cep::{Engine, EventType, FieldType, OutputRow};

const LOCATIONS: [&str; 3] = ["R1", "R2", "R3"];

/// One step of the driving script: an event, or a time advance.
#[derive(Debug, Clone)]
enum Step {
    Event { loc: usize, delay: i64, dt_ms: u64 },
    Advance { jump_ms: u64 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (0usize..5, 0usize..3, 0i64..12, 0u64..1500).prop_map(|(kind, loc, delay, dt)| {
        if kind == 4 {
            // 1-in-5 steps advances time without an arrival, far enough to
            // drain a whole `win:time` window now and then.
            Step::Advance { jump_ms: 500 + dt * 4 }
        } else {
            Step::Event { loc, delay, dt_ms: dt }
        }
    })
}

/// The window views under test, substituted into each statement.
const VIEWS: [&str; 5] = [
    "win:length(4)",
    "win:time(2)",
    "std:groupwin(location).win:length(3)",
    "win:length_batch(3)",
    "std:unique(location)",
];

fn bus_type() -> EventType {
    EventType::with_fields(
        "bus",
        &[
            ("vehicle", FieldType::Int),
            ("location", FieldType::Str),
            ("delay", FieldType::Float),
        ],
    )
    .unwrap()
}

fn capture() -> (Arc<Mutex<Vec<OutputRow>>>, Listener) {
    let sink: Arc<Mutex<Vec<OutputRow>>> = Arc::new(Mutex::new(Vec::new()));
    let s2 = sink.clone();
    let listener: Listener = Box::new(move |_, rows| s2.lock().extend(rows.iter().cloned()));
    (sink, listener)
}

/// Builds one engine with the three statement shapes over `view`:
/// grouped aggregation with min/max (exercises lazy extrema repair),
/// ungrouped sum/stddev (exercises empty-aggregate skips), and a
/// non-aggregated filter (exercises the anchor fast path).
fn build(view: &str, incremental: bool) -> (Engine, Vec<Arc<Mutex<Vec<OutputRow>>>>) {
    let mut e = Engine::new();
    e.register_type(bus_type()).unwrap();
    e.set_incremental_enabled(incremental).unwrap();
    let statements = [
        format!(
            "SELECT w.location AS loc, avg(w.delay) AS m, min(w.delay) AS lo, \
             max(w.delay) AS hi, count(*) AS n \
             FROM bus.{view} AS w WHERE w.delay >= 2 \
             GROUP BY w.location HAVING count(*) >= 1"
        ),
        format!("SELECT sum(w.delay) AS s, stddev(w.delay) AS sd FROM bus.{view} AS w"),
        format!("SELECT vehicle, delay FROM bus.{view} WHERE delay > 6"),
    ];
    let mut sinks = Vec::new();
    for epl in &statements {
        let (sink, l) = capture();
        e.create_statement(epl, l).unwrap();
        sinks.push(sink);
    }
    (e, sinks)
}

fn run_script(view: &str, steps: &[Step]) {
    let (mut fast, fast_sinks) = build(view, true);
    let (mut slow, slow_sinks) = build(view, false);
    let mut now = 0u64;
    let mut vehicle = 0i64;
    for step in steps {
        match step {
            Step::Event { loc, delay, dt_ms } => {
                now += dt_ms;
                vehicle += 1;
                for eng in [&mut fast, &mut slow] {
                    let ev = eng
                        .make_event(
                            "bus",
                            now,
                            &[
                                ("vehicle", vehicle.into()),
                                ("location", LOCATIONS[*loc].into()),
                                ("delay", (*delay as f64).into()),
                            ],
                        )
                        .unwrap();
                    eng.send_event(ev).unwrap();
                }
            }
            Step::Advance { jump_ms } => {
                now += jump_ms;
                fast.advance_time(now);
                slow.advance_time(now);
            }
        }
    }
    for (i, (f, s)) in fast_sinks.iter().zip(&slow_sinks).enumerate() {
        assert_eq!(
            *f.lock(),
            *s.lock(),
            "statement {i} diverged between incremental and rescan on view {view}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_matches_rescan(
        view_idx in 0usize..VIEWS.len(),
        steps in proptest::collection::vec(step_strategy(), 0..60),
    ) {
        run_script(VIEWS[view_idx], &steps);
    }
}

#[test]
fn empty_stream_produces_nothing_on_both_paths() {
    run_script("win:length(4)", &[]);
}

#[test]
fn all_evicted_time_window_matches() {
    // Fill a time window, drain it entirely via advance_time, refill: the
    // incremental state must come back from empty exactly like a rescan.
    let steps = [
        Step::Event { loc: 0, delay: 5, dt_ms: 10 },
        Step::Event { loc: 1, delay: 9, dt_ms: 10 },
        Step::Advance { jump_ms: 60_000 },
        Step::Event { loc: 0, delay: 3, dt_ms: 10 },
        Step::Event { loc: 0, delay: 11, dt_ms: 10 },
    ];
    run_script("win:time(2)", &steps);
}

#[test]
fn extremum_eviction_repairs_min_max() {
    // The max (11) slides out of a length-3 window while smaller values
    // survive — the incremental path must lazily rebuild the extremum.
    let steps = [
        Step::Event { loc: 0, delay: 11, dt_ms: 1 },
        Step::Event { loc: 0, delay: 2, dt_ms: 1 },
        Step::Event { loc: 0, delay: 7, dt_ms: 1 },
        Step::Event { loc: 0, delay: 3, dt_ms: 1 }, // evicts 11
        Step::Event { loc: 0, delay: 4, dt_ms: 1 }, // evicts 2 (the min)
    ];
    run_script("win:length(3)", &steps);
}
