//! Differential property test: the incremental evaluation path (delta-
//! maintained aggregates + anchor fast path) must emit byte-identical
//! `OutputRow` sequences to the full-window rescan path, for random event
//! streams over random window specs — including empty-window starts,
//! filtered-out events, and all-evicted time windows.
//!
//! Delays are integer-valued so sum/sum_sq arithmetic is exact in f64 and
//! subtract-on-evict matches recompute-from-scratch bit-for-bit.

use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;
use tms_cep::engine::Listener;
use tms_cep::{Engine, EventType, FieldType, OutputRow};

const LOCATIONS: [&str; 3] = ["R1", "R2", "R3"];

/// One step of the driving script: an event, or a time advance.
#[derive(Debug, Clone)]
enum Step {
    Event { loc: usize, delay: i64, dt_ms: u64 },
    Advance { jump_ms: u64 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (0usize..5, 0usize..3, 0i64..12, 0u64..1500).prop_map(|(kind, loc, delay, dt)| {
        if kind == 4 {
            // 1-in-5 steps advances time without an arrival, far enough to
            // drain a whole `win:time` window now and then.
            Step::Advance { jump_ms: 500 + dt * 4 }
        } else {
            Step::Event { loc, delay, dt_ms: dt }
        }
    })
}

/// The window views under test, substituted into each statement.
const VIEWS: [&str; 5] = [
    "win:length(4)",
    "win:time(2)",
    "std:groupwin(location).win:length(3)",
    "win:length_batch(3)",
    "std:unique(location)",
];

fn bus_type() -> EventType {
    EventType::with_fields(
        "bus",
        &[
            ("vehicle", FieldType::Int),
            ("location", FieldType::Str),
            ("delay", FieldType::Float),
        ],
    )
    .unwrap()
}

fn capture() -> (Arc<Mutex<Vec<OutputRow>>>, Listener) {
    let sink: Arc<Mutex<Vec<OutputRow>>> = Arc::new(Mutex::new(Vec::new()));
    let s2 = sink.clone();
    let listener: Listener = Box::new(move |_, rows| s2.lock().extend(rows.iter().cloned()));
    (sink, listener)
}

/// Builds one engine with the three statement shapes over `view`:
/// grouped aggregation with min/max (exercises lazy extrema repair),
/// ungrouped sum/stddev (exercises empty-aggregate skips), and a
/// non-aggregated filter (exercises the anchor fast path).
fn build(view: &str, incremental: bool) -> (Engine, Vec<Arc<Mutex<Vec<OutputRow>>>>) {
    let mut e = Engine::new();
    e.register_type(bus_type()).unwrap();
    e.set_incremental_enabled(incremental).unwrap();
    let statements = [
        format!(
            "SELECT w.location AS loc, avg(w.delay) AS m, min(w.delay) AS lo, \
             max(w.delay) AS hi, count(*) AS n \
             FROM bus.{view} AS w WHERE w.delay >= 2 \
             GROUP BY w.location HAVING count(*) >= 1"
        ),
        format!("SELECT sum(w.delay) AS s, stddev(w.delay) AS sd FROM bus.{view} AS w"),
        format!("SELECT vehicle, delay FROM bus.{view} WHERE delay > 6"),
    ];
    let mut sinks = Vec::new();
    for epl in &statements {
        let (sink, l) = capture();
        e.create_statement(epl, l).unwrap();
        sinks.push(sink);
    }
    (e, sinks)
}

fn run_script(view: &str, steps: &[Step]) {
    let (mut fast, fast_sinks) = build(view, true);
    let (mut slow, slow_sinks) = build(view, false);
    let mut now = 0u64;
    let mut vehicle = 0i64;
    for step in steps {
        match step {
            Step::Event { loc, delay, dt_ms } => {
                now += dt_ms;
                vehicle += 1;
                for eng in [&mut fast, &mut slow] {
                    let ev = eng
                        .make_event(
                            "bus",
                            now,
                            &[
                                ("vehicle", vehicle.into()),
                                ("location", LOCATIONS[*loc].into()),
                                ("delay", (*delay as f64).into()),
                            ],
                        )
                        .unwrap();
                    eng.send_event(ev).unwrap();
                }
            }
            Step::Advance { jump_ms } => {
                now += jump_ms;
                fast.advance_time(now);
                slow.advance_time(now);
            }
        }
    }
    for (i, (f, s)) in fast_sinks.iter().zip(&slow_sinks).enumerate() {
        assert_eq!(
            *f.lock(),
            *s.lock(),
            "statement {i} diverged between incremental and rescan on view {view}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_matches_rescan(
        view_idx in 0usize..VIEWS.len(),
        steps in proptest::collection::vec(step_strategy(), 0..60),
    ) {
        run_script(VIEWS[view_idx], &steps);
    }
}

// ---------------------------------------------------------------------------
// Shared-evaluation differential: shared ≡ unshared ≡ rescan on randomized
// multi-rule Listing-1 join workloads
// ---------------------------------------------------------------------------

/// Pane views for the grouped source of a Listing-1 join. `length(1)` is
/// deliberate: the cost model keeps it on private paths, so random rule
/// sets mix shared clusters with cost-rejected private statements.
const JOIN_VIEWS: [&str; 5] =
    ["win:length(1)", "win:length(3)", "win:length(5)", "win:time(2)", "win:keepall()"];

const DAYS: [&str; 2] = ["weekday", "weekend"];

/// One randomized Listing-1 rule: pane view × group key × select list ×
/// HAVING shape. Same (view, group) pairs cluster; different pairs keep
/// private panes but still share the lastevent and keepall slots.
#[derive(Debug, Clone)]
struct JoinRule {
    view: usize,
    group: usize,
    sel: usize,
    having: usize,
}

fn join_rule_strategy() -> impl Strategy<Value = JoinRule> {
    (0usize..JOIN_VIEWS.len(), 0usize..2, 0usize..4, 0usize..3)
        .prop_map(|(view, group, sel, having)| JoinRule { view, group, sel, having })
}

fn join_epl(r: &JoinRule) -> String {
    let g = ["location", "day"][r.group];
    let view = JOIN_VIEWS[r.view];
    let sel = match r.sel {
        0 => "avg(bd2.delay) AS m",
        1 => "avg(bd2.delay) AS m, count(*) AS n",
        2 => "avg(bd2.delay) AS m, sum(bd2.delay) AS s, min(bd2.delay) AS lo",
        _ => "avg(bd2.delay) AS m, max(bd2.delay) AS hi, stddev(bd2.delay) AS sd",
    };
    let having = match r.having {
        0 => "",
        1 => " HAVING avg(bd2.delay) > avg(thresholds.attribute)",
        _ => " HAVING avg(bd2.delay) > min(thresholds.attribute)",
    };
    // Both variants keep every step-2 key on the anchor source and a
    // single anchor↔pane key, matching the shared-join shape. The two
    // group keys produce *different* threshold-index key sets over the
    // same keepall slot.
    let keys = if r.group == 0 {
        "bd.hour = thresholds.hour AND bd.day = thresholds.day \
         AND bd.location = thresholds.location AND bd.location = bd2.location"
    } else {
        "bd.hour = thresholds.hour AND bd.day = thresholds.day AND bd.day = bd2.day"
    };
    format!(
        "SELECT bd2.{g} AS k, {sel} \
         FROM bus.std:lastevent() AS bd, \
              bus.std:groupwin({g}).{view} AS bd2, \
              thresholdLocation.win:keepall() AS thresholds \
         WHERE {keys} GROUP BY bd2.{g}{having}"
    )
}

/// A join-workload step: a bus arrival, a mid-stream threshold arrival,
/// or a time advance (drains `win:time` panes).
#[derive(Debug, Clone)]
enum JoinStep {
    Bus { loc: usize, day: usize, delay: i64, dt_ms: u64 },
    Threshold { loc: usize, day: usize, attr: i64, dt_ms: u64 },
    Advance { jump_ms: u64 },
}

fn join_step_strategy() -> impl Strategy<Value = JoinStep> {
    (0usize..6, 0usize..3, 0usize..2, 0i64..12, 0u64..900).prop_map(
        |(kind, loc, day, val, dt)| match kind {
            0..=2 => JoinStep::Bus { loc, day, delay: val, dt_ms: dt },
            3 | 4 => JoinStep::Threshold { loc, day, attr: val, dt_ms: dt },
            _ => JoinStep::Advance { jump_ms: 500 + dt * 4 },
        },
    )
}

fn join_bus_type() -> EventType {
    EventType::with_fields(
        "bus",
        &[
            ("vehicle", FieldType::Int),
            ("location", FieldType::Str),
            ("delay", FieldType::Float),
            ("hour", FieldType::Int),
            ("day", FieldType::Str),
        ],
    )
    .unwrap()
}

fn threshold_type() -> EventType {
    EventType::with_fields(
        "thresholdLocation",
        &[
            ("location", FieldType::Str),
            ("hour", FieldType::Int),
            ("day", FieldType::Str),
            ("attribute", FieldType::Float),
        ],
    )
    .unwrap()
}

fn build_joins(
    rules: &[JoinRule],
    sharing: bool,
    incremental: bool,
) -> (Engine, Vec<Arc<Mutex<Vec<OutputRow>>>>) {
    let mut e = Engine::new();
    e.register_type(join_bus_type()).unwrap();
    e.register_type(threshold_type()).unwrap();
    e.set_sharing_enabled(sharing).unwrap();
    e.set_incremental_enabled(incremental).unwrap();
    let mut sinks = Vec::new();
    for r in rules {
        let (sink, l) = capture();
        e.create_statement(&join_epl(r), l).unwrap();
        sinks.push(sink);
    }
    (e, sinks)
}

fn run_join_script(rules: &[JoinRule], steps: &[JoinStep]) {
    let mut engines = [
        build_joins(rules, true, true),   // shared
        build_joins(rules, false, true),  // unshared, incremental paths on
        build_joins(rules, false, false), // rescan
    ];
    let mut now = 0u64;
    let mut vehicle = 0i64;
    for step in steps {
        match step {
            JoinStep::Bus { loc, day, delay, dt_ms } => {
                now += dt_ms;
                vehicle += 1;
                for (eng, _) in engines.iter_mut() {
                    let ev = eng
                        .make_event(
                            "bus",
                            now,
                            &[
                                ("vehicle", vehicle.into()),
                                ("location", LOCATIONS[*loc].into()),
                                ("delay", (*delay as f64).into()),
                                ("hour", 8i64.into()),
                                ("day", DAYS[*day].into()),
                            ],
                        )
                        .unwrap();
                    eng.send_event(ev).unwrap();
                }
            }
            JoinStep::Threshold { loc, day, attr, dt_ms } => {
                now += dt_ms;
                for (eng, _) in engines.iter_mut() {
                    let ev = eng
                        .make_event(
                            "thresholdLocation",
                            now,
                            &[
                                ("location", LOCATIONS[*loc].into()),
                                ("hour", 8i64.into()),
                                ("day", DAYS[*day].into()),
                                ("attribute", (*attr as f64).into()),
                            ],
                        )
                        .unwrap();
                    eng.send_event(ev).unwrap();
                }
            }
            JoinStep::Advance { jump_ms } => {
                now += jump_ms;
                for (eng, _) in engines.iter_mut() {
                    eng.advance_time(now);
                }
            }
        }
    }
    let (_, shared_sinks) = &engines[0];
    for (mode, (_, sinks)) in [(1usize, &engines[1]), (2, &engines[2])] {
        let name = ["shared", "unshared", "rescan"][mode];
        for (i, (a, b)) in shared_sinks.iter().zip(sinks.iter()).enumerate() {
            assert_eq!(
                *a.lock(),
                *b.lock(),
                "rule {i} ({:?}) diverged between shared and {name}",
                rules[i]
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn shared_matches_unshared_and_rescan(
        rules in proptest::collection::vec(join_rule_strategy(), 1..5),
        steps in proptest::collection::vec(join_step_strategy(), 0..60),
    ) {
        run_join_script(&rules, &steps);
    }
}

#[test]
fn overlapping_and_disjoint_rules_agree_across_modes() {
    // Two rules share (view, group) exactly, one overlaps on the group key
    // only, one is fully disjoint — a fixed regression script on top of
    // the randomized property.
    let rules = [
        JoinRule { view: 1, group: 0, sel: 0, having: 1 },
        JoinRule { view: 1, group: 0, sel: 2, having: 0 },
        JoinRule { view: 2, group: 0, sel: 1, having: 2 },
        JoinRule { view: 4, group: 1, sel: 3, having: 1 },
    ];
    let steps = [
        JoinStep::Threshold { loc: 0, day: 0, attr: 3, dt_ms: 5 },
        JoinStep::Bus { loc: 0, day: 0, delay: 7, dt_ms: 5 },
        JoinStep::Bus { loc: 0, day: 0, delay: 2, dt_ms: 5 },
        JoinStep::Threshold { loc: 0, day: 0, attr: 9, dt_ms: 5 },
        JoinStep::Bus { loc: 1, day: 1, delay: 5, dt_ms: 5 },
        JoinStep::Bus { loc: 0, day: 0, delay: 11, dt_ms: 5 },
        JoinStep::Advance { jump_ms: 5_000 },
        JoinStep::Bus { loc: 0, day: 0, delay: 4, dt_ms: 5 },
    ];
    run_join_script(&rules, &steps);
}

#[test]
fn empty_stream_produces_nothing_on_both_paths() {
    run_script("win:length(4)", &[]);
}

#[test]
fn all_evicted_time_window_matches() {
    // Fill a time window, drain it entirely via advance_time, refill: the
    // incremental state must come back from empty exactly like a rescan.
    let steps = [
        Step::Event { loc: 0, delay: 5, dt_ms: 10 },
        Step::Event { loc: 1, delay: 9, dt_ms: 10 },
        Step::Advance { jump_ms: 60_000 },
        Step::Event { loc: 0, delay: 3, dt_ms: 10 },
        Step::Event { loc: 0, delay: 11, dt_ms: 10 },
    ];
    run_script("win:time(2)", &steps);
}

#[test]
fn extremum_eviction_repairs_min_max() {
    // The max (11) slides out of a length-3 window while smaller values
    // survive — the incremental path must lazily rebuild the extremum.
    let steps = [
        Step::Event { loc: 0, delay: 11, dt_ms: 1 },
        Step::Event { loc: 0, delay: 2, dt_ms: 1 },
        Step::Event { loc: 0, delay: 7, dt_ms: 1 },
        Step::Event { loc: 0, delay: 3, dt_ms: 1 }, // evicts 11
        Step::Event { loc: 0, delay: 4, dt_ms: 1 }, // evicts 2 (the min)
    ];
    run_script("win:length(3)", &steps);
}
