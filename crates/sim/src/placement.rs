//! Engine placement: one worker per node, executors dealt round-robin —
//! the paper's scheduling policy ("we allocate the executors into
//! different worker processors to make sure that each cluster node will be
//! assigned with the same number of Esper engines", Section 3.2).

/// Node index for each of `engines` engines over `nodes` nodes.
pub fn round_robin_nodes(engines: usize, nodes: usize) -> Vec<usize> {
    (0..engines).map(|e| e % nodes.max(1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spreads_evenly() {
        assert_eq!(round_robin_nodes(6, 3), vec![0, 1, 2, 0, 1, 2]);
        let p = round_robin_nodes(7, 3);
        let mut counts = [0usize; 3];
        for n in p {
            counts[n] += 1;
        }
        assert_eq!(counts.iter().max().unwrap() - counts.iter().min().unwrap(), 1);
    }

    #[test]
    fn zero_nodes_degrades_to_one() {
        assert_eq!(round_robin_nodes(3, 0), vec![0, 0, 0]);
    }
}
