//! Deterministic cluster simulator for the scale experiments
//! (Figures 11–17).
//!
//! The paper's evaluation ran on 3–7 single-core VMs. We cannot rent that
//! testbed, so the *shape* experiments run on a fluid-flow simulation of
//! the same mechanisms:
//!
//! * every Esper engine is a server with a per-tuple **service time**
//!   taken from the latency estimation model (calibrated against the real
//!   CEP engine, Section 4.1.4);
//! * engines are placed on **nodes** round-robin (one worker per node,
//!   the paper's scheduling policy); the engines of a node share its
//!   cores by **processor sharing**, so co-locating more engine threads
//!   than cores stretches everyone's service — Figure 16's latency
//!   explosion;
//! * each engine receives tuples at its **input rate** (determined by the
//!   partitioning/allocation policy under test: balanced share, full
//!   stream for *all grouping*, etc.) into a bounded queue; the bound
//!   models the DSPS's backpressure.
//!
//! Time advances in fixed steps; per step each node's core budget is
//! spread over its backlogged engines, queues drain accordingly, and
//! waiting time accumulates by Little's law. The simulation is exactly
//! reproducible: no randomness anywhere.
//!
//! The fluid model covers capacity, not failure. The [`chaos`] module
//! covers the other half: declarative, seeded fault scenarios
//! ([`ChaosSpec`]) that configure the *real* threaded runtime in
//! `tms-dsps` — probabilistic panics, message drops and added latency —
//! together with the at-least-once recovery budget that must absorb them.

// `!(x > 0.0)` is used deliberately in validations: unlike `x <= 0.0`
// it also rejects NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod chaos;
pub mod hotspot;
pub mod placement;
pub mod scenario;

pub use chaos::{BatchSpec, ChaosSpec, KappaSpec, LineageSpec, MonitorSpec, ScaleoutSpec};
pub use hotspot::HotspotSpec;
pub use placement::round_robin_nodes;
pub use scenario::{PartitioningApproach, ScenarioBuilder};

use serde::{Deserialize, Serialize};

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of cluster nodes (VMs).
    pub nodes: usize,
    /// CPU cores per node (the paper's VMs have 1).
    pub cores_per_node: usize,
    /// Simulated duration in seconds (the paper samples 40 s windows).
    pub duration_s: f64,
    /// Integration step in seconds.
    pub step_s: f64,
    /// Queue bound per engine, tuples (backpressure model).
    pub queue_cap: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            nodes: 7,
            cores_per_node: 1,
            duration_s: 40.0,
            step_s: 0.05,
            queue_cap: 10_000.0,
        }
    }
}

/// One engine to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineSpec {
    /// Per-tuple service time in milliseconds (from the latency model).
    pub service_ms: f64,
    /// Offered input rate, tuples per second.
    pub input_rate: f64,
}

/// Per-engine simulation outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineReport {
    /// Node hosting the engine.
    pub node: usize,
    /// Tuples processed per second (steady-state average).
    pub throughput: f64,
    /// Average per-tuple latency in milliseconds (queueing + service,
    /// including the processor-sharing stretch).
    pub avg_latency_ms: f64,
    /// Tuples rejected by the full queue, per second.
    pub dropped: f64,
    /// Utilization of the engine's share of its node, `0..=1`.
    pub utilization: f64,
}

/// Whole-run outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Per-engine outcomes, in input order.
    pub engines: Vec<EngineReport>,
    /// Total tuples processed per second across engines.
    pub total_throughput: f64,
    /// Throughput-weighted average latency (ms).
    pub avg_latency_ms: f64,
    /// Tuples processed in one 40-second monitor window — the unit of
    /// Figures 11, 13, 15 and 17.
    pub window_throughput: f64,
}

/// Errors from the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The simulator configuration was impossible.
    InvalidConfig(String),
    /// An engine spec was impossible.
    InvalidEngine {
        /// Index of the offending engine.
        index: usize,
        /// What went wrong.
        reason: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidConfig(r) => write!(f, "invalid simulator config: {r}"),
            SimError::InvalidEngine { index, reason } => {
                write!(f, "invalid engine {index}: {reason}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Runs the fluid simulation.
pub fn simulate(engines: &[EngineSpec], config: SimConfig) -> Result<SimReport, SimError> {
    if config.nodes == 0 || config.cores_per_node == 0 {
        return Err(SimError::InvalidConfig("nodes and cores_per_node must be ≥ 1".into()));
    }
    if !(config.step_s > 0.0) || !(config.duration_s > config.step_s) {
        return Err(SimError::InvalidConfig(format!(
            "duration {}s / step {}s is not a valid horizon",
            config.duration_s, config.step_s
        )));
    }
    if !(config.queue_cap > 0.0) {
        return Err(SimError::InvalidConfig("queue_cap must be positive".into()));
    }
    if engines.is_empty() {
        return Err(SimError::InvalidConfig("no engines to simulate".into()));
    }
    for (i, e) in engines.iter().enumerate() {
        if !(e.service_ms > 0.0) || !e.service_ms.is_finite() {
            return Err(SimError::InvalidEngine {
                index: i,
                reason: format!("service_ms must be positive, got {}", e.service_ms),
            });
        }
        if !(e.input_rate >= 0.0) || !e.input_rate.is_finite() {
            return Err(SimError::InvalidEngine {
                index: i,
                reason: format!("input_rate must be non-negative, got {}", e.input_rate),
            });
        }
    }

    let placement = placement::round_robin_nodes(engines.len(), config.nodes);

    // Fluid state.
    let n = engines.len();
    let mut queue = vec![0.0f64; n];
    let mut completed = vec![0.0f64; n];
    let mut dropped = vec![0.0f64; n];
    // Σ queue·dt, for Little's-law waiting time.
    let mut queue_time = vec![0.0f64; n];
    let mut busy_time = vec![0.0f64; n];

    let steps = (config.duration_s / config.step_s).round() as usize;
    let dt = config.step_s;
    for _ in 0..steps {
        // Arrivals.
        for (i, e) in engines.iter().enumerate() {
            let arriving = e.input_rate * dt;
            let room = config.queue_cap - queue[i];
            let accepted = arriving.min(room.max(0.0));
            queue[i] += accepted;
            dropped[i] += arriving - accepted;
        }
        // Service: each node's core budget is processor-shared over its
        // backlogged engines.
        for node in 0..config.nodes {
            let members: Vec<usize> =
                (0..n).filter(|&i| placement[i] == node).collect();
            let mut backlogged: Vec<usize> =
                members.iter().copied().filter(|&i| queue[i] > 0.0).collect();
            let mut budget = config.cores_per_node as f64 * dt; // core-seconds
            // Water-filling: engines that need less than an equal share
            // release the remainder to the others.
            while !backlogged.is_empty() && budget > 1e-12 {
                let share = budget / backlogged.len() as f64;
                let mut next_round = Vec::new();
                let mut spent = 0.0;
                for &i in &backlogged {
                    let service_s = engines[i].service_ms / 1000.0;
                    let need = queue[i] * service_s;
                    if need <= share {
                        completed[i] += queue[i];
                        busy_time[i] += need;
                        spent += need;
                        queue[i] = 0.0;
                    } else {
                        let done = share / service_s;
                        queue[i] -= done;
                        completed[i] += done;
                        busy_time[i] += share;
                        spent += share;
                        next_round.push(i);
                    }
                }
                budget -= spent;
                // Only engines still backlogged compete for the leftover;
                // if nobody finished early, the budget is exhausted.
                if next_round.len() == backlogged.len() {
                    break;
                }
                backlogged = next_round;
            }
        }
        for i in 0..n {
            queue_time[i] += queue[i] * dt;
        }
    }

    let mut reports = Vec::with_capacity(n);
    let mut total_tp = 0.0;
    let mut weighted_lat = 0.0;
    for i in 0..n {
        let throughput = completed[i] / config.duration_s;
        // Little's law: average waiting = (Σ queue·dt) / completed; plus
        // the effective service time actually experienced (busy time per
        // completed tuple, which embeds the processor-sharing stretch).
        let avg_latency_ms = if completed[i] > 0.0 {
            let waiting_s = queue_time[i] / completed[i];
            let service_s = busy_time[i] / completed[i];
            (waiting_s + service_s) * 1000.0
        } else {
            0.0
        };
        let utilization = busy_time[i] / config.duration_s;
        reports.push(EngineReport {
            node: placement[i],
            throughput,
            avg_latency_ms,
            dropped: dropped[i] / config.duration_s,
            utilization,
        });
        total_tp += throughput;
        weighted_lat += avg_latency_ms * throughput;
    }
    let avg_latency_ms = if total_tp > 0.0 { weighted_lat / total_tp } else { 0.0 };
    Ok(SimReport {
        engines: reports,
        total_throughput: total_tp,
        avg_latency_ms,
        window_throughput: total_tp * 40.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(nodes: usize, cores: usize) -> SimConfig {
        SimConfig { nodes, cores_per_node: cores, ..SimConfig::default() }
    }

    #[test]
    fn underloaded_engine_matches_offered_rate() {
        // 1 ms service, 100 t/s offered on a dedicated core: ρ = 0.1.
        let r = simulate(&[EngineSpec { service_ms: 1.0, input_rate: 100.0 }], cfg(1, 1))
            .unwrap();
        assert!((r.total_throughput - 100.0).abs() < 2.0, "{}", r.total_throughput);
        assert!(r.engines[0].dropped < 1e-9);
        // Latency ≈ service (little queueing in fluid flow).
        assert!(r.avg_latency_ms < 2.0, "{}", r.avg_latency_ms);
        assert!((r.engines[0].utilization - 0.1).abs() < 0.02);
    }

    #[test]
    fn saturated_engine_caps_at_capacity() {
        // 1 ms service = 1000 t/s capacity; offered 5000 t/s.
        let r = simulate(&[EngineSpec { service_ms: 1.0, input_rate: 5000.0 }], cfg(1, 1))
            .unwrap();
        assert!((r.total_throughput - 1000.0).abs() < 20.0, "{}", r.total_throughput);
        assert!(r.engines[0].dropped > 3000.0, "backpressure drops the excess");
        // Queue fills to the cap → latency far above the service time.
        assert!(r.avg_latency_ms > 100.0, "{}", r.avg_latency_ms);
    }

    #[test]
    fn colocation_splits_node_capacity() {
        // Two engines on one single-core node, both offered 800 t/s with
        // 1 ms service: together they can only do 1000 t/s.
        let e = EngineSpec { service_ms: 1.0, input_rate: 800.0 };
        let r = simulate(&[e, e], cfg(1, 1)).unwrap();
        assert!((r.total_throughput - 1000.0).abs() < 20.0, "{}", r.total_throughput);
        // Same engines on two nodes: full 1600 t/s.
        let r2 = simulate(&[e, e], cfg(2, 1)).unwrap();
        assert!((r2.total_throughput - 1600.0).abs() < 20.0, "{}", r2.total_throughput);
        assert!(r2.avg_latency_ms < r.avg_latency_ms);
    }

    #[test]
    fn more_vms_sustain_more_engines_fig16_shape() {
        // 8 engines, each offered 400 t/s at 2 ms service (cap 500/core).
        let engines: Vec<EngineSpec> =
            (0..8).map(|_| EngineSpec { service_ms: 2.0, input_rate: 400.0 }).collect();
        let r3 = simulate(&engines, cfg(3, 1)).unwrap();
        let r5 = simulate(&engines, cfg(5, 1)).unwrap();
        let r7 = simulate(&engines, cfg(7, 1)).unwrap();
        assert!(r7.total_throughput > r5.total_throughput);
        assert!(r5.total_throughput > r3.total_throughput);
        assert!(r3.avg_latency_ms > r7.avg_latency_ms * 2.0, "3 VMs overload hard");
    }

    #[test]
    fn water_filling_gives_leftover_capacity_to_busy_engines() {
        // A light engine (10 t/s) and a heavy one (2000 t/s) share a core;
        // the heavy one should get nearly the whole core, not half.
        let r = simulate(
            &[
                EngineSpec { service_ms: 1.0, input_rate: 10.0 },
                EngineSpec { service_ms: 1.0, input_rate: 2000.0 },
            ],
            cfg(1, 1),
        )
        .unwrap();
        assert!((r.engines[0].throughput - 10.0).abs() < 1.0);
        assert!(r.engines[1].throughput > 900.0, "{}", r.engines[1].throughput);
    }

    #[test]
    fn zero_rate_engine_is_idle() {
        let r = simulate(
            &[
                EngineSpec { service_ms: 1.0, input_rate: 0.0 },
                EngineSpec { service_ms: 1.0, input_rate: 100.0 },
            ],
            cfg(1, 1),
        )
        .unwrap();
        assert_eq!(r.engines[0].throughput, 0.0);
        assert_eq!(r.engines[0].avg_latency_ms, 0.0);
        assert!((r.engines[1].throughput - 100.0).abs() < 2.0);
    }

    #[test]
    fn window_throughput_is_40s_worth() {
        let r = simulate(&[EngineSpec { service_ms: 1.0, input_rate: 100.0 }], cfg(1, 1))
            .unwrap();
        assert!((r.window_throughput - r.total_throughput * 40.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let ok = EngineSpec { service_ms: 1.0, input_rate: 1.0 };
        assert!(simulate(&[], cfg(1, 1)).is_err());
        assert!(simulate(&[ok], cfg(0, 1)).is_err());
        assert!(simulate(&[ok], cfg(1, 0)).is_err());
        assert!(simulate(
            &[EngineSpec { service_ms: 0.0, input_rate: 1.0 }],
            cfg(1, 1)
        )
        .is_err());
        assert!(simulate(
            &[EngineSpec { service_ms: 1.0, input_rate: -5.0 }],
            cfg(1, 1)
        )
        .is_err());
        let bad = SimConfig { step_s: 0.0, ..SimConfig::default() };
        assert!(simulate(&[ok], bad).is_err());
        let bad = SimConfig { queue_cap: 0.0, ..SimConfig::default() };
        assert!(simulate(&[ok], bad).is_err());
    }

    #[test]
    fn deterministic() {
        let engines: Vec<EngineSpec> =
            (0..5).map(|i| EngineSpec { service_ms: 1.0 + i as f64, input_rate: 300.0 }).collect();
        let a = simulate(&engines, cfg(3, 1)).unwrap();
        let b = simulate(&engines, cfg(3, 1)).unwrap();
        assert_eq!(a, b);
    }
}
