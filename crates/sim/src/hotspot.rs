//! Hotspot scenarios: spatially skewed load for elastic re-partitioning
//! experiments.
//!
//! The start-up optimizer balances engines against *historical* rates; a
//! hotspot scenario makes the live stream contradict that plan by
//! concentrating most traffic on a few regions. A [`HotspotSpec`] is the
//! declarative description: how much of the stream hits how many regions.
//! Like the fluid simulator, everything is deterministic — the spec maps
//! tuple indexes to region indexes arithmetically ([`HotspotSpec::pick`])
//! instead of sampling, so a hotspot run is exactly reproducible.

use serde::{Deserialize, Serialize};
use tms_core::partitioning::RegionRate;

/// A declarative hotspot scenario: `hot_share` of the traffic falls on
/// the first `hot_regions` regions; the rest spreads uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HotspotSpec {
    /// Fraction of all tuples hitting the hot regions, in `(0, 1]`.
    pub hot_share: f64,
    /// How many regions are hot (the first `hot_regions` by index).
    pub hot_regions: usize,
    /// Total stream rate, tuples/s (spread per [`Self::region_rates`]).
    pub total_rate: f64,
}

impl Default for HotspotSpec {
    fn default() -> Self {
        HotspotSpec::acceptance()
    }
}

impl HotspotSpec {
    /// The acceptance scenario: 80% of the stream on one region.
    pub fn acceptance() -> Self {
        HotspotSpec { hot_share: 0.8, hot_regions: 1, total_rate: 1000.0 }
    }

    /// Validates shares and counts.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.hot_share > 0.0) || self.hot_share > 1.0 || !self.hot_share.is_finite() {
            return Err(format!("hot_share must be in (0, 1], got {}", self.hot_share));
        }
        if self.hot_regions == 0 {
            return Err("hot_regions must be at least 1".to_string());
        }
        if !(self.total_rate > 0.0) || !self.total_rate.is_finite() {
            return Err(format!("total_rate must be positive, got {}", self.total_rate));
        }
        Ok(())
    }

    /// The skewed per-region rates over `regions` (hot regions are the
    /// first `hot_regions` entries). With fewer regions than hot slots,
    /// everything is hot and the rate spreads evenly.
    pub fn region_rates(&self, regions: &[String]) -> Vec<RegionRate> {
        let n = regions.len();
        let hot = self.hot_regions.min(n);
        let cold = n - hot;
        let hot_rate = if hot == 0 {
            0.0
        } else if cold == 0 {
            self.total_rate / hot as f64
        } else {
            self.total_rate * self.hot_share / hot as f64
        };
        let cold_rate =
            if cold == 0 { 0.0 } else { self.total_rate * (1.0 - self.hot_share) / cold as f64 };
        regions
            .iter()
            .enumerate()
            .map(|(i, region)| RegionRate {
                region: region.clone(),
                rate: if i < hot { hot_rate } else { cold_rate },
            })
            .collect()
    }

    /// Deterministically maps sequential tuple index `i` to a region
    /// index in `0..n_regions`: over any window of [`Self::RESOLUTION`]
    /// consecutive indexes, `hot_share` of them land on the hot regions
    /// (round-robin within) and the rest round-robin over the cold ones.
    /// No RNG, so generated streams replay identically.
    pub fn pick(&self, i: usize, n_regions: usize) -> usize {
        if n_regions == 0 {
            return 0;
        }
        let hot = self.hot_regions.min(n_regions);
        let cold = n_regions - hot;
        if cold == 0 {
            return i % n_regions;
        }
        let hot_slots =
            ((self.hot_share * Self::RESOLUTION as f64).round() as usize).min(Self::RESOLUTION);
        let phase = i % Self::RESOLUTION;
        if phase < hot_slots {
            i % hot
        } else {
            hot + i % cold
        }
    }

    /// Granularity of [`Self::pick`]'s index interleave.
    pub const RESOLUTION: usize = 100;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("R{i}")).collect()
    }

    #[test]
    fn acceptance_preset_validates() {
        HotspotSpec::acceptance().validate().expect("preset is valid");
        assert_eq!(HotspotSpec::default(), HotspotSpec::acceptance());
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        for spec in [
            HotspotSpec { hot_share: 0.0, ..HotspotSpec::acceptance() },
            HotspotSpec { hot_share: 1.5, ..HotspotSpec::acceptance() },
            HotspotSpec { hot_share: f64::NAN, ..HotspotSpec::acceptance() },
            HotspotSpec { hot_regions: 0, ..HotspotSpec::acceptance() },
            HotspotSpec { total_rate: 0.0, ..HotspotSpec::acceptance() },
        ] {
            assert!(spec.validate().is_err(), "{spec:?} should be rejected");
        }
    }

    #[test]
    fn region_rates_sum_to_total_and_skew() {
        let spec = HotspotSpec::acceptance();
        let rates = spec.region_rates(&names(5));
        let total: f64 = rates.iter().map(|r| r.rate).sum();
        assert!((total - spec.total_rate).abs() < 1e-9, "total {total}");
        assert!((rates[0].rate - 800.0).abs() < 1e-9, "hot region takes the share");
        for r in &rates[1..] {
            assert!((r.rate - 50.0).abs() < 1e-9, "cold regions split the rest");
        }
    }

    #[test]
    fn region_rates_with_all_hot_spread_evenly() {
        let spec = HotspotSpec { hot_regions: 8, ..HotspotSpec::acceptance() };
        let rates = spec.region_rates(&names(3));
        for r in &rates {
            assert!((r.rate - spec.total_rate / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn pick_matches_the_declared_share() {
        let spec = HotspotSpec::acceptance();
        let n = 6;
        let total = 10_000;
        let mut hot_hits = 0usize;
        for i in 0..total {
            let r = spec.pick(i, n);
            assert!(r < n);
            if r < spec.hot_regions {
                hot_hits += 1;
            }
        }
        let share = hot_hits as f64 / total as f64;
        assert!((share - spec.hot_share).abs() < 0.02, "observed hot share {share}");
    }

    #[test]
    fn pick_covers_cold_regions() {
        let spec = HotspotSpec::acceptance();
        let n = 4;
        let mut seen = vec![false; n];
        for i in 0..1000 {
            seen[spec.pick(i, n)] = true;
        }
        assert!(seen.iter().all(|&s| s), "every region receives traffic: {seen:?}");
    }

    #[test]
    fn spec_serializes_declaratively() {
        let json = serde_json::to_string(&HotspotSpec::acceptance()).expect("serializes");
        assert!(json.contains("\"hot_share\":0.8"), "{json}");
        assert!(json.contains("\"hot_regions\":1"), "{json}");
    }
}
