//! Scenario builders: translate the paper's evaluation setups into
//! [`EngineSpec`](crate::EngineSpec) lists for the simulator.
//!
//! Each builder encodes one policy under test:
//!
//! * [`PartitioningApproach`] — Figures 12/13's three tuple-routing
//!   policies: the paper's partitioning, *All Grouping* (every tuple to
//!   every engine) and *All Rules* (balanced routing but every engine
//!   holds every rule's full location set, hence every threshold);
//! * allocation comparisons (Figure 11) take per-grouping engine counts
//!   from `tms-core`'s Algorithm 2 or the round-robin baseline and build
//!   the engines of each grouping;
//! * workload mixes (Figures 14/15) are just rule sets with different
//!   window lengths run through the same machinery.

// `!(x > 0.0)` is used deliberately in validations: unlike `x <= 0.0`
// it also rejects NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

use crate::EngineSpec;
use tms_core::allocation::{Allocation, Grouping};
use tms_core::latency::{EstimationModel, RuleLoad};
use tms_core::partitioning::{partition_rule, RegionRate};
use tms_core::rules::RuleSpec;
use tms_core::CoreError;

/// Lower bound on the per-tuple cost of one standing statement (ms): no
/// rule evaluation is cheaper than the cheapest measured one, whatever an
/// extrapolated regression claims.
pub const MIN_STATEMENT_MS: f64 = 0.002;

/// Tuple-routing policies of Figures 12/13.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitioningApproach {
    /// Algorithm 1: locations partitioned by rate; each tuple goes to one
    /// engine, which holds only its own locations' thresholds.
    Proposed,
    /// Locations partitioned as in `Proposed`, but every tuple is emitted
    /// to every engine.
    AllGrouping,
    /// Tuples routed as in `Proposed`, but every engine holds every
    /// rule's full location set (and so all thresholds).
    AllRules,
}

/// Builds engine specs for the paper's scenarios.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    /// The latency estimation model (calibrated or default).
    pub model: EstimationModel,
    /// Locations of the rules' partition layer with input rates
    /// (tuples/s); their sum is the stream rate offered to each grouping.
    pub regions: Vec<RegionRate>,
    /// Threshold cells per location (hours of day × day types); the paper
    /// computes per-hour weekday/weekend statistics, so 48 by default.
    pub threshold_cells_per_location: usize,
}

impl ScenarioBuilder {
    /// A builder over `n_regions` equally loaded locations carrying
    /// `total_rate` tuples/s in aggregate.
    pub fn uniform(model: EstimationModel, n_regions: usize, total_rate: f64) -> Self {
        let rate = total_rate / n_regions.max(1) as f64;
        ScenarioBuilder {
            model,
            regions: (0..n_regions)
                .map(|i| RegionRate { region: format!("R{i}"), rate })
                .collect(),
            threshold_cells_per_location: 48,
        }
    }

    /// Total offered rate.
    pub fn total_rate(&self) -> f64 {
        self.regions.iter().map(|r| r.rate).sum()
    }

    /// Engine service time (ms/tuple) for an engine running `rules`, each
    /// joining thresholds for `locations` locations.
    fn engine_service_ms(&self, rules: &[RuleSpec], locations: usize) -> Result<f64, CoreError> {
        let t = locations * self.threshold_cells_per_location;
        let lats = rules
            .iter()
            .map(|r| self.model.rule_latency(RuleLoad { window: r.window_length, thresholds: t }))
            .collect::<Result<Vec<_>, _>>()?;
        let ms = self.model.engine_latency(&lats)?;
        // Clamp to a sane minimum: every standing statement costs at
        // least ~2 µs per tuple (the cheapest evaluation we ever measure),
        // so the calibrated fold cannot collapse to "free".
        Ok(ms.max(MIN_STATEMENT_MS * rules.len() as f64))
    }

    /// Figures 12/13: one rule set over this builder's locations, routed
    /// under the given approach to `n_engines` engines.
    pub fn partitioning(
        &self,
        approach: PartitioningApproach,
        rules: &[RuleSpec],
        n_engines: usize,
    ) -> Result<Vec<EngineSpec>, CoreError> {
        let partition = partition_rule(&self.regions, n_engines)?;
        let total = self.total_rate();
        let mut out = Vec::with_capacity(n_engines);
        for e in 0..n_engines {
            let own_locations = partition.assignments[e].len();
            let (input_rate, locations) = match approach {
                PartitioningApproach::Proposed => (partition.rates[e], own_locations),
                PartitioningApproach::AllGrouping => (total, own_locations),
                PartitioningApproach::AllRules => {
                    (partition.rates[e], self.regions.len())
                }
            };
            out.push(EngineSpec {
                service_ms: self.engine_service_ms(rules, locations.max(1))?,
                input_rate,
            });
        }
        Ok(out)
    }

    /// Figure 11 / 14 / 15: engines for a set of groupings with an
    /// explicit allocation (from Algorithm 2 or round-robin). Each
    /// grouping's regions are partitioned over its engines; each engine
    /// runs all of its grouping's rules over its share of locations.
    pub fn allocation(
        groupings: &[Grouping],
        allocation: &Allocation,
        model: &EstimationModel,
        threshold_cells_per_location: usize,
    ) -> Result<Vec<EngineSpec>, CoreError> {
        let mut out = Vec::new();
        for (g, &k) in groupings.iter().zip(&allocation.engines) {
            let partition = partition_rule(&g.regions, k)?;
            for e in 0..k {
                let locations = partition.assignments[e].len().max(1);
                let t = locations * threshold_cells_per_location;
                let lats = g
                    .rules
                    .iter()
                    .map(|r| {
                        model.rule_latency(RuleLoad { window: r.window_length, thresholds: t })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let service_ms =
                    model.engine_latency(&lats)?.max(MIN_STATEMENT_MS * g.rules.len() as f64);
                out.push(EngineSpec { service_ms, input_rate: partition.rates[e] });
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, SimConfig};
    use tms_core::rules::LocationSelector;
    use tms_traffic::Attribute;

    fn rules(windows: &[usize]) -> Vec<RuleSpec> {
        windows
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                RuleSpec::new(format!("r{i}"), Attribute::Delay, LocationSelector::QuadtreeLeaves, w)
            })
            .collect()
    }

    fn builder() -> ScenarioBuilder {
        ScenarioBuilder::uniform(EstimationModel::default_paper_shaped(), 64, 3000.0)
    }

    fn sim(nodes: usize) -> SimConfig {
        SimConfig { nodes, cores_per_node: 1, ..SimConfig::default() }
    }

    #[test]
    fn proposed_beats_all_grouping_and_all_rules() {
        let b = builder();
        let rs = rules(&[100; 10]);
        let n = 8;
        let ours = simulate(&b.partitioning(PartitioningApproach::Proposed, &rs, n).unwrap(), sim(8)).unwrap();
        let all_g = simulate(&b.partitioning(PartitioningApproach::AllGrouping, &rs, n).unwrap(), sim(8)).unwrap();
        let all_r = simulate(&b.partitioning(PartitioningApproach::AllRules, &rs, n).unwrap(), sim(8)).unwrap();
        // Figure 13's ordering: proposed sustains the most *distinct*
        // input. (All-grouping processes duplicates; its useful
        // throughput is total/n.)
        let useful_all_g = all_g.total_throughput / n as f64;
        assert!(
            ours.total_throughput >= useful_all_g,
            "ours {} vs all-grouping useful {}",
            ours.total_throughput,
            useful_all_g
        );
        assert!(
            ours.total_throughput >= all_r.total_throughput,
            "ours {} vs all-rules {}",
            ours.total_throughput,
            all_r.total_throughput
        );
        // Figure 12's ordering: ours has the lowest latency.
        assert!(ours.avg_latency_ms <= all_g.avg_latency_ms);
        assert!(ours.avg_latency_ms <= all_r.avg_latency_ms);
    }

    #[test]
    fn throughput_scales_with_engines() {
        let b = builder();
        let rs = rules(&[100; 10]);
        let t4 = simulate(&b.partitioning(PartitioningApproach::Proposed, &rs, 4).unwrap(), sim(7))
            .unwrap()
            .total_throughput;
        let t12 =
            simulate(&b.partitioning(PartitioningApproach::Proposed, &rs, 12).unwrap(), sim(7))
                .unwrap()
                .total_throughput;
        assert!(t12 >= t4, "t4 {t4} vs t12 {t12}");
    }

    #[test]
    fn heavier_windows_cost_throughput() {
        let b = builder();
        let light = rules(&[1; 10]);
        let heavy = rules(&[1000; 10]);
        let tl = simulate(&b.partitioning(PartitioningApproach::Proposed, &light, 6).unwrap(), sim(6))
            .unwrap();
        let th = simulate(&b.partitioning(PartitioningApproach::Proposed, &heavy, 6).unwrap(), sim(6))
            .unwrap();
        assert!(tl.total_throughput >= th.total_throughput);
        assert!(tl.avg_latency_ms <= th.avg_latency_ms);
    }

    #[test]
    fn allocation_scenario_builds_engines_per_grouping() {
        let model = EstimationModel::default_paper_shaped();
        let g = Grouping {
            name: "g".into(),
            layers: vec![0],
            rules: rules(&[10, 10]),
            regions: (0..8).map(|i| RegionRate { region: format!("R{i}"), rate: 100.0 }).collect(),
            thresholds: vec![100, 100],
        };
        let allocation = Allocation { engines: vec![3], scores: vec![0.0] };
        let engines =
            ScenarioBuilder::allocation(&[g], &allocation, &model, 48).unwrap();
        assert_eq!(engines.len(), 3);
        let total: f64 = engines.iter().map(|e| e.input_rate).sum();
        assert!((total - 800.0).abs() < 1e-9, "rates partition the stream");
    }
}
