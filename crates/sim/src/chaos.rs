//! Chaos scenarios: declarative fault/recovery setups for live DSPS runs.
//!
//! The fluid simulator in this crate models *capacity*; it cannot model
//! partial failure. Chaos scenarios instead drive the real threaded
//! runtime in `tms-dsps`: a [`ChaosSpec`] declares seeded fault
//! probabilities and the recovery budget, and converts into the runtime's
//! [`FaultConfig`] / [`ReliabilityConfig`] pair. Because everything is
//! seeded, a chaos experiment is as reproducible as a fluid one.

use serde::{Deserialize, Serialize};
use std::time::Duration;
use tms_dsps::runtime::{BatchConfig, ReliabilityConfig};
use tms_dsps::{FaultConfig, LineageConfig, MonitorConfig};

/// A declarative chaos scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosSpec {
    /// Probability a wrapped bolt panics before processing a tuple.
    pub panic_p: f64,
    /// Probability the transport drops a delivery in transit.
    pub drop_p: f64,
    /// Extra per-tuple latency injected into wrapped bolts, milliseconds.
    pub delay_ms: f64,
    /// RNG seed; fixed seed ⇒ reproducible fault schedule.
    pub seed: u64,
    /// Ack timeout before a tuple tree is replayed, milliseconds.
    pub ack_timeout_ms: u64,
    /// Replays per tuple before it is abandoned as failed.
    pub max_retries: u32,
    /// Supervised restarts per bolt task before the topology fails.
    pub max_task_restarts: u32,
    /// Max in-flight roots per spout task (throttle).
    pub max_pending: usize,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec::light()
    }
}

impl ChaosSpec {
    /// The acceptance scenario: 1% panics + 1% drops, generous recovery.
    pub fn light() -> Self {
        ChaosSpec {
            panic_p: 0.01,
            drop_p: 0.01,
            delay_ms: 0.0,
            seed: 0x7EA_5EED,
            ack_timeout_ms: 250,
            max_retries: 20,
            max_task_restarts: 200,
            max_pending: 256,
        }
    }

    /// A harsher scenario: 5% panics + 5% drops with added latency.
    pub fn heavy() -> Self {
        ChaosSpec {
            panic_p: 0.05,
            drop_p: 0.05,
            delay_ms: 1.0,
            seed: 0x7EA_5EED,
            ack_timeout_ms: 500,
            max_retries: 40,
            max_task_restarts: 1000,
            max_pending: 128,
        }
    }

    /// Validates probabilities and budgets.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [("panic_p", self.panic_p), ("drop_p", self.drop_p)] {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(format!("{name} must be a probability in [0, 1], got {p}"));
            }
        }
        if !(self.delay_ms >= 0.0) || !self.delay_ms.is_finite() {
            return Err(format!("delay_ms must be non-negative, got {}", self.delay_ms));
        }
        if self.ack_timeout_ms == 0 {
            return Err("ack_timeout_ms must be at least 1".into());
        }
        if self.max_pending == 0 {
            return Err("max_pending must be at least 1".into());
        }
        Ok(())
    }

    /// The fault half: feed to `RuntimeConfig::fault` and
    /// [`tms_dsps::chaos_wrap`].
    pub fn fault_config(&self) -> FaultConfig {
        FaultConfig {
            panic_p: self.panic_p,
            drop_p: self.drop_p,
            delay: (self.delay_ms > 0.0)
                .then(|| Duration::from_secs_f64(self.delay_ms / 1000.0)),
            seed: self.seed,
        }
    }

    /// The recovery half: feed to `RuntimeConfig::reliability`.
    pub fn reliability_config(&self) -> ReliabilityConfig {
        ReliabilityConfig {
            ack_timeout: Duration::from_millis(self.ack_timeout_ms),
            max_retries: self.max_retries,
            backoff: 1.5,
            max_pending: self.max_pending,
            max_task_restarts: self.max_task_restarts,
        }
    }
}

/// A declarative monitor/tracing scenario: the serializable face of the
/// runtime's [`MonitorConfig`], so an experiment file can pin the sampling
/// window and opt into end-to-end tracing the same way [`ChaosSpec`] pins
/// the fault schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorSpec {
    /// Sampling window length, milliseconds (the paper uses 40 000).
    pub window_ms: u64,
    /// Enable end-to-end latency histograms and queue-depth gauges.
    pub tracing: bool,
    /// Sampled windows retained per run before the oldest are evicted.
    pub retention: usize,
    /// Enable per-rule CEP profiling (eval-time histograms, path
    /// counters, threshold-staleness gauges in every sampled window).
    pub profiling: bool,
    /// Expose a Prometheus/JSON scrape endpoint on this loopback port
    /// (`0` = ephemeral); `None` binds nothing.
    pub expose: Option<u16>,
    /// Sampled tuple-lineage tracing; `None` keeps lineage off (the
    /// default, and absent from older experiment files).
    pub lineage: Option<LineageSpec>,
}

impl Default for MonitorSpec {
    fn default() -> Self {
        let mc = MonitorConfig::default();
        MonitorSpec {
            window_ms: mc.window.as_millis() as u64,
            tracing: mc.tracing,
            retention: mc.retention,
            profiling: mc.profiling,
            expose: mc.expose,
            lineage: None,
        }
    }
}

impl MonitorSpec {
    /// A tracing-enabled spec with the given sampling window.
    pub fn traced(window_ms: u64) -> Self {
        MonitorSpec { window_ms, tracing: true, ..MonitorSpec::default() }
    }

    /// A tracing + profiling spec with the given sampling window.
    pub fn profiled(window_ms: u64) -> Self {
        MonitorSpec { window_ms, tracing: true, profiling: true, ..MonitorSpec::default() }
    }

    /// A tracing + sample-everything-lineage spec: what the acceptance
    /// tests run to assert trace completeness under adversity.
    pub fn lineage_full(window_ms: u64) -> Self {
        MonitorSpec {
            window_ms,
            tracing: true,
            lineage: Some(LineageSpec::full()),
            ..MonitorSpec::default()
        }
    }

    /// Validates the window, retention budget and lineage knobs.
    pub fn validate(&self) -> Result<(), String> {
        if self.window_ms == 0 {
            return Err("window_ms must be at least 1".into());
        }
        if self.retention == 0 {
            return Err("retention must be at least 1".into());
        }
        if let Some(l) = &self.lineage {
            l.validate()?;
        }
        Ok(())
    }

    /// Converts into the runtime's config: feed to `RuntimeConfig::monitor`.
    pub fn monitor_config(&self) -> MonitorConfig {
        MonitorConfig {
            window: Duration::from_millis(self.window_ms),
            tracing: self.tracing,
            retention: self.retention,
            profiling: self.profiling,
            expose: self.expose,
            lineage: self.lineage.as_ref().map(|l| l.lineage_config()),
        }
    }
}

/// A declarative lineage-tracing scenario: the serializable face of the
/// runtime's [`LineageConfig`], so an experiment file can pin the sampling
/// fraction the same way [`MonitorSpec`] pins the window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LineageSpec {
    /// Fraction of tuple trees to sample, `0.0..=1.0`.
    pub sample_rate: f64,
    /// Retain drained spans for export (`/trace`, `take_traces`); `false`
    /// folds them into the critical-path report only.
    pub export: bool,
    /// Per-task span-ring capacity (rounded up to a power of two).
    pub ring_capacity: usize,
}

impl Default for LineageSpec {
    fn default() -> Self {
        let lc = LineageConfig::default();
        LineageSpec {
            sample_rate: lc.sample_rate,
            export: lc.export,
            ring_capacity: lc.ring_capacity,
        }
    }
}

impl LineageSpec {
    /// Sample everything — the acceptance/completeness preset.
    pub fn full() -> Self {
        LineageSpec { sample_rate: 1.0, ..LineageSpec::default() }
    }

    /// Validates the sampling fraction and ring capacity.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.sample_rate) || !self.sample_rate.is_finite() {
            return Err(format!(
                "sample_rate must be a fraction in [0, 1], got {}",
                self.sample_rate
            ));
        }
        if self.ring_capacity == 0 {
            return Err("ring_capacity must be at least 1".into());
        }
        Ok(())
    }

    /// Converts into the runtime's config: feed to `MonitorConfig::lineage`.
    pub fn lineage_config(&self) -> LineageConfig {
        LineageConfig {
            sample_rate: self.sample_rate,
            export: self.export,
            ring_capacity: self.ring_capacity,
        }
    }
}

/// A declarative data-plane batching scenario: the serializable face of
/// the runtime's [`BatchConfig`], so an experiment file can pin the batch
/// size and linger the same way [`ChaosSpec`] pins the fault schedule and
/// [`MonitorSpec`] pins the sampling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchSpec {
    /// Tuples buffered per (route, task) edge before a size flush.
    pub max_batch: usize,
    /// Longest a partial batch may linger before a deadline flush,
    /// milliseconds.
    pub max_linger_ms: u64,
}

impl Default for BatchSpec {
    fn default() -> Self {
        let bc = BatchConfig::default();
        BatchSpec {
            max_batch: bc.max_batch,
            max_linger_ms: bc.max_linger.as_millis() as u64,
        }
    }
}

impl BatchSpec {
    /// A spec with the given batch size and the default linger.
    pub fn of(max_batch: usize) -> Self {
        BatchSpec { max_batch, ..BatchSpec::default() }
    }

    /// Validates the batch size and linger.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_batch == 0 {
            return Err("max_batch must be at least 1".into());
        }
        if self.max_linger_ms == 0 {
            return Err("max_linger_ms must be at least 1".into());
        }
        Ok(())
    }

    /// Converts into the runtime's config: feed to `RuntimeConfig::batch`.
    pub fn batch_config(&self) -> BatchConfig {
        BatchConfig {
            max_batch: self.max_batch,
            max_linger: Duration::from_millis(self.max_linger_ms),
        }
    }
}

/// A declarative kappa scenario: the serializable face of the in-stream
/// statistics branch ([`tms_core::KappaConfig`]) and the engines' durable
/// state ([`tms_dsps::DurabilityConfig`]), so an experiment file can pin
/// the refresh cadence and snapshot policy the same way [`ChaosSpec`]
/// pins the fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KappaSpec {
    /// Samples the StatsBolt folds in between republications.
    pub refresh_every: u64,
    /// Cells thinner than this stay unpublished (the offline bootstrap
    /// value, if any, keeps serving).
    pub min_samples: u64,
    /// Durable-state root directory; `None` runs the engines in-memory.
    pub durability_dir: Option<String>,
    /// Changelog records between runtime snapshots (replay bound).
    pub snapshot_every: u64,
    /// Fsync snapshot data (appends are CRC-framed either way).
    pub fsync: bool,
}

impl Default for KappaSpec {
    fn default() -> Self {
        let kc = tms_core::kappa::KappaConfig::default();
        KappaSpec {
            refresh_every: kc.refresh_every,
            min_samples: kc.min_samples,
            durability_dir: None,
            snapshot_every: 1024,
            fsync: false,
        }
    }
}

impl KappaSpec {
    /// An aggressive-refresh spec for staleness experiments.
    pub fn fast_refresh(refresh_every: u64) -> Self {
        KappaSpec { refresh_every, ..KappaSpec::default() }
    }

    /// A spec persisting engine state under `dir`.
    pub fn durable(dir: impl Into<String>) -> Self {
        KappaSpec { durability_dir: Some(dir.into()), ..KappaSpec::default() }
    }

    /// Validates the refresh cadence and snapshot policy.
    pub fn validate(&self) -> Result<(), String> {
        if self.refresh_every == 0 {
            return Err("refresh_every must be at least 1".into());
        }
        if let Some(dir) = &self.durability_dir {
            if dir.is_empty() {
                return Err("durability_dir must not be empty when set".into());
            }
            if self.snapshot_every == 0 {
                return Err("snapshot_every must be at least 1".into());
            }
        }
        Ok(())
    }

    /// The in-stream half: feed to `SystemConfig::kappa`.
    pub fn kappa_config(&self) -> tms_core::kappa::KappaConfig {
        tms_core::kappa::KappaConfig {
            refresh_every: self.refresh_every,
            min_samples: self.min_samples,
        }
    }

    /// The durable half: feed to `SystemConfig::durability` /
    /// `RuntimeConfig::durability`. `None` when the spec is in-memory.
    pub fn durability_config(&self) -> Option<tms_dsps::DurabilityConfig> {
        self.durability_dir.as_ref().map(|dir| tms_dsps::DurabilityConfig {
            dir: dir.into(),
            snapshot_every: self.snapshot_every,
            fsync: self.fsync,
        })
    }
}

/// A declarative multi-process scale-out scenario: the serializable face
/// of the worker-process split (`SystemConfig::workers` plus the cluster
/// shape [`tms_dsps::DistributedCluster`] spawns against), so an
/// experiment file can pin the process count the same way [`ChaosSpec`]
/// pins the fault schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScaleoutSpec {
    /// Worker processes the topology spans (1 = stay in-process).
    pub workers: usize,
    /// Cluster nodes the scheduler models.
    pub nodes: usize,
    /// Worker slots per node.
    pub slots_per_node: usize,
}

impl Default for ScaleoutSpec {
    fn default() -> Self {
        ScaleoutSpec::of(1)
    }
}

impl ScaleoutSpec {
    /// A spec spanning `workers` processes, one slot per worker spread
    /// over min(workers, 4) nodes — the `experiments -- scaleout` shape.
    pub fn of(workers: usize) -> Self {
        let workers = workers.max(1);
        let nodes = workers.min(4);
        ScaleoutSpec { workers, nodes, slots_per_node: workers.div_ceil(nodes) }
    }

    /// Validates the process count against the cluster shape.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("workers must be at least 1".into());
        }
        if self.nodes == 0 || self.slots_per_node == 0 {
            return Err("nodes and slots_per_node must be at least 1".into());
        }
        if self.workers > self.nodes * self.slots_per_node {
            return Err(format!(
                "{} workers exceed the {} available slots",
                self.workers,
                self.nodes * self.slots_per_node
            ));
        }
        Ok(())
    }

    /// The cluster shape: feed to `SystemConfig::cluster` or
    /// [`tms_dsps::DistributedCluster::new`].
    pub fn cluster_spec(&self) -> tms_dsps::scheduler::ClusterSpec {
        tms_dsps::scheduler::ClusterSpec {
            nodes: self.nodes,
            slots_per_node: self.slots_per_node,
            cores_per_node: 1,
        }
    }

    /// The scheduler's worker override: feed to `SystemConfig::workers` /
    /// `RuntimeConfig::workers`. `None` for a single-process run so the
    /// in-process default path stays untouched.
    pub fn workers_config(&self) -> Option<usize> {
        (self.workers > 1).then_some(self.workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_and_convert() {
        for spec in [ChaosSpec::light(), ChaosSpec::heavy(), ChaosSpec::default()] {
            spec.validate().unwrap();
            let f = spec.fault_config();
            assert_eq!(f.panic_p, spec.panic_p);
            assert_eq!(f.drop_p, spec.drop_p);
            assert_eq!(f.seed, spec.seed);
            let r = spec.reliability_config();
            assert_eq!(r.ack_timeout, Duration::from_millis(spec.ack_timeout_ms));
            assert_eq!(r.max_task_restarts, spec.max_task_restarts);
        }
        // Light injects no latency; heavy injects 1 ms.
        assert_eq!(ChaosSpec::light().fault_config().delay, None);
        assert_eq!(
            ChaosSpec::heavy().fault_config().delay,
            Some(Duration::from_millis(1))
        );
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut s = ChaosSpec::light();
        s.panic_p = 1.5;
        assert!(s.validate().is_err());
        let mut s = ChaosSpec::light();
        s.drop_p = -0.1;
        assert!(s.validate().is_err());
        let mut s = ChaosSpec::light();
        s.delay_ms = f64::NAN;
        assert!(s.validate().is_err());
        let mut s = ChaosSpec::light();
        s.ack_timeout_ms = 0;
        assert!(s.validate().is_err());
        let mut s = ChaosSpec::light();
        s.max_pending = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn monitor_specs_default_match_the_runtime_and_convert() {
        let spec = MonitorSpec::default();
        spec.validate().unwrap();
        assert_eq!(spec.monitor_config(), MonitorConfig::default());
        assert!(!spec.tracing, "tracing stays opt-in");

        let traced = MonitorSpec::traced(500);
        traced.validate().unwrap();
        let mc = traced.monitor_config();
        assert_eq!(mc.window, Duration::from_millis(500));
        assert!(mc.tracing);
        assert_eq!(mc.retention, MonitorConfig::default().retention);
        assert!(!mc.profiling, "profiling stays opt-in under plain tracing");
        assert_eq!(mc.expose, None, "the scrape endpoint stays opt-in");

        let profiled = MonitorSpec::profiled(500);
        profiled.validate().unwrap();
        let mc = profiled.monitor_config();
        assert!(mc.tracing && mc.profiling);
        assert_eq!(mc.expose, None);

        let mut bad = MonitorSpec::default();
        bad.window_ms = 0;
        assert!(bad.validate().is_err());
        let mut bad = MonitorSpec::default();
        bad.retention = 0;
        assert!(bad.validate().is_err());

        let json = serde_json::to_string(&traced).unwrap();
        assert!(json.contains("\"window_ms\":500"), "{json}");
        assert!(json.contains("\"tracing\":true"), "{json}");
    }

    #[test]
    fn lineage_specs_default_match_the_runtime_and_convert() {
        let spec = LineageSpec::default();
        spec.validate().unwrap();
        assert_eq!(spec.lineage_config(), LineageConfig::default());

        let full = LineageSpec::full();
        full.validate().unwrap();
        assert_eq!(full.lineage_config(), LineageConfig::full());

        let traced = MonitorSpec::lineage_full(500);
        traced.validate().unwrap();
        let mc = traced.monitor_config();
        assert!(mc.tracing);
        assert_eq!(mc.lineage, Some(LineageConfig::full()));
        assert_eq!(
            MonitorSpec::default().monitor_config().lineage,
            None,
            "lineage stays opt-in"
        );

        let mut bad = LineageSpec::default();
        bad.sample_rate = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = LineageSpec::default();
        bad.sample_rate = f64::NAN;
        assert!(bad.validate().is_err());
        let mut bad = LineageSpec::default();
        bad.ring_capacity = 0;
        assert!(bad.validate().is_err());
        let mut bad = MonitorSpec::lineage_full(500);
        bad.lineage.as_mut().unwrap().sample_rate = -0.1;
        assert!(bad.validate().is_err(), "monitor spec validates nested lineage");

        let json = serde_json::to_string(&traced).unwrap();
        assert!(json.contains("\"sample_rate\":1"), "{json}");
        assert!(json.contains("\"ring_capacity\":4096"), "{json}");
    }

    #[test]
    fn batch_specs_default_match_the_runtime_and_convert() {
        let spec = BatchSpec::default();
        spec.validate().unwrap();
        assert_eq!(spec.batch_config(), BatchConfig::default());

        let sized = BatchSpec::of(32);
        sized.validate().unwrap();
        let bc = sized.batch_config();
        assert_eq!(bc.max_batch, 32);
        assert_eq!(bc.max_linger, BatchConfig::default().max_linger);

        let mut bad = BatchSpec::default();
        bad.max_batch = 0;
        assert!(bad.validate().is_err());
        let mut bad = BatchSpec::default();
        bad.max_linger_ms = 0;
        assert!(bad.validate().is_err());

        let json = serde_json::to_string(&BatchSpec { max_batch: 64, max_linger_ms: 2 }).unwrap();
        assert!(json.contains("\"max_batch\":64"), "{json}");
        assert!(json.contains("\"max_linger_ms\":2"), "{json}");
    }

    #[test]
    fn kappa_specs_default_match_the_runtime_and_convert() {
        let spec = KappaSpec::default();
        spec.validate().unwrap();
        assert_eq!(spec.kappa_config(), tms_core::kappa::KappaConfig::default());
        assert_eq!(spec.durability_config(), None, "durability stays opt-in");

        let fast = KappaSpec::fast_refresh(64);
        fast.validate().unwrap();
        assert_eq!(fast.kappa_config().refresh_every, 64);
        assert_eq!(
            fast.kappa_config().min_samples,
            tms_core::kappa::KappaConfig::default().min_samples
        );

        let durable = KappaSpec::durable("/tmp/tms-state");
        durable.validate().unwrap();
        let dc = durable.durability_config().expect("durable spec converts");
        assert_eq!(dc.dir, std::path::PathBuf::from("/tmp/tms-state"));
        assert_eq!(dc.snapshot_every, 1024);
        assert!(!dc.fsync, "fsync stays opt-in");

        let mut bad = KappaSpec::default();
        bad.refresh_every = 0;
        assert!(bad.validate().is_err());
        let mut bad = KappaSpec::durable("");
        assert!(bad.validate().is_err());
        bad = KappaSpec::durable("/tmp/x");
        bad.snapshot_every = 0;
        assert!(bad.validate().is_err());

        let json = serde_json::to_string(&durable).unwrap();
        for field in [
            "\"refresh_every\":",
            "\"min_samples\":",
            "\"durability_dir\":\"/tmp/tms-state\"",
            "\"snapshot_every\":1024",
            "\"fsync\":false",
        ] {
            assert!(json.contains(field), "{field} missing from {json}");
        }
    }

    #[test]
    fn scaleout_specs_validate_and_convert() {
        let single = ScaleoutSpec::default();
        single.validate().unwrap();
        assert_eq!(single.workers, 1);
        assert_eq!(single.workers_config(), None, "1 worker keeps the in-process default");

        let four = ScaleoutSpec::of(4);
        four.validate().unwrap();
        assert_eq!(four.workers_config(), Some(4));
        let cs = four.cluster_spec();
        assert!(cs.nodes * cs.slots_per_node >= 4, "spec fits its own cluster");
        assert_eq!(cs.cores_per_node, 1);

        let mut bad = ScaleoutSpec::of(2);
        bad.workers = 0;
        assert!(bad.validate().is_err());
        let mut bad = ScaleoutSpec::of(2);
        bad.nodes = 0;
        assert!(bad.validate().is_err());
        let mut bad = ScaleoutSpec::of(2);
        bad.workers = 99;
        assert!(bad.validate().is_err(), "workers must fit the slots");

        let json = serde_json::to_string(&four).unwrap();
        assert!(json.contains("\"workers\":4"), "{json}");
    }

    #[test]
    fn specs_serialize_with_every_knob_visible() {
        let spec = ChaosSpec::heavy();
        let json = serde_json::to_string(&spec).unwrap();
        for field in [
            "\"panic_p\":0.05",
            "\"drop_p\":0.05",
            "\"delay_ms\":1",
            "\"ack_timeout_ms\":500",
            "\"max_retries\":40",
            "\"max_task_restarts\":1000",
            "\"max_pending\":128",
        ] {
            assert!(json.contains(field), "{field} missing from {json}");
        }
    }
}
