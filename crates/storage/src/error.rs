//! Error types for the storage medium.

use std::fmt;

/// Errors produced by the storage medium.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// No table with that name exists.
    TableNotFound(String),
    /// A table with that name already exists.
    TableExists(String),
    /// A row did not match the table schema.
    SchemaMismatch {
        /// The table.
        table: String,
        /// What went wrong.
        reason: String,
    },
    /// A column name was not found in the schema.
    ColumnNotFound {
        /// The table.
        table: String,
        /// The missing column.
        column: String,
    },
    /// A value had the wrong type for the requested operation.
    TypeError {
        /// The expected type.
        expected: &'static str,
        /// The value actually found.
        got: String,
    },
    /// CSV text could not be parsed.
    CsvParse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// An IO error during persistence (stringified: io::Error is not Clone).
    Io(String),
    /// A schema was declared with no columns or duplicate column names.
    InvalidSchema {
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TableNotFound(t) => write!(f, "table not found: {t}"),
            StorageError::TableExists(t) => write!(f, "table already exists: {t}"),
            StorageError::SchemaMismatch { table, reason } => {
                write!(f, "schema mismatch for table {table}: {reason}")
            }
            StorageError::ColumnNotFound { table, column } => {
                write!(f, "column {column} not found in table {table}")
            }
            StorageError::TypeError { expected, got } => {
                write!(f, "type error: expected {expected}, got {got}")
            }
            StorageError::CsvParse { line, reason } => {
                write!(f, "CSV parse error at line {line}: {reason}")
            }
            StorageError::Io(e) => write!(f, "io error: {e}"),
            StorageError::InvalidSchema { reason } => write!(f, "invalid schema: {reason}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}
