//! A latency-charging wrapper around [`TableStore`].
//!
//! The paper's storage medium is a MySQL *server*: every query pays a
//! client↔server round trip. That round trip is exactly what makes the
//! *Join with Database* threshold-retrieval method an order of magnitude
//! slower than the *new Esper stream* method in Figure 10. Our embedded
//! store has no network, so this wrapper charges a configurable per-query
//! latency (busy-wait, so the cost lands on the calling executor thread the
//! same way a synchronous JDBC call would) and counts the queries issued.

use crate::error::StorageError;
use crate::store::TableStore;
use crate::table::Table;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A remote-database facade over a [`TableStore`].
#[derive(Debug, Clone)]
pub struct RemoteDb {
    store: TableStore,
    round_trip: Duration,
    queries: Arc<AtomicU64>,
}

impl RemoteDb {
    /// Wraps `store`, charging `round_trip` for every query.
    pub fn new(store: TableStore, round_trip: Duration) -> Self {
        RemoteDb { store, round_trip, queries: Arc::new(AtomicU64::new(0)) }
    }

    /// The configured round-trip latency.
    pub fn round_trip(&self) -> Duration {
        self.round_trip
    }

    /// Number of queries issued so far.
    pub fn query_count(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Shared access to the underlying store, *without* paying the round
    /// trip. Use for administrative work (table creation, snapshots).
    pub fn local(&self) -> &TableStore {
        &self.store
    }

    /// Executes one query against a table, charging the round trip.
    pub fn query<R>(&self, table: &str, f: impl FnOnce(&Table) -> R) -> Result<R, StorageError> {
        self.charge();
        self.store.with_table(table, f)
    }

    /// Executes one write against a table, charging the round trip.
    pub fn execute<R>(
        &self,
        table: &str,
        f: impl FnOnce(&mut Table) -> R,
    ) -> Result<R, StorageError> {
        self.charge();
        self.store.with_table_mut(table, f)
    }

    fn charge(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if self.round_trip.is_zero() {
            return;
        }
        // Busy-wait: sleep() rounds up to scheduler granularity (~1 ms),
        // which would distort sub-millisecond round trips.
        let start = Instant::now();
        while start.elapsed() < self.round_trip {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Column, Schema};
    use crate::value::{ColumnType, Value};

    fn store_with_rows(n: i64) -> TableStore {
        let store = TableStore::new();
        let schema = Schema::new(vec![Column::new("v", ColumnType::Int)]).unwrap();
        store.create_table("t", schema).unwrap();
        for i in 0..n {
            store.insert("t", vec![Value::Int(i)]).unwrap();
        }
        store
    }

    #[test]
    fn charges_round_trip_per_query() {
        let db = RemoteDb::new(store_with_rows(1), Duration::from_micros(300));
        let start = Instant::now();
        for _ in 0..10 {
            db.query("t", |t| t.len()).unwrap();
        }
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_micros(3000), "charged only {elapsed:?}");
        assert_eq!(db.query_count(), 10);
    }

    #[test]
    fn local_access_is_free() {
        let db = RemoteDb::new(store_with_rows(5), Duration::from_millis(50));
        let n = db.local().with_table("t", |t| t.len()).unwrap();
        assert_eq!(n, 5);
        assert_eq!(db.query_count(), 0);
    }

    #[test]
    fn zero_round_trip_supported() {
        let db = RemoteDb::new(store_with_rows(2), Duration::ZERO);
        assert_eq!(db.query("t", |t| t.len()).unwrap(), 2);
        assert_eq!(db.query_count(), 1);
    }

    #[test]
    fn errors_still_charge() {
        let db = RemoteDb::new(TableStore::new(), Duration::ZERO);
        assert!(db.query("missing", |t| t.len()).is_err());
        assert_eq!(db.query_count(), 1);
    }
}
