//! The named-table catalogue — the embedded stand-in for the paper's MySQL
//! server.

use crate::error::StorageError;
use crate::table::{Schema, Table};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A thread-safe catalogue of named tables.
///
/// Cloning the store is cheap and shares the underlying tables, matching
/// how every Esper engine task in the paper talks to the one MySQL server.
#[derive(Debug, Clone, Default)]
pub struct TableStore {
    inner: Arc<RwLock<HashMap<String, Table>>>,
}

impl TableStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table; fails if the name is taken.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<(), StorageError> {
        let mut guard = self.inner.write();
        if guard.contains_key(name) {
            return Err(StorageError::TableExists(name.to_string()));
        }
        guard.insert(name.to_string(), Table::new(name, schema));
        Ok(())
    }

    /// Creates the table if missing, otherwise verifies the schema matches.
    pub fn create_table_if_missing(&self, name: &str, schema: Schema) -> Result<(), StorageError> {
        let mut guard = self.inner.write();
        match guard.get(name) {
            Some(t) if t.schema() == &schema => Ok(()),
            Some(_) => Err(StorageError::SchemaMismatch {
                table: name.to_string(),
                reason: "existing table has a different schema".into(),
            }),
            None => {
                guard.insert(name.to_string(), Table::new(name, schema));
                Ok(())
            }
        }
    }

    /// Drops a table.
    pub fn drop_table(&self, name: &str) -> Result<(), StorageError> {
        self.inner
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    /// Replaces a table's contents wholesale (used by the batch layer when
    /// publishing a fresh statistics snapshot).
    pub fn replace_table(&self, table: Table) {
        self.inner.write().insert(table.name().to_string(), table);
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Whether the table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.inner.read().contains_key(name)
    }

    /// Runs a closure with shared access to a table.
    pub fn with_table<R>(
        &self,
        name: &str,
        f: impl FnOnce(&Table) -> R,
    ) -> Result<R, StorageError> {
        let guard = self.inner.read();
        let t = guard.get(name).ok_or_else(|| StorageError::TableNotFound(name.to_string()))?;
        Ok(f(t))
    }

    /// Runs a closure with exclusive access to a table.
    pub fn with_table_mut<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut Table) -> R,
    ) -> Result<R, StorageError> {
        let mut guard = self.inner.write();
        let t = guard.get_mut(name).ok_or_else(|| StorageError::TableNotFound(name.to_string()))?;
        Ok(f(t))
    }

    /// Inserts one row into the named table.
    pub fn insert(&self, table: &str, row: crate::table::Row) -> Result<(), StorageError> {
        self.with_table_mut(table, |t| t.insert(row))?
    }

    /// Total rows across all tables (used by tests and the monitor).
    pub fn total_rows(&self) -> usize {
        self.inner.read().values().map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Column;
    use crate::value::{ColumnType, Value};

    fn schema() -> Schema {
        Schema::new(vec![Column::new("k", ColumnType::Str), Column::new("v", ColumnType::Float)])
            .unwrap()
    }

    #[test]
    fn create_insert_query() {
        let store = TableStore::new();
        store.create_table("stats", schema()).unwrap();
        store.insert("stats", vec![Value::from("a"), Value::Float(1.5)]).unwrap();
        let n = store.with_table("stats", |t| t.len()).unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn duplicate_create_fails() {
        let store = TableStore::new();
        store.create_table("t", schema()).unwrap();
        assert!(matches!(store.create_table("t", schema()), Err(StorageError::TableExists(_))));
        // But the if-missing variant is idempotent for a matching schema.
        store.create_table_if_missing("t", schema()).unwrap();
        let other =
            Schema::new(vec![Column::new("x", ColumnType::Int)]).unwrap();
        assert!(store.create_table_if_missing("t", other).is_err());
    }

    #[test]
    fn missing_table_errors() {
        let store = TableStore::new();
        assert!(matches!(
            store.insert("nope", vec![Value::Null]),
            Err(StorageError::TableNotFound(_))
        ));
        assert!(store.drop_table("nope").is_err());
    }

    #[test]
    fn clones_share_state() {
        let store = TableStore::new();
        store.create_table("t", schema()).unwrap();
        let clone = store.clone();
        clone.insert("t", vec![Value::from("x"), Value::Float(2.0)]).unwrap();
        assert_eq!(store.total_rows(), 1);
    }

    #[test]
    fn replace_table_swaps_contents() {
        let store = TableStore::new();
        store.create_table("t", schema()).unwrap();
        store.insert("t", vec![Value::from("old"), Value::Float(0.0)]).unwrap();
        let mut fresh = Table::new("t", schema());
        fresh.insert(vec![Value::from("new"), Value::Float(1.0)]).unwrap();
        fresh.insert(vec![Value::from("new2"), Value::Float(2.0)]).unwrap();
        store.replace_table(fresh);
        assert_eq!(store.with_table("t", |t| t.len()).unwrap(), 2);
    }

    #[test]
    fn concurrent_inserts_are_safe() {
        let store = TableStore::new();
        store.create_table("t", schema()).unwrap();
        std::thread::scope(|s| {
            for i in 0..4 {
                let store = store.clone();
                s.spawn(move || {
                    for j in 0..100 {
                        store
                            .insert("t", vec![Value::from(format!("{i}-{j}")), Value::Float(0.0)])
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(store.total_rows(), 400);
    }
}
