//! Statistics tables and the threshold query (Listing 2 of the paper).
//!
//! The Hadoop job (Section 4.1.3) writes one `statistics_<attribute>`
//! table per monitored attribute, with the mean and standard deviation of
//! that attribute per (location, hour-of-day, day-type). Rules then use
//! `mean + s·stdv` as their threshold, where `s` tunes the sensitivity:
//!
//! ```sql
//! SELECT DISTINCT attr_mean + s*attr_stdv AS thresholdLocation,
//!        currentHour, dateType, areaId1
//! FROM statistics_attribute
//! ```

use crate::error::StorageError;
use crate::remote::RemoteDb;
use crate::store::TableStore;
use crate::table::{Column, Schema, Table};
use crate::value::{ColumnType, Value};
use serde::{Deserialize, Serialize};

/// Weekday vs weekend — the paper's `dateType` (traffic differs sharply
/// between the two; Section 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DayType {
    /// Monday through Friday.
    Weekday,
    /// Saturday and Sunday.
    Weekend,
}

impl DayType {
    /// Encodes for storage.
    pub fn as_str(self) -> &'static str {
        match self {
            DayType::Weekday => "weekday",
            DayType::Weekend => "weekend",
        }
    }

    /// Decodes from storage.
    pub fn parse(s: &str) -> Result<Self, StorageError> {
        match s {
            "weekday" => Ok(DayType::Weekday),
            "weekend" => Ok(DayType::Weekend),
            other => {
                Err(StorageError::TypeError { expected: "DayType", got: format!("{other:?}") })
            }
        }
    }

    /// Day-of-week (0 = Monday) to day type.
    pub fn from_weekday_index(idx: u8) -> Self {
        if idx % 7 >= 5 {
            DayType::Weekend
        } else {
            DayType::Weekday
        }
    }
}

/// One statistics record as produced by the batch layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatRecord {
    /// Spatial location id (quadtree region or bus stop), e.g. `"R17"` or
    /// `"S42"`.
    pub area_id: String,
    /// Hour of day, 0..=23.
    pub hour: u8,
    /// Weekday or weekend.
    pub day_type: DayType,
    /// Mean of the attribute in that cell.
    pub mean: f64,
    /// Standard deviation of the attribute in that cell.
    pub stdv: f64,
    /// Number of samples behind the statistics.
    pub count: u64,
}

/// One row produced by the threshold query (Listing 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdRow {
    /// Spatial location id.
    pub area_id: String,
    /// Hour of day, 0..=23.
    pub hour: u8,
    /// Weekday or weekend.
    pub day_type: DayType,
    /// `mean + s·stdv`.
    pub threshold: f64,
}

/// The threshold query parameters: which attribute and how many standard
/// deviations above the mean.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdQuery {
    /// Attribute name; resolves to table `statistics_<attribute>`.
    pub attribute: String,
    /// Sensitivity multiplier `s` in `mean + s·stdv`.
    pub s: f64,
}

/// Schema of every `statistics_<attribute>` table.
pub fn statistics_schema() -> Schema {
    Schema::new(vec![
        Column::new("areaId", ColumnType::Str),
        Column::new("currentHour", ColumnType::Int),
        Column::new("dateType", ColumnType::Str),
        Column::new("attr_mean", ColumnType::Float),
        Column::new("attr_stdv", ColumnType::Float),
        Column::new("sample_count", ColumnType::Int),
    ])
    .expect("statistics schema is valid")
}

/// Name of the statistics table for an attribute.
pub fn statistics_table_name(attribute: &str) -> String {
    format!("statistics_{attribute}")
}

/// High-level API over the statistics tables.
#[derive(Debug, Clone)]
pub struct ThresholdStore {
    store: TableStore,
}

impl ThresholdStore {
    /// Wraps a table store.
    pub fn new(store: TableStore) -> Self {
        ThresholdStore { store }
    }

    /// The underlying store.
    pub fn store(&self) -> &TableStore {
        &self.store
    }

    /// Publishes a fresh statistics snapshot for an attribute, replacing
    /// any previous snapshot atomically (the batch layer calls this once
    /// per periodic job run).
    pub fn publish(&self, attribute: &str, records: &[StatRecord]) -> Result<(), StorageError> {
        let mut table = Table::new(statistics_table_name(attribute), statistics_schema());
        for r in records {
            table.insert(vec![
                Value::from(r.area_id.clone()),
                Value::Int(i64::from(r.hour)),
                Value::from(r.day_type.as_str()),
                Value::Float(r.mean),
                Value::Float(r.stdv),
                Value::Int(r.count as i64),
            ])?;
        }
        self.store.replace_table(table);
        Ok(())
    }

    /// Reads back an attribute's raw statistics records, sorted by
    /// `(area, hour, dayType)` so callers observe a deterministic order.
    /// The in-stream statistics stage uses this to seed its accumulators
    /// from the offline bootstrap's snapshot. Returns an empty vec when
    /// the attribute has no table yet (nothing published).
    pub fn statistics(&self, attribute: &str) -> Result<Vec<StatRecord>, StorageError> {
        let name = statistics_table_name(attribute);
        if !self.store.has_table(&name) {
            return Ok(Vec::new());
        }
        let mut out = self.store.with_table(&name, |t| -> Result<_, StorageError> {
            let mut recs = Vec::with_capacity(t.len());
            for row in t.scan() {
                recs.push(StatRecord {
                    area_id: row[0].as_str()?.to_string(),
                    hour: row[1].as_int()? as u8,
                    day_type: DayType::parse(row[2].as_str()?)?,
                    mean: row[3].as_float()?,
                    stdv: row[4].as_float()?,
                    count: row[5].as_int()? as u64,
                });
            }
            Ok(recs)
        })??;
        out.sort_by(|a, b| (&a.area_id, a.hour, a.day_type).cmp(&(&b.area_id, b.hour, b.day_type)));
        Ok(out)
    }

    /// As [`Self::publish`] but through a [`RemoteDb`], paying one round
    /// trip for the whole snapshot — the cost the batch layer's refresh
    /// actually incurs (the kappa path publishes locally instead).
    pub fn publish_remote(
        db: &RemoteDb,
        attribute: &str,
        records: &[StatRecord],
    ) -> Result<(), StorageError> {
        let name = statistics_table_name(attribute);
        let mut fresh = Table::new(name.clone(), statistics_schema());
        for r in records {
            fresh.insert(vec![
                Value::from(r.area_id.clone()),
                Value::Int(i64::from(r.hour)),
                Value::from(r.day_type.as_str()),
                Value::Float(r.mean),
                Value::Float(r.stdv),
                Value::Int(r.count as i64),
            ])?;
        }
        db.local().create_table_if_missing(&name, statistics_schema())?;
        db.execute(&name, |t| *t = fresh)?;
        Ok(())
    }

    /// Runs the threshold query (Listing 2) against a table store,
    /// returning every `(area, hour, dayType)` threshold.
    pub fn thresholds(&self, query: &ThresholdQuery) -> Result<Vec<ThresholdRow>, StorageError> {
        self.store
            .with_table(&statistics_table_name(&query.attribute), |t| Self::project(t, query.s))?
    }

    /// Runs the *literal SQL* of Listing 2 through the storage medium's
    /// SQL front end and converts the result rows. Produces the same rows
    /// as [`Self::thresholds`] (a test asserts it); kept as the faithful
    /// path for demonstrations.
    pub fn thresholds_sql(&self, query: &ThresholdQuery) -> Result<Vec<ThresholdRow>, StorageError> {
        let table_name = statistics_table_name(&query.attribute);
        let sql = format!(
            "SELECT DISTINCT attr_mean + {s}*attr_stdv as thresholdLocation,              currentHour, dateType, areaId FROM {table_name}",
            s = query.s,
        );
        let result =
            self.store.with_table(&table_name, |t| crate::sql::query(t, &sql))??;
        let mut out = Vec::with_capacity(result.rows.len());
        for row in result.rows {
            out.push(ThresholdRow {
                threshold: row[0].as_float()?,
                hour: row[1].as_int()? as u8,
                day_type: DayType::parse(row[2].as_str()?)?,
                area_id: row[3].as_str()?.to_string(),
            });
        }
        out.sort_by(|a, b| {
            (&a.area_id, a.hour, a.day_type)
                .cmp(&(&b.area_id, b.hour, b.day_type))
                .then(a.threshold.total_cmp(&b.threshold))
        });
        Ok(out)
    }

    /// Point lookup for one `(area, hour, dayType)` — the per-tuple *Join
    /// with Database* path. Returns `None` when no statistics exist for
    /// the key (e.g. a region never visited in the historical data).
    pub fn threshold_for(
        &self,
        query: &ThresholdQuery,
        area_id: &str,
        hour: u8,
        day_type: DayType,
    ) -> Result<Option<f64>, StorageError> {
        self.store.with_table(&statistics_table_name(&query.attribute), |t| {
            Self::lookup_one(t, query.s, area_id, hour, day_type)
        })?
    }

    /// As [`Self::thresholds`] but going through a [`RemoteDb`], paying one
    /// round trip for the whole snapshot (this is what the *new stream*
    /// and *multiple rules* methods do at start-up).
    pub fn thresholds_remote(
        db: &RemoteDb,
        query: &ThresholdQuery,
    ) -> Result<Vec<ThresholdRow>, StorageError> {
        db.query(&statistics_table_name(&query.attribute), |t| Self::project(t, query.s))?
    }

    /// As [`Self::threshold_for`] but through a [`RemoteDb`], paying one
    /// round trip per call — the cost profile of the per-tuple join.
    pub fn threshold_for_remote(
        db: &RemoteDb,
        query: &ThresholdQuery,
        area_id: &str,
        hour: u8,
        day_type: DayType,
    ) -> Result<Option<f64>, StorageError> {
        db.query(&statistics_table_name(&query.attribute), |t| {
            Self::lookup_one(t, query.s, area_id, hour, day_type)
        })?
    }

    fn project(t: &Table, s: f64) -> Result<Vec<ThresholdRow>, StorageError> {
        let mut out = Vec::with_capacity(t.len());
        for row in t.scan() {
            out.push(ThresholdRow {
                area_id: row[0].as_str()?.to_string(),
                hour: row[1].as_int()? as u8,
                day_type: DayType::parse(row[2].as_str()?)?,
                threshold: row[3].as_float()? + s * row[4].as_float()?,
            });
        }
        // DISTINCT of Listing 2: the snapshot is keyed, but historical
        // re-publishes could duplicate; dedupe on the full row.
        out.sort_by(|a, b| {
            (&a.area_id, a.hour, a.day_type)
                .cmp(&(&b.area_id, b.hour, b.day_type))
                .then(a.threshold.total_cmp(&b.threshold))
        });
        out.dedup_by(|a, b| {
            a.area_id == b.area_id
                && a.hour == b.hour
                && a.day_type == b.day_type
                && a.threshold == b.threshold
        });
        Ok(out)
    }

    fn lookup_one(
        t: &Table,
        s: f64,
        area_id: &str,
        hour: u8,
        day_type: DayType,
    ) -> Result<Option<f64>, StorageError> {
        for row in t.scan() {
            if row[0].as_str()? == area_id
                && row[1].as_int()? == i64::from(hour)
                && row[2].as_str()? == day_type.as_str()
            {
                return Ok(Some(row[3].as_float()? + s * row[4].as_float()?));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records() -> Vec<StatRecord> {
        vec![
            StatRecord {
                area_id: "R1".into(),
                hour: 8,
                day_type: DayType::Weekday,
                mean: 60.0,
                stdv: 20.0,
                count: 100,
            },
            StatRecord {
                area_id: "R1".into(),
                hour: 8,
                day_type: DayType::Weekend,
                mean: 20.0,
                stdv: 10.0,
                count: 40,
            },
            StatRecord {
                area_id: "R2".into(),
                hour: 8,
                day_type: DayType::Weekday,
                mean: 90.0,
                stdv: 30.0,
                count: 80,
            },
        ]
    }

    #[test]
    fn publish_and_query_thresholds() {
        let ts = ThresholdStore::new(TableStore::new());
        ts.publish("delay", &records()).unwrap();
        let rows =
            ts.thresholds(&ThresholdQuery { attribute: "delay".into(), s: 1.0 }).unwrap();
        assert_eq!(rows.len(), 3);
        let r1_weekday = rows
            .iter()
            .find(|r| r.area_id == "R1" && r.day_type == DayType::Weekday)
            .unwrap();
        assert_eq!(r1_weekday.threshold, 80.0); // 60 + 1·20
    }

    #[test]
    fn sensitivity_multiplier_applies() {
        let ts = ThresholdStore::new(TableStore::new());
        ts.publish("delay", &records()).unwrap();
        let t = ts
            .threshold_for(
                &ThresholdQuery { attribute: "delay".into(), s: 2.0 },
                "R2",
                8,
                DayType::Weekday,
            )
            .unwrap();
        assert_eq!(t, Some(150.0)); // 90 + 2·30
    }

    #[test]
    fn missing_key_returns_none() {
        let ts = ThresholdStore::new(TableStore::new());
        ts.publish("delay", &records()).unwrap();
        let q = ThresholdQuery { attribute: "delay".into(), s: 1.0 };
        assert_eq!(ts.threshold_for(&q, "R99", 8, DayType::Weekday).unwrap(), None);
        assert_eq!(ts.threshold_for(&q, "R1", 3, DayType::Weekday).unwrap(), None);
    }

    #[test]
    fn missing_attribute_is_table_not_found() {
        let ts = ThresholdStore::new(TableStore::new());
        let q = ThresholdQuery { attribute: "speed".into(), s: 1.0 };
        assert!(matches!(ts.thresholds(&q), Err(StorageError::TableNotFound(_))));
    }

    #[test]
    fn republish_replaces_snapshot() {
        let ts = ThresholdStore::new(TableStore::new());
        ts.publish("delay", &records()).unwrap();
        ts.publish(
            "delay",
            &[StatRecord {
                area_id: "R9".into(),
                hour: 0,
                day_type: DayType::Weekday,
                mean: 1.0,
                stdv: 0.0,
                count: 1,
            }],
        )
        .unwrap();
        let rows =
            ts.thresholds(&ThresholdQuery { attribute: "delay".into(), s: 1.0 }).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].area_id, "R9");
    }

    #[test]
    fn distinct_removes_duplicate_rows() {
        let ts = ThresholdStore::new(TableStore::new());
        let mut recs = records();
        recs.push(recs[0].clone());
        ts.publish("delay", &recs).unwrap();
        let rows =
            ts.thresholds(&ThresholdQuery { attribute: "delay".into(), s: 1.0 }).unwrap();
        assert_eq!(rows.len(), 3, "duplicates removed by DISTINCT");
    }

    #[test]
    fn remote_paths_charge_round_trips() {
        let ts = ThresholdStore::new(TableStore::new());
        ts.publish("delay", &records()).unwrap();
        let db = RemoteDb::new(ts.store().clone(), std::time::Duration::ZERO);
        let q = ThresholdQuery { attribute: "delay".into(), s: 1.0 };
        ThresholdStore::thresholds_remote(&db, &q).unwrap();
        ThresholdStore::threshold_for_remote(&db, &q, "R1", 8, DayType::Weekday).unwrap();
        assert_eq!(db.query_count(), 2);
    }

    #[test]
    fn sql_path_matches_typed_path() {
        let ts = ThresholdStore::new(TableStore::new());
        ts.publish("delay", &records()).unwrap();
        for s in [0.0, 1.0, 2.5] {
            let q = ThresholdQuery { attribute: "delay".into(), s };
            assert_eq!(ts.thresholds(&q).unwrap(), ts.thresholds_sql(&q).unwrap());
        }
    }

    #[test]
    fn statistics_round_trips_published_records() {
        let ts = ThresholdStore::new(TableStore::new());
        assert_eq!(ts.statistics("delay").unwrap(), vec![], "missing table reads empty");
        ts.publish("delay", &records()).unwrap();
        let back = ts.statistics("delay").unwrap();
        let mut expected = records();
        expected
            .sort_by(|a, b| (&a.area_id, a.hour, a.day_type).cmp(&(&b.area_id, b.hour, b.day_type)));
        assert_eq!(back, expected);
    }

    #[test]
    fn publish_remote_charges_one_round_trip_and_replaces() {
        let ts = ThresholdStore::new(TableStore::new());
        let db = RemoteDb::new(ts.store().clone(), std::time::Duration::ZERO);
        ThresholdStore::publish_remote(&db, "delay", &records()).unwrap();
        assert_eq!(db.query_count(), 1, "whole snapshot costs one round trip");
        assert_eq!(ts.statistics("delay").unwrap().len(), 3);
        // Republish replaces, exactly like the local path.
        ThresholdStore::publish_remote(&db, "delay", &records()[..1]).unwrap();
        assert_eq!(ts.statistics("delay").unwrap().len(), 1);
        assert_eq!(db.query_count(), 2);
    }

    #[test]
    fn day_type_round_trip() {
        assert_eq!(DayType::parse("weekday").unwrap(), DayType::Weekday);
        assert_eq!(DayType::parse("weekend").unwrap(), DayType::Weekend);
        assert!(DayType::parse("holiday").is_err());
        assert_eq!(DayType::from_weekday_index(0), DayType::Weekday);
        assert_eq!(DayType::from_weekday_index(5), DayType::Weekend);
        assert_eq!(DayType::from_weekday_index(6), DayType::Weekend);
    }
}
