//! CSV persistence for tables.
//!
//! The paper's spout reads bus traces from CSV files and the batch results
//! are exchanged through the storage medium; a minimal CSV codec (RFC-4180
//! quoting subset: `"` quotes, `""` escapes, no embedded newlines in our
//! data) keeps the whole pipeline dependency-free.

use crate::error::StorageError;
use crate::table::{Row, Schema, Table};
use crate::value::Value;
use std::io::{BufRead, Write};

/// Splits one CSV line into fields, honouring quotes.
pub fn split_csv_line(line: &str, line_no: usize) -> Result<Vec<String>, StorageError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if cur.is_empty() => in_quotes = true,
            '"' => {
                return Err(StorageError::CsvParse {
                    line: line_no,
                    reason: "quote in the middle of an unquoted field".into(),
                })
            }
            ',' if !in_quotes => fields.push(std::mem::take(&mut cur)),
            c => cur.push(c),
        }
    }
    if in_quotes {
        return Err(StorageError::CsvParse { line: line_no, reason: "unterminated quote".into() });
    }
    fields.push(cur);
    Ok(fields)
}

/// Writes a table as CSV with a header row.
pub fn write_table(table: &Table, w: &mut impl Write) -> Result<(), StorageError> {
    let header: Vec<&str> = table.schema().columns().iter().map(|c| c.name.as_str()).collect();
    writeln!(w, "{}", header.join(","))?;
    for row in table.scan() {
        let fields: Vec<String> = row.iter().map(Value::to_csv_field).collect();
        writeln!(w, "{}", fields.join(","))?;
    }
    Ok(())
}

/// Reads a table from CSV. The header must match the schema's column names
/// in order; each field parses according to the schema's column type.
pub fn read_table(
    name: &str,
    schema: Schema,
    r: &mut impl BufRead,
) -> Result<Table, StorageError> {
    let mut table = Table::new(name, schema);
    let mut line = String::new();
    // Header.
    line.clear();
    if r.read_line(&mut line)? == 0 {
        return Err(StorageError::CsvParse { line: 1, reason: "missing header".into() });
    }
    let header = split_csv_line(line.trim_end_matches(['\r', '\n']), 1)?;
    let expected: Vec<&str> =
        table.schema().columns().iter().map(|c| c.name.as_str()).collect();
    if header != expected {
        return Err(StorageError::CsvParse {
            line: 1,
            reason: format!("header {header:?} does not match schema {expected:?}"),
        });
    }
    let types: Vec<_> = table.schema().columns().iter().map(|c| c.ty).collect();
    let mut line_no = 1;
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            continue;
        }
        let fields = split_csv_line(trimmed, line_no)?;
        if fields.len() != types.len() {
            return Err(StorageError::CsvParse {
                line: line_no,
                reason: format!("expected {} fields, got {}", types.len(), fields.len()),
            });
        }
        let row: Row = fields
            .iter()
            .zip(&types)
            .map(|(f, &ty)| Value::parse_csv_field(f, ty))
            .collect::<Result<_, _>>()
            .map_err(|e| StorageError::CsvParse { line: line_no, reason: e.to_string() })?;
        table.insert(row)?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Column;
    use crate::value::ColumnType;
    use std::io::Cursor;

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            Column::new("id", ColumnType::Int),
            Column::new("name", ColumnType::Str),
            Column::new("score", ColumnType::Float),
            Column::new("ok", ColumnType::Bool),
        ])
        .unwrap();
        let mut t = Table::new("sample", schema);
        t.insert(vec![Value::Int(1), Value::from("plain"), Value::Float(0.5), Value::Bool(true)])
            .unwrap();
        t.insert(vec![
            Value::Int(2),
            Value::from("with, comma and \"quotes\""),
            Value::Float(-1.25),
            Value::Bool(false),
        ])
        .unwrap();
        t.insert(vec![Value::Int(3), Value::Null, Value::Null, Value::Null]).unwrap();
        t
    }

    #[test]
    fn round_trip_preserves_rows() {
        let t = sample_table();
        let mut buf = Vec::new();
        write_table(&t, &mut buf).unwrap();
        let read =
            read_table("sample", t.schema().clone(), &mut Cursor::new(&buf)).unwrap();
        assert_eq!(read.rows(), t.rows());
    }

    #[test]
    fn header_mismatch_rejected() {
        let t = sample_table();
        let schema = Schema::new(vec![Column::new("other", ColumnType::Int)]).unwrap();
        let mut buf = Vec::new();
        write_table(&t, &mut buf).unwrap();
        let err = read_table("x", schema, &mut Cursor::new(&buf));
        assert!(matches!(err, Err(StorageError::CsvParse { line: 1, .. })));
    }

    #[test]
    fn field_count_mismatch_rejected() {
        let schema = Schema::new(vec![
            Column::new("a", ColumnType::Int),
            Column::new("b", ColumnType::Int),
        ])
        .unwrap();
        let data = "a,b\n1,2\n3\n";
        let err = read_table("x", schema, &mut Cursor::new(data));
        assert!(matches!(err, Err(StorageError::CsvParse { line: 3, .. })));
    }

    #[test]
    fn bad_value_reports_line() {
        let schema = Schema::new(vec![Column::new("a", ColumnType::Int)]).unwrap();
        let data = "a\n1\nnot_a_number\n";
        let err = read_table("x", schema, &mut Cursor::new(data));
        assert!(matches!(err, Err(StorageError::CsvParse { line: 3, .. })));
    }

    #[test]
    fn split_handles_quotes() {
        assert_eq!(
            split_csv_line("a,\"b,c\",\"d\"\"e\"", 1).unwrap(),
            vec!["a", "b,c", "d\"e"]
        );
        assert!(split_csv_line("a\"b", 1).is_err());
        assert!(split_csv_line("\"unterminated", 1).is_err());
    }

    #[test]
    fn empty_lines_skipped_and_empty_file_rejected() {
        let schema = Schema::new(vec![Column::new("a", ColumnType::Int)]).unwrap();
        let data = "a\n1\n\n2\n";
        let t = read_table("x", schema.clone(), &mut Cursor::new(data)).unwrap();
        assert_eq!(t.len(), 2);
        assert!(read_table("x", schema, &mut Cursor::new("")).is_err());
    }
}
