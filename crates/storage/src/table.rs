//! Schemas, rows and in-memory tables.

use crate::error::StorageError;
use crate::value::{ColumnType, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

impl Column {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Column { name: name.into(), ty }
    }
}

/// An ordered set of columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<Column>,
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Builds a schema, rejecting empty or duplicated column lists.
    pub fn new(columns: Vec<Column>) -> Result<Self, StorageError> {
        if columns.is_empty() {
            return Err(StorageError::InvalidSchema { reason: "no columns".into() });
        }
        let mut by_name = HashMap::with_capacity(columns.len());
        for (i, c) in columns.iter().enumerate() {
            if by_name.insert(c.name.clone(), i).is_some() {
                return Err(StorageError::InvalidSchema {
                    reason: format!("duplicate column name {:?}", c.name),
                });
            }
        }
        Ok(Schema { columns, by_name })
    }

    /// The columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }
}

/// A row of values; validated against the schema at insert time.
pub type Row = Vec<Value>;

/// An in-memory table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table { name: name.into(), schema, rows: Vec::new() }
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a row after validating it against the schema.
    pub fn insert(&mut self, row: Row) -> Result<(), StorageError> {
        if row.len() != self.schema.arity() {
            return Err(StorageError::SchemaMismatch {
                table: self.name.clone(),
                reason: format!("expected {} values, got {}", self.schema.arity(), row.len()),
            });
        }
        for (v, c) in row.iter().zip(self.schema.columns()) {
            if !v.fits(c.ty) {
                return Err(StorageError::SchemaMismatch {
                    table: self.name.clone(),
                    reason: format!("value {v:?} does not fit column {} ({})", c.name, c.ty),
                });
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Inserts many rows; stops at the first invalid one.
    pub fn insert_all(&mut self, rows: impl IntoIterator<Item = Row>) -> Result<usize, StorageError> {
        let mut n = 0;
        for r in rows {
            self.insert(r)?;
            n += 1;
        }
        Ok(n)
    }

    /// Iterates all rows.
    pub fn scan(&self) -> impl Iterator<Item = &Row> {
        self.rows.iter()
    }

    /// Rows matching the predicate.
    pub fn select<'a>(
        &'a self,
        mut predicate: impl FnMut(&Row) -> bool + 'a,
    ) -> impl Iterator<Item = &'a Row> + 'a {
        self.rows.iter().filter(move |r| predicate(r))
    }

    /// Value of `column` in each row matching an equality filter on
    /// `key_column`. A tiny convenience used by point lookups.
    pub fn lookup(
        &self,
        key_column: &str,
        key: &Value,
        column: &str,
    ) -> Result<Vec<Value>, StorageError> {
        let ki = self.schema.index_of(key_column).ok_or_else(|| StorageError::ColumnNotFound {
            table: self.name.clone(),
            column: key_column.to_string(),
        })?;
        let ci = self.schema.index_of(column).ok_or_else(|| StorageError::ColumnNotFound {
            table: self.name.clone(),
            column: column.to_string(),
        })?;
        Ok(self
            .rows
            .iter()
            .filter(|r| &r[ki] == key)
            .map(|r| r[ci].clone())
            .collect())
    }

    /// Deletes rows matching the predicate, returning how many went away.
    pub fn delete(&mut self, mut predicate: impl FnMut(&Row) -> bool) -> usize {
        let before = self.rows.len();
        self.rows.retain(|r| !predicate(r));
        before - self.rows.len()
    }

    /// Removes all rows.
    pub fn truncate(&mut self) {
        self.rows.clear();
    }

    /// Direct row access (used by the CSV writer).
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", ColumnType::Int),
            Column::new("mean", ColumnType::Float),
            Column::new("area", ColumnType::Str),
        ])
        .unwrap()
    }

    #[test]
    fn schema_rejects_duplicates_and_empty() {
        assert!(Schema::new(vec![]).is_err());
        assert!(Schema::new(vec![
            Column::new("a", ColumnType::Int),
            Column::new("a", ColumnType::Float),
        ])
        .is_err());
    }

    #[test]
    fn insert_validates_arity_and_types() {
        let mut t = Table::new("t", schema());
        assert!(t.insert(vec![Value::Int(1), Value::Float(2.0), Value::from("x")]).is_ok());
        // Int widens into the float column.
        assert!(t.insert(vec![Value::Int(1), Value::Int(2), Value::from("x")]).is_ok());
        // Wrong arity.
        assert!(t.insert(vec![Value::Int(1)]).is_err());
        // Wrong type.
        assert!(t
            .insert(vec![Value::from("oops"), Value::Float(2.0), Value::from("x")])
            .is_err());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn nulls_fit_any_column() {
        let mut t = Table::new("t", schema());
        t.insert(vec![Value::Null, Value::Null, Value::Null]).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn select_and_lookup() {
        let mut t = Table::new("t", schema());
        for i in 0..10 {
            t.insert(vec![
                Value::Int(i),
                Value::Float(i as f64 * 0.5),
                Value::from(if i % 2 == 0 { "even" } else { "odd" }),
            ])
            .unwrap();
        }
        let evens: Vec<_> = t.select(|r| r[2] == Value::from("even")).collect();
        assert_eq!(evens.len(), 5);
        let means = t.lookup("id", &Value::Int(4), "mean").unwrap();
        assert_eq!(means, vec![Value::Float(2.0)]);
        assert!(t.lookup("nope", &Value::Int(1), "mean").is_err());
    }

    #[test]
    fn delete_and_truncate() {
        let mut t = Table::new("t", schema());
        for i in 0..6 {
            t.insert(vec![Value::Int(i), Value::Float(0.0), Value::from("a")]).unwrap();
        }
        let removed = t.delete(|r| r[0].as_int().unwrap() < 3);
        assert_eq!(removed, 3);
        assert_eq!(t.len(), 3);
        t.truncate();
        assert!(t.is_empty());
    }
}
