//! Storage medium for the traffic management system (the paper's "MySQL
//! server", Section 3.2).
//!
//! The batch layer writes per-location statistics here and the stream layer
//! reads them back as rule thresholds. The paper notes the medium is
//! replaceable (e.g. by Cassandra); this crate provides the same contract
//! as an embedded, typed, thread-safe table store:
//!
//! * [`value`] — dynamically typed cell values and column types;
//! * [`table`] — schemas, rows and in-memory tables with filtered scans;
//! * [`store`] — a named-table catalogue behind a lock (the "server");
//! * [`remote`] — a wrapper charging a configurable round-trip latency per
//!   query, modelling the client↔server hop that makes the paper's
//!   *Join with Database* threshold-retrieval method slow (Figure 10);
//! * [`thresholds`] — the statistics tables and the threshold query of
//!   Listing 2: `SELECT DISTINCT attr_mean + s*attr_stdv, currentHour,
//!   dateType, areaId FROM statistics_<attribute>`;
//! * [`csv`] — CSV persistence for tables.

pub mod csv;
pub mod error;
pub mod remote;
pub mod sql;
pub mod store;
pub mod table;
pub mod thresholds;
pub mod value;

pub use error::StorageError;
pub use remote::RemoteDb;
pub use sql::{parse_select, query, QueryResult};
pub use store::TableStore;
pub use table::{Column, Row, Schema, Table};
pub use thresholds::{DayType, StatRecord, ThresholdQuery, ThresholdRow, ThresholdStore};
pub use value::{ColumnType, Value};
