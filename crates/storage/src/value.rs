//! Dynamically typed cell values.

use crate::error::StorageError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Type of a table column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float (integer values widen in).
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Int => "INT",
            ColumnType::Float => "FLOAT",
            ColumnType::Str => "STR",
            ColumnType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// A dynamically typed cell value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// An integer cell.
    Int(i64),
    /// A float cell.
    Float(f64),
    /// A string cell.
    Str(String),
    /// A boolean cell.
    Bool(bool),
    /// An absent value (fits any column).
    Null,
}

impl Value {
    /// The column type this value belongs to, `None` for `Null`.
    pub fn column_type(&self) -> Option<ColumnType> {
        match self {
            Value::Int(_) => Some(ColumnType::Int),
            Value::Float(_) => Some(ColumnType::Float),
            Value::Str(_) => Some(ColumnType::Str),
            Value::Bool(_) => Some(ColumnType::Bool),
            Value::Null => None,
        }
    }

    /// Whether this value may be stored in a column of the given type.
    /// `Null` is storable anywhere; `Int` widens into `Float` columns.
    pub fn fits(&self, ty: ColumnType) -> bool {
        match (self, ty) {
            (Value::Null, _) => true,
            (Value::Int(_), ColumnType::Float) => true,
            (v, t) => v.column_type() == Some(t),
        }
    }

    /// Integer accessor.
    pub fn as_int(&self) -> Result<i64, StorageError> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(StorageError::TypeError { expected: "Int", got: format!("{other:?}") }),
        }
    }

    /// Float accessor; integers widen.
    pub fn as_float(&self) -> Result<f64, StorageError> {
        match self {
            Value::Float(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            other => Err(StorageError::TypeError { expected: "Float", got: format!("{other:?}") }),
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Result<&str, StorageError> {
        match self {
            Value::Str(v) => Ok(v),
            other => Err(StorageError::TypeError { expected: "Str", got: format!("{other:?}") }),
        }
    }

    /// Boolean accessor.
    pub fn as_bool(&self) -> Result<bool, StorageError> {
        match self {
            Value::Bool(v) => Ok(*v),
            other => Err(StorageError::TypeError { expected: "Bool", got: format!("{other:?}") }),
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Renders the value for CSV output. Strings are quoted only when they
    /// contain separators; `Null` renders as the empty field.
    pub fn to_csv_field(&self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::Float(v) => {
                // Keep full round-trip precision.
                format!("{v}")
            }
            Value::Str(v) => {
                if v.contains(',') || v.contains('"') || v.contains('\n') {
                    format!("\"{}\"", v.replace('"', "\"\""))
                } else {
                    v.clone()
                }
            }
            Value::Bool(v) => v.to_string(),
            Value::Null => String::new(),
        }
    }

    /// Parses a CSV field into a value of the given column type. Empty
    /// fields parse to `Null`.
    pub fn parse_csv_field(field: &str, ty: ColumnType) -> Result<Value, StorageError> {
        if field.is_empty() {
            return Ok(Value::Null);
        }
        match ty {
            ColumnType::Int => field.parse::<i64>().map(Value::Int).map_err(|e| {
                StorageError::TypeError { expected: "Int", got: format!("{field:?} ({e})") }
            }),
            ColumnType::Float => field.parse::<f64>().map(Value::Float).map_err(|e| {
                StorageError::TypeError { expected: "Float", got: format!("{field:?} ({e})") }
            }),
            ColumnType::Str => Ok(Value::Str(field.to_string())),
            ColumnType::Bool => match field {
                "true" | "1" => Ok(Value::Bool(true)),
                "false" | "0" => Ok(Value::Bool(false)),
                other => Err(StorageError::TypeError {
                    expected: "Bool",
                    got: format!("{other:?}"),
                }),
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_matrix() {
        assert!(Value::Int(1).fits(ColumnType::Int));
        assert!(Value::Int(1).fits(ColumnType::Float), "ints widen to float");
        assert!(!Value::Float(1.0).fits(ColumnType::Int));
        assert!(Value::Null.fits(ColumnType::Str));
        assert!(!Value::Bool(true).fits(ColumnType::Str));
    }

    #[test]
    fn accessors_enforce_types() {
        assert_eq!(Value::Int(3).as_int().unwrap(), 3);
        assert_eq!(Value::Int(3).as_float().unwrap(), 3.0);
        assert_eq!(Value::Float(2.5).as_float().unwrap(), 2.5);
        assert!(Value::Str("x".into()).as_int().is_err());
        assert!(Value::Null.as_bool().is_err());
    }

    #[test]
    fn csv_round_trip() {
        let cases = [
            (Value::Int(-42), ColumnType::Int),
            (Value::Float(3.25), ColumnType::Float),
            (Value::Str("hello".into()), ColumnType::Str),
            (Value::Bool(true), ColumnType::Bool),
            (Value::Null, ColumnType::Float),
        ];
        for (v, ty) in cases {
            let field = v.to_csv_field();
            let parsed = Value::parse_csv_field(&field, ty).unwrap();
            assert_eq!(parsed, v);
        }
    }

    #[test]
    fn csv_quoting_for_commas() {
        let v = Value::Str("a,b \"c\"".into());
        assert_eq!(v.to_csv_field(), "\"a,b \"\"c\"\"\"");
    }

    #[test]
    fn csv_parse_rejects_garbage() {
        assert!(Value::parse_csv_field("abc", ColumnType::Int).is_err());
        assert!(Value::parse_csv_field("maybe", ColumnType::Bool).is_err());
    }
}
