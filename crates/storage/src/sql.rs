//! A minimal SQL `SELECT` front end for the storage medium.
//!
//! The paper's storage medium is a MySQL server queried with SQL — its
//! Listing 2 reads:
//!
//! ```sql
//! SELECT DISTINCT attr_mean + s*attr_stdv AS thresholdLocation,
//!        currentHour, dateType, areaId
//! FROM statistics_attribute
//! ```
//!
//! This module implements the subset needed to run such statements
//! against [`Table`]s directly:
//!
//! ```text
//! SELECT [DISTINCT] item (',' item)* FROM ident [WHERE cond (AND cond)*]
//! item   := expr [AS ident] | '*'
//! expr   := term (('+'|'-') term)*
//! term   := factor (('*'|'/') factor)*
//! factor := ident | number | string | '(' expr ')'
//! cond   := expr op expr,  op ∈ { =, !=, <>, <, <=, >, >= }
//! ```
//!
//! It is intentionally *not* a general SQL engine — joins, GROUP BY and
//! subqueries belong to the CEP layer (`tms-cep`), which is where the
//! paper does its joining too.

use crate::error::StorageError;
use crate::table::Table;
use crate::value::Value;

/// The result of a query: named columns plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names, in SELECT order.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Str(String),
    Star,
    Comma,
    LParen,
    RParen,
    Plus,
    Minus,
    Slash,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

fn lex(src: &str) -> Result<Vec<Tok>, StorageError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let err = |i: usize, reason: String| StorageError::CsvParse { line: i, reason };
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            '/' => {
                out.push(Tok::Slash);
                i += 1;
            }
            '=' => {
                out.push(Tok::Eq);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Tok::Neq);
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    out.push(Tok::Le);
                    i += 2;
                }
                Some(&b'>') => {
                    out.push(Tok::Neq);
                    i += 2;
                }
                _ => {
                    out.push(Tok::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Ge);
                    i += 2;
                } else {
                    out.push(Tok::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(err(i, "unterminated string literal".into()));
                }
                out.push(Tok::Str(src[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.')
                {
                    i += 1;
                }
                let text = &src[start..i];
                out.push(Tok::Number(text.parse().map_err(|e| {
                    err(start, format!("bad number {text:?}: {e}"))
                })?));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_alphanumeric() || b == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Tok::Ident(src[start..i].to_string()));
            }
            other => return Err(err(i, format!("unexpected character {other:?}"))),
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser + AST
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum SqlExpr {
    Column(String),
    Number(f64),
    Str(String),
    Bin(char, Box<SqlExpr>, Box<SqlExpr>),
}

#[derive(Debug, Clone, PartialEq)]
struct Cond {
    lhs: SqlExpr,
    op: Tok,
    rhs: SqlExpr,
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    distinct: bool,
    /// `None` = `SELECT *`.
    items: Option<Vec<(SqlExpr, Option<String>)>>,
    table: String,
    conditions: Vec<Cond>,
}

impl SelectStatement {
    /// The table this statement reads.
    pub fn table(&self) -> &str {
        &self.table
    }
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn err(&self, reason: String) -> StorageError {
        StorageError::CsvParse { line: self.pos, reason }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), StorageError> {
        if self.keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, StorageError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expr(&mut self) -> Result<SqlExpr, StorageError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => '+',
                Some(Tok::Minus) => '-',
                _ => break,
            };
            self.pos += 1;
            let rhs = self.term()?;
            lhs = SqlExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<SqlExpr, StorageError> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => '*',
                Some(Tok::Slash) => '/',
                _ => break,
            };
            self.pos += 1;
            let rhs = self.factor()?;
            lhs = SqlExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<SqlExpr, StorageError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(SqlExpr::Column(s)),
            Some(Tok::Number(v)) => Ok(SqlExpr::Number(v)),
            Some(Tok::Str(s)) => Ok(SqlExpr::Str(s)),
            Some(Tok::Minus) => {
                let inner = self.factor()?;
                Ok(SqlExpr::Bin('-', Box::new(SqlExpr::Number(0.0)), Box::new(inner)))
            }
            Some(Tok::LParen) => {
                let e = self.expr()?;
                match self.bump() {
                    Some(Tok::RParen) => Ok(e),
                    other => Err(self.err(format!("expected ')', found {other:?}"))),
                }
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

/// Parses a SELECT statement.
pub fn parse_select(src: &str) -> Result<SelectStatement, StorageError> {
    let mut p = P { toks: lex(src)?, pos: 0 };
    p.expect_keyword("SELECT")?;
    let distinct = p.keyword("DISTINCT");
    let items = if p.peek() == Some(&Tok::Star) {
        p.pos += 1;
        None
    } else {
        let mut items = Vec::new();
        loop {
            let e = p.expr()?;
            let alias = if p.keyword("AS") { Some(p.ident()?) } else { None };
            items.push((e, alias));
            if p.peek() == Some(&Tok::Comma) {
                p.pos += 1;
            } else {
                break;
            }
        }
        Some(items)
    };
    p.expect_keyword("FROM")?;
    let table = p.ident()?;
    let mut conditions = Vec::new();
    if p.keyword("WHERE") {
        loop {
            let lhs = p.expr()?;
            let op = match p.bump() {
                Some(t @ (Tok::Eq | Tok::Neq | Tok::Lt | Tok::Le | Tok::Gt | Tok::Ge)) => t,
                other => {
                    return Err(p.err(format!("expected comparison operator, found {other:?}")))
                }
            };
            let rhs = p.expr()?;
            conditions.push(Cond { lhs, op, rhs });
            if !p.keyword("AND") {
                break;
            }
        }
    }
    if p.pos != p.toks.len() {
        return Err(p.err(format!("trailing input at token {:?}", p.peek())));
    }
    Ok(SelectStatement { distinct, items, table, conditions })
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

fn eval_expr(e: &SqlExpr, table: &Table, row: &[Value]) -> Result<Value, StorageError> {
    match e {
        SqlExpr::Number(v) => Ok(Value::Float(*v)),
        SqlExpr::Str(s) => Ok(Value::Str(s.clone())),
        SqlExpr::Column(name) => {
            let idx = table.schema().index_of(name).ok_or_else(|| {
                StorageError::ColumnNotFound {
                    table: table.name().to_string(),
                    column: name.clone(),
                }
            })?;
            Ok(row[idx].clone())
        }
        SqlExpr::Bin(op, lhs, rhs) => {
            let l = eval_expr(lhs, table, row)?.as_float()?;
            let r = eval_expr(rhs, table, row)?.as_float()?;
            Ok(Value::Float(match op {
                '+' => l + r,
                '-' => l - r,
                '*' => l * r,
                '/' => l / r,
                _ => unreachable!("parser only emits + - * /"),
            }))
        }
    }
}

fn eval_cond(c: &Cond, table: &Table, row: &[Value]) -> Result<bool, StorageError> {
    let l = eval_expr(&c.lhs, table, row)?;
    let r = eval_expr(&c.rhs, table, row)?;
    // Strings compare as strings; everything else numerically.
    let cmp = match (&l, &r) {
        (Value::Str(a), Value::Str(b)) => a.cmp(b),
        _ => l.as_float()?.total_cmp(&r.as_float()?),
    };
    Ok(match c.op {
        Tok::Eq => cmp == std::cmp::Ordering::Equal,
        Tok::Neq => cmp != std::cmp::Ordering::Equal,
        Tok::Lt => cmp == std::cmp::Ordering::Less,
        Tok::Le => cmp != std::cmp::Ordering::Greater,
        Tok::Gt => cmp == std::cmp::Ordering::Greater,
        Tok::Ge => cmp != std::cmp::Ordering::Less,
        _ => unreachable!("parser only emits comparison operators here"),
    })
}

fn default_name(e: &SqlExpr, i: usize) -> String {
    match e {
        SqlExpr::Column(c) => c.clone(),
        _ => format!("col{i}"),
    }
}

/// Executes a parsed statement against a table.
pub fn execute(stmt: &SelectStatement, table: &Table) -> Result<QueryResult, StorageError> {
    let columns: Vec<String> = match &stmt.items {
        None => table.schema().columns().iter().map(|c| c.name.clone()).collect(),
        Some(items) => items
            .iter()
            .enumerate()
            .map(|(i, (e, alias))| alias.clone().unwrap_or_else(|| default_name(e, i)))
            .collect(),
    };
    let mut rows = Vec::new();
    'rows: for row in table.scan() {
        for c in &stmt.conditions {
            if !eval_cond(c, table, row)? {
                continue 'rows;
            }
        }
        let out = match &stmt.items {
            None => row.clone(),
            Some(items) => items
                .iter()
                .map(|(e, _)| eval_expr(e, table, row))
                .collect::<Result<Vec<_>, _>>()?,
        };
        rows.push(out);
    }
    if stmt.distinct {
        // DISTINCT by rendered form: Value is not Hash (floats), and the
        // rendered form is exactly what a client would compare.
        let mut seen = std::collections::HashSet::new();
        rows.retain(|r| {
            let key = r.iter().map(Value::to_csv_field).collect::<Vec<_>>().join("\u{1}");
            seen.insert(key)
        });
    }
    Ok(QueryResult { columns, rows })
}

/// Parses and executes a statement against a table in one call.
pub fn query(table: &Table, sql: &str) -> Result<QueryResult, StorageError> {
    let stmt = parse_select(sql)?;
    if stmt.table != table.name() {
        return Err(StorageError::TableNotFound(stmt.table));
    }
    execute(&stmt, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Column, Schema};
    use crate::value::ColumnType;

    fn statistics_table() -> Table {
        let schema = Schema::new(vec![
            Column::new("areaId", ColumnType::Str),
            Column::new("currentHour", ColumnType::Int),
            Column::new("dateType", ColumnType::Str),
            Column::new("attr_mean", ColumnType::Float),
            Column::new("attr_stdv", ColumnType::Float),
        ])
        .unwrap();
        let mut t = Table::new("statistics_delay", schema);
        for (area, hour, day, mean, stdv) in [
            ("R1", 8, "weekday", 60.0, 20.0),
            ("R1", 9, "weekday", 80.0, 25.0),
            ("R2", 8, "weekday", 90.0, 30.0),
            ("R2", 8, "weekend", 30.0, 10.0),
            // A duplicate row, to exercise DISTINCT.
            ("R2", 8, "weekend", 30.0, 10.0),
        ] {
            t.insert(vec![
                Value::from(area),
                Value::Int(hour),
                Value::from(day),
                Value::Float(mean),
                Value::Float(stdv),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn listing2_runs_verbatim() {
        // The paper's Listing 2 with s = 1 substituted.
        let t = statistics_table();
        let result = query(
            &t,
            "SELECT DISTINCT attr_mean + 1*attr_stdv as thresholdLocation, \
             currentHour, dateType, areaId FROM statistics_delay",
        )
        .unwrap();
        assert_eq!(
            result.columns,
            vec!["thresholdLocation", "currentHour", "dateType", "areaId"]
        );
        // 5 rows minus the duplicate.
        assert_eq!(result.rows.len(), 4);
        let r1 = result
            .rows
            .iter()
            .find(|r| r[3] == Value::from("R1") && r[1] == Value::Int(8))
            .unwrap();
        assert_eq!(r1[0], Value::Float(80.0)); // 60 + 1·20
    }

    #[test]
    fn select_star_and_where() {
        let t = statistics_table();
        let result = query(
            &t,
            "SELECT * FROM statistics_delay WHERE dateType = 'weekday' AND currentHour = 8",
        )
        .unwrap();
        assert_eq!(result.columns.len(), 5);
        assert_eq!(result.rows.len(), 2);
        for r in &result.rows {
            assert_eq!(r[2], Value::from("weekday"));
        }
    }

    #[test]
    fn arithmetic_and_comparisons() {
        let t = statistics_table();
        let result = query(
            &t,
            "SELECT areaId, attr_mean * 2 - 10 AS doubled FROM statistics_delay \
             WHERE attr_mean >= 80",
        )
        .unwrap();
        assert_eq!(result.rows.len(), 2);
        assert_eq!(result.columns[1], "doubled");
        for r in &result.rows {
            assert!(r[1].as_float().unwrap() >= 150.0);
        }
    }

    #[test]
    fn parenthesized_precedence() {
        let t = statistics_table();
        let a = query(&t, "SELECT attr_mean + 2 * attr_stdv FROM statistics_delay WHERE areaId = 'R1' AND currentHour = 8").unwrap();
        assert_eq!(a.rows[0][0], Value::Float(100.0)); // 60 + (2·20)
        let b = query(&t, "SELECT (attr_mean + 2) * attr_stdv FROM statistics_delay WHERE areaId = 'R1' AND currentHour = 8").unwrap();
        assert_eq!(b.rows[0][0], Value::Float(1240.0)); // (60+2)·20
    }

    #[test]
    fn negative_literals() {
        let t = statistics_table();
        let r = query(&t, "SELECT areaId FROM statistics_delay WHERE attr_mean > -100").unwrap();
        assert_eq!(r.rows.len(), t.len());
    }

    #[test]
    fn errors_are_reported() {
        let t = statistics_table();
        assert!(query(&t, "SELECT nope FROM statistics_delay").is_err());
        assert!(query(&t, "SELECT * FROM other_table").is_err());
        assert!(query(&t, "SELECT FROM statistics_delay").is_err());
        assert!(query(&t, "SELECT * FROM statistics_delay WHERE").is_err());
        assert!(query(&t, "SELECT * FROM statistics_delay trailing").is_err());
        assert!(query(&t, "SELECT * FROM statistics_delay WHERE areaId ~ 3").is_err());
        // String/number comparison is a type error.
        assert!(query(&t, "SELECT * FROM statistics_delay WHERE areaId > 3").is_err());
    }

    #[test]
    fn keywords_case_insensitive() {
        let t = statistics_table();
        let r = query(&t, "select distinct areaId from statistics_delay").unwrap();
        assert_eq!(r.rows.len(), 2);
    }
}
