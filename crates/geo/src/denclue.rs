//! DENCLUE density-based clustering (Hinneburg & Keim, KDD'98), as applied
//! by the paper to noisy bus-stop reports (Section 4.1.2).
//!
//! The paper's procedure: place a 2-dimensional Gaussian with σ = 20 m at
//! every GPS location where a bus reported reaching a stop; sum the
//! Gaussians into a global density function; hill-climb each data point to
//! its local density maximum (its *density attractor*); and merge points
//! whose attractors lie close together into one cluster.
//!
//! This implementation works in a local planar projection (metres) around
//! the data's centroid, which is accurate at city scale, and uses a spatial
//! grid of cell size 4σ so each density/gradient evaluation only visits
//! nearby points (the Gaussian kernel is negligible beyond ~4σ).

// `!(x > 0.0)` is used deliberately in validations: unlike `x <= 0.0`
// it also rejects NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

use crate::error::GeoError;
use crate::point::GeoPoint;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration for a DENCLUE run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DenclueConfig {
    /// Gaussian kernel bandwidth σ in metres. The paper uses 20 m.
    pub sigma_m: f64,
    /// Attractors closer than this distance (metres) are merged into one
    /// cluster. A multiple of σ is customary; 2σ by default.
    pub merge_distance_m: f64,
    /// Hill-climbing step scale; the climb moves to the kernel-weighted
    /// mean of the neighbourhood (mean-shift), so this is an iteration cap.
    pub max_iterations: usize,
    /// Convergence threshold in metres: stop climbing when the move is
    /// smaller than this.
    pub convergence_m: f64,
    /// Minimum density (in kernel-sum units) an attractor needs for its
    /// points to be clustered; points attracted to lower-density maxima are
    /// labelled noise. Set to 0.0 to keep everything.
    pub min_density: f64,
}

impl Default for DenclueConfig {
    fn default() -> Self {
        DenclueConfig {
            sigma_m: 20.0,
            merge_distance_m: 40.0,
            max_iterations: 100,
            convergence_m: 0.05,
            min_density: 0.0,
        }
    }
}

/// One cluster produced by DENCLUE.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cluster {
    /// Cluster id, dense `0..n`.
    pub id: usize,
    /// Density attractor the members climbed to (projected back to WGS-84).
    pub attractor: GeoPoint,
    /// Density value at the attractor.
    pub density: f64,
    /// Indices into the input slice of the member points.
    pub members: Vec<usize>,
}

impl Cluster {
    /// Centroid of the member points (not the attractor).
    pub fn centroid(&self, points: &[GeoPoint]) -> GeoPoint {
        let n = self.members.len().max(1) as f64;
        let (mut lat, mut lon) = (0.0, 0.0);
        for &i in &self.members {
            lat += points[i].lat;
            lon += points[i].lon;
        }
        GeoPoint { lat: lat / n, lon: lon / n }
    }
}

/// Result of a clustering run: clusters plus noise points.
#[derive(Debug, Clone)]
pub struct ClusteringResult {
    /// Clusters, ordered by descending member count.
    pub clusters: Vec<Cluster>,
    /// Indices of input points that were not assigned to any cluster.
    pub noise: Vec<usize>,
}

/// DENCLUE clustering engine.
#[derive(Debug, Clone)]
pub struct Denclue {
    config: DenclueConfig,
}

/// Planar projection of the inputs: metres east/north of the centroid.
struct Projection {
    lat0: f64,
    lon0: f64,
    m_per_deg_lat: f64,
    m_per_deg_lon: f64,
}

impl Projection {
    fn fit(points: &[GeoPoint]) -> Projection {
        let n = points.len() as f64;
        let lat0 = points.iter().map(|p| p.lat).sum::<f64>() / n;
        let lon0 = points.iter().map(|p| p.lon).sum::<f64>() / n;
        Projection {
            lat0,
            lon0,
            m_per_deg_lat: 111_320.0,
            m_per_deg_lon: 111_320.0 * lat0.to_radians().cos(),
        }
    }

    fn to_xy(&self, p: &GeoPoint) -> (f64, f64) {
        (
            (p.lon - self.lon0) * self.m_per_deg_lon,
            (p.lat - self.lat0) * self.m_per_deg_lat,
        )
    }

    fn to_geo(&self, x: f64, y: f64) -> GeoPoint {
        GeoPoint {
            lat: self.lat0 + y / self.m_per_deg_lat,
            lon: self.lon0 + x / self.m_per_deg_lon,
        }
    }
}

/// Uniform grid over projected points for O(1) neighbourhood queries.
struct Grid {
    cell: f64,
    cells: HashMap<(i64, i64), Vec<usize>>,
}

impl Grid {
    fn build(xy: &[(f64, f64)], cell: f64) -> Grid {
        let mut cells: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        for (i, &(x, y)) in xy.iter().enumerate() {
            cells
                .entry(((x / cell).floor() as i64, (y / cell).floor() as i64))
                .or_default()
                .push(i);
        }
        Grid { cell, cells }
    }

    /// Indices of points in the 3×3 cell neighbourhood of (x, y).
    fn neighbours(&self, x: f64, y: f64, out: &mut Vec<usize>) {
        out.clear();
        let cx = (x / self.cell).floor() as i64;
        let cy = (y / self.cell).floor() as i64;
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(v) = self.cells.get(&(cx + dx, cy + dy)) {
                    out.extend_from_slice(v);
                }
            }
        }
    }
}

impl Denclue {
    /// Creates an engine, validating the configuration.
    pub fn new(config: DenclueConfig) -> Result<Self, GeoError> {
        if !(config.sigma_m > 0.0) {
            return Err(GeoError::InvalidClusteringConfig {
                reason: format!("sigma_m must be positive, got {}", config.sigma_m),
            });
        }
        if !(config.merge_distance_m > 0.0) {
            return Err(GeoError::InvalidClusteringConfig {
                reason: format!("merge_distance_m must be positive, got {}", config.merge_distance_m),
            });
        }
        if config.max_iterations == 0 {
            return Err(GeoError::InvalidClusteringConfig {
                reason: "max_iterations must be at least 1".into(),
            });
        }
        Ok(Denclue { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> DenclueConfig {
        self.config
    }

    /// Clusters the given points.
    pub fn cluster(&self, points: &[GeoPoint]) -> Result<ClusteringResult, GeoError> {
        if points.is_empty() {
            return Err(GeoError::EmptyInput { what: "DENCLUE input points" });
        }
        let proj = Projection::fit(points);
        let xy: Vec<(f64, f64)> = points.iter().map(|p| proj.to_xy(p)).collect();
        // Kernel support: contributions beyond 4σ are < e^-8 ≈ 3e-4 and are
        // ignored; a 4σ grid cell means the 3×3 neighbourhood covers them.
        let grid = Grid::build(&xy, 4.0 * self.config.sigma_m);
        let inv_2s2 = 1.0 / (2.0 * self.config.sigma_m * self.config.sigma_m);

        let mut scratch = Vec::new();
        let mut attractors = Vec::with_capacity(points.len());
        let mut densities = Vec::with_capacity(points.len());
        for &(sx, sy) in &xy {
            let (mut x, mut y) = (sx, sy);
            let mut density = 0.0;
            for _ in 0..self.config.max_iterations {
                // Mean-shift step: move to the kernel-weighted mean of the
                // neighbourhood; fixed points of this map are the local
                // maxima (density attractors) of the kernel sum.
                grid.neighbours(x, y, &mut scratch);
                let (mut wx, mut wy, mut w) = (0.0, 0.0, 0.0);
                for &j in &scratch {
                    let (px, py) = xy[j];
                    let d2 = (px - x) * (px - x) + (py - y) * (py - y);
                    let k = (-d2 * inv_2s2).exp();
                    wx += k * px;
                    wy += k * py;
                    w += k;
                }
                density = w;
                if w <= f64::MIN_POSITIVE {
                    break;
                }
                let (nx, ny) = (wx / w, wy / w);
                let step2 = (nx - x) * (nx - x) + (ny - y) * (ny - y);
                x = nx;
                y = ny;
                if step2.sqrt() < self.config.convergence_m {
                    break;
                }
            }
            attractors.push((x, y));
            densities.push(density);
        }

        // Merge attractors closer than merge_distance via union-find.
        let mut parent: Vec<usize> = (0..points.len()).collect();
        fn find(parent: &mut [usize], i: usize) -> usize {
            let mut r = i;
            while parent[r] != r {
                r = parent[r];
            }
            let mut c = i;
            while parent[c] != r {
                let next = parent[c];
                parent[c] = r;
                c = next;
            }
            r
        }
        let merge2 = self.config.merge_distance_m * self.config.merge_distance_m;
        let agrid = Grid::build(&attractors, self.config.merge_distance_m.max(1e-9));
        let mut neigh = Vec::new();
        for (i, &(ax, ay)) in attractors.iter().enumerate() {
            agrid.neighbours(ax, ay, &mut neigh);
            for &j in &neigh {
                if j <= i {
                    continue;
                }
                let (bx, by) = attractors[j];
                if (ax - bx) * (ax - bx) + (ay - by) * (ay - by) <= merge2 {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }

        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..points.len() {
            let r = find(&mut parent, i);
            groups.entry(r).or_default().push(i);
        }

        let mut clusters = Vec::new();
        let mut noise = Vec::new();
        for (_, members) in groups {
            // Representative attractor: the member with the highest density.
            let &peak = members
                .iter()
                .max_by(|&&a, &&b| densities[a].total_cmp(&densities[b]))
                .expect("groups are non-empty");
            if densities[peak] < self.config.min_density {
                noise.extend(members);
                continue;
            }
            let (ax, ay) = attractors[peak];
            clusters.push(Cluster {
                id: 0, // assigned after sorting
                attractor: proj.to_geo(ax, ay),
                density: densities[peak],
                members,
            });
        }
        clusters.sort_by(|a, b| {
            b.members
                .len()
                .cmp(&a.members.len())
                .then(a.attractor.lat.total_cmp(&b.attractor.lat))
                .then(a.attractor.lon.total_cmp(&b.attractor.lon))
        });
        for (i, c) in clusters.iter_mut().enumerate() {
            c.id = i;
        }
        noise.sort_unstable();
        Ok(ClusteringResult { clusters, noise })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Scatter `n` points with `spread_m` Gaussian-ish noise around centre.
    fn blob(rng: &mut StdRng, center: GeoPoint, n: usize, spread_m: f64) -> Vec<GeoPoint> {
        (0..n)
            .map(|_| {
                let bearing = rng.random_range(0.0..360.0);
                let dist = rng.random_range(0.0..spread_m);
                center.destination(bearing, dist)
            })
            .collect()
    }

    #[test]
    fn separates_well_spaced_blobs() {
        let mut rng = StdRng::seed_from_u64(7);
        let c1 = GeoPoint::new_unchecked(53.340, -6.260);
        let c2 = GeoPoint::new_unchecked(53.345, -6.250); // ~850 m apart
        let mut pts = blob(&mut rng, c1, 40, 15.0);
        pts.extend(blob(&mut rng, c2, 30, 15.0));
        let result = Denclue::new(DenclueConfig::default()).unwrap().cluster(&pts).unwrap();
        assert_eq!(result.clusters.len(), 2, "got {:?}", result.clusters.len());
        assert_eq!(result.clusters[0].members.len(), 40);
        assert_eq!(result.clusters[1].members.len(), 30);
        // Attractors land near the blob centres.
        assert!(result.clusters[0].attractor.haversine_m(&c1) < 30.0);
        assert!(result.clusters[1].attractor.haversine_m(&c2) < 30.0);
    }

    #[test]
    fn merges_nearby_blobs() {
        // Two blobs only 25 m apart with σ=20 m merge into one stop, which
        // is the paper's motivation: the same physical stop gets reported
        // at scattered locations.
        let mut rng = StdRng::seed_from_u64(11);
        let c1 = GeoPoint::new_unchecked(53.3400, -6.2600);
        let c2 = c1.destination(90.0, 25.0);
        let mut pts = blob(&mut rng, c1, 25, 8.0);
        pts.extend(blob(&mut rng, c2, 25, 8.0));
        let result = Denclue::new(DenclueConfig::default()).unwrap().cluster(&pts).unwrap();
        assert_eq!(result.clusters.len(), 1);
        assert_eq!(result.clusters[0].members.len(), 50);
    }

    #[test]
    fn every_point_is_clustered_or_noise() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut pts = blob(&mut rng, GeoPoint::new_unchecked(53.33, -6.27), 20, 10.0);
        pts.extend(blob(&mut rng, GeoPoint::new_unchecked(53.36, -6.22), 20, 10.0));
        let result = Denclue::new(DenclueConfig::default()).unwrap().cluster(&pts).unwrap();
        let mut seen = vec![false; pts.len()];
        for c in &result.clusters {
            for &m in &c.members {
                assert!(!seen[m], "point {m} assigned twice");
                seen[m] = true;
            }
        }
        for &m in &result.noise {
            assert!(!seen[m], "noise point {m} also clustered");
            seen[m] = true;
        }
        assert!(seen.iter().all(|&s| s), "every point accounted for");
    }

    #[test]
    fn min_density_marks_isolated_points_as_noise() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut pts = blob(&mut rng, GeoPoint::new_unchecked(53.34, -6.26), 50, 10.0);
        // A lone outlier 2 km away has density ≈ 1 (its own kernel).
        pts.push(GeoPoint::new_unchecked(53.36, -6.23));
        let cfg = DenclueConfig { min_density: 3.0, ..DenclueConfig::default() };
        let result = Denclue::new(cfg).unwrap().cluster(&pts).unwrap();
        assert_eq!(result.clusters.len(), 1);
        assert_eq!(result.noise, vec![50]);
    }

    #[test]
    fn single_point_forms_single_cluster() {
        let pts = vec![GeoPoint::new_unchecked(53.33, -6.26)];
        let result = Denclue::new(DenclueConfig::default()).unwrap().cluster(&pts).unwrap();
        assert_eq!(result.clusters.len(), 1);
        assert_eq!(result.clusters[0].members, vec![0]);
    }

    #[test]
    fn empty_input_is_an_error() {
        let err = Denclue::new(DenclueConfig::default()).unwrap().cluster(&[]);
        assert!(matches!(err, Err(GeoError::EmptyInput { .. })));
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Denclue::new(DenclueConfig { sigma_m: 0.0, ..Default::default() }).is_err());
        assert!(Denclue::new(DenclueConfig { sigma_m: -1.0, ..Default::default() }).is_err());
        assert!(
            Denclue::new(DenclueConfig { merge_distance_m: 0.0, ..Default::default() }).is_err()
        );
        assert!(Denclue::new(DenclueConfig { max_iterations: 0, ..Default::default() }).is_err());
    }

    #[test]
    fn cluster_ids_are_dense_and_ordered_by_size() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut pts = blob(&mut rng, GeoPoint::new_unchecked(53.32, -6.30), 10, 10.0);
        pts.extend(blob(&mut rng, GeoPoint::new_unchecked(53.35, -6.20), 30, 10.0));
        pts.extend(blob(&mut rng, GeoPoint::new_unchecked(53.38, -6.10), 20, 10.0));
        let result = Denclue::new(DenclueConfig::default()).unwrap().cluster(&pts).unwrap();
        assert_eq!(result.clusters.len(), 3);
        for (i, c) in result.clusters.iter().enumerate() {
            assert_eq!(c.id, i);
        }
        for w in result.clusters.windows(2) {
            assert!(w[0].members.len() >= w[1].members.len());
        }
    }
}
