//! Bus-stop recovery from noisy stop reports (Section 4.1.2).
//!
//! The raw data reports the same physical stop at scattered GPS positions,
//! marks buses as stopped while moving, and gives nearby stops different
//! ids. The paper's remedy, reproduced here:
//!
//! 1. run [DENCLUE](crate::denclue) over the positions where buses reported
//!    reaching a stop;
//! 2. split each cluster further by the **average entry angle** per
//!    (line, direction), so stops serving opposite travel directions become
//!    distinct sub-clusters;
//! 3. build a lookup tool that maps any new (line, direction, position) to
//!    its closest sub-cluster — which the rest of the system treats as
//!    *the* bus stop.

use crate::denclue::{Denclue, DenclueConfig};
use crate::error::GeoError;
use crate::point::{angle_diff_deg, circular_mean_deg, GeoPoint};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A raw "bus reached a stop" observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StopObservation {
    /// Bus line id.
    pub line_id: u32,
    /// Travel direction flag as reported by the vehicle.
    pub direction: bool,
    /// Reported position.
    pub position: GeoPoint,
    /// Bearing the bus had when it entered the stop area, degrees.
    pub entry_bearing_deg: f64,
}

/// A recovered bus stop (a direction sub-cluster in the paper's terms).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BusStop {
    /// Dense stop id assigned by the index.
    pub id: u32,
    /// DENCLUE cluster the stop came from.
    pub cluster_id: usize,
    /// Representative location (centroid of member observations).
    pub location: GeoPoint,
    /// Circular-mean entry bearing of the member observations.
    pub mean_bearing_deg: f64,
    /// (line, direction) pairs that were observed using this stop.
    pub serving: Vec<(u32, bool)>,
    /// Number of observations merged into this stop.
    pub observation_count: usize,
}

/// Parameters for the angle-based sub-clustering.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubclusterConfig {
    /// Two (line, direction) groups are placed in the same sub-cluster when
    /// their average entry bearings differ by at most this many degrees.
    pub angle_tolerance_deg: f64,
}

impl Default for SubclusterConfig {
    fn default() -> Self {
        SubclusterConfig { angle_tolerance_deg: 60.0 }
    }
}

/// Index of recovered bus stops supporting nearest-stop lookups.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BusStopIndex {
    stops: Vec<BusStop>,
    /// stop ids listed per (line, direction) for fast scoped lookup.
    by_line_dir: HashMap<(u32, bool), Vec<u32>>,
}

impl BusStopIndex {
    /// Builds the index from raw stop observations.
    pub fn build(
        observations: &[StopObservation],
        denclue: DenclueConfig,
        subcluster: SubclusterConfig,
    ) -> Result<Self, GeoError> {
        if observations.is_empty() {
            return Err(GeoError::EmptyInput { what: "stop observations" });
        }
        if !(subcluster.angle_tolerance_deg > 0.0 && subcluster.angle_tolerance_deg <= 180.0) {
            return Err(GeoError::InvalidClusteringConfig {
                reason: format!(
                    "angle_tolerance_deg must be in (0, 180], got {}",
                    subcluster.angle_tolerance_deg
                ),
            });
        }

        let positions: Vec<GeoPoint> = observations.iter().map(|o| o.position).collect();
        let result = Denclue::new(denclue)?.cluster(&positions)?;

        let mut stops: Vec<BusStop> = Vec::new();
        for cluster in &result.clusters {
            // Group member observations by (line, direction) and compute
            // each group's average entry angle.
            let mut groups: HashMap<(u32, bool), Vec<usize>> = HashMap::new();
            for &m in &cluster.members {
                let o = &observations[m];
                groups.entry((o.line_id, o.direction)).or_default().push(m);
            }
            let mut group_angles: Vec<((u32, bool), f64, Vec<usize>)> = groups
                .into_iter()
                .map(|(key, members)| {
                    let angles: Vec<f64> =
                        members.iter().map(|&m| observations[m].entry_bearing_deg).collect();
                    // A group whose bearings cancel exactly is pathological;
                    // fall back to the first observation's bearing.
                    let mean = circular_mean_deg(&angles)
                        .unwrap_or(observations[members[0]].entry_bearing_deg);
                    (key, mean, members)
                })
                .collect();
            // Deterministic order: by line, then direction.
            group_angles.sort_by_key(|(key, _, _)| *key);

            // Greedy angular agglomeration: each group joins the first
            // sub-cluster whose mean bearing is within tolerance.
            struct Sub {
                keys: Vec<(u32, bool)>,
                members: Vec<usize>,
                angles: Vec<f64>,
            }
            let mut subs: Vec<Sub> = Vec::new();
            for (key, mean, members) in group_angles {
                let hit = subs.iter_mut().find(|s| {
                    let smean = circular_mean_deg(&s.angles).unwrap_or(0.0);
                    angle_diff_deg(smean, mean) <= subcluster.angle_tolerance_deg
                });
                match hit {
                    Some(s) => {
                        s.keys.push(key);
                        s.angles.extend(members.iter().map(|&m| observations[m].entry_bearing_deg));
                        s.members.extend(members);
                    }
                    None => subs.push(Sub {
                        keys: vec![key],
                        angles: members
                            .iter()
                            .map(|&m| observations[m].entry_bearing_deg)
                            .collect(),
                        members,
                    }),
                }
            }

            for sub in subs {
                let n = sub.members.len() as f64;
                let (mut lat, mut lon) = (0.0, 0.0);
                for &m in &sub.members {
                    lat += observations[m].position.lat;
                    lon += observations[m].position.lon;
                }
                let mean_bearing = circular_mean_deg(&sub.angles).unwrap_or(0.0);
                stops.push(BusStop {
                    id: stops.len() as u32,
                    cluster_id: cluster.id,
                    location: GeoPoint { lat: lat / n, lon: lon / n },
                    mean_bearing_deg: mean_bearing,
                    serving: sub.keys,
                    observation_count: sub.members.len(),
                });
            }
        }

        let mut by_line_dir: HashMap<(u32, bool), Vec<u32>> = HashMap::new();
        for stop in &stops {
            for &key in &stop.serving {
                by_line_dir.entry(key).or_default().push(stop.id);
            }
        }
        Ok(BusStopIndex { stops, by_line_dir })
    }

    /// All recovered stops.
    pub fn stops(&self) -> &[BusStop] {
        &self.stops
    }

    /// Number of recovered stops.
    pub fn len(&self) -> usize {
        self.stops.len()
    }

    /// Whether the index is empty (never true for a built index).
    pub fn is_empty(&self) -> bool {
        self.stops.is_empty()
    }

    /// The stop with the given id.
    pub fn stop(&self, id: u32) -> Option<&BusStop> {
        self.stops.get(id as usize)
    }

    /// The paper's lookup tool: for a (line, direction, position) triple,
    /// the closest sub-cluster serving that line and direction. Falls back
    /// to the globally closest stop if the line/direction was never seen
    /// (new routes appear over time).
    pub fn closest_stop(&self, line_id: u32, direction: bool, position: &GeoPoint) -> Option<&BusStop> {
        let scoped = self.by_line_dir.get(&(line_id, direction));
        let candidates: Box<dyn Iterator<Item = &BusStop>> = match scoped {
            Some(ids) => Box::new(ids.iter().map(|&i| &self.stops[i as usize])),
            None => Box::new(self.stops.iter()),
        };
        candidates.min_by(|a, b| {
            position
                .approx_dist2(&a.location)
                .total_cmp(&position.approx_dist2(&b.location))
        })
    }

    /// The globally closest stop regardless of line/direction.
    pub fn closest_stop_any(&self, position: &GeoPoint) -> Option<&BusStop> {
        self.stops.iter().min_by(|a, b| {
            position
                .approx_dist2(&a.location)
                .total_cmp(&position.approx_dist2(&b.location))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn observations_at(
        rng: &mut StdRng,
        center: GeoPoint,
        line: u32,
        dir: bool,
        bearing: f64,
        n: usize,
    ) -> Vec<StopObservation> {
        (0..n)
            .map(|_| StopObservation {
                line_id: line,
                direction: dir,
                position: center.destination(rng.random_range(0.0..360.0), rng.random_range(0.0..10.0)),
                entry_bearing_deg: (bearing + rng.random_range(-10.0..10.0)).rem_euclid(360.0),
            })
            .collect()
    }

    #[test]
    fn opposite_directions_split_into_two_stops() {
        let mut rng = StdRng::seed_from_u64(21);
        let c = GeoPoint::new_unchecked(53.34, -6.26);
        // Same physical area, two travel directions ⇒ one DENCLUE cluster,
        // two angle sub-clusters.
        let mut obs = observations_at(&mut rng, c, 46, true, 85.0, 30);
        obs.extend(observations_at(&mut rng, c, 46, false, 265.0, 30));
        let idx =
            BusStopIndex::build(&obs, DenclueConfig::default(), SubclusterConfig::default())
                .unwrap();
        assert_eq!(idx.len(), 2);
        let a = idx.closest_stop(46, true, &c).unwrap();
        let b = idx.closest_stop(46, false, &c).unwrap();
        assert_ne!(a.id, b.id);
        assert!(angle_diff_deg(a.mean_bearing_deg, 85.0) < 15.0);
        assert!(angle_diff_deg(b.mean_bearing_deg, 265.0) < 15.0);
    }

    #[test]
    fn similar_angles_share_a_stop_across_lines() {
        let mut rng = StdRng::seed_from_u64(22);
        let c = GeoPoint::new_unchecked(53.35, -6.25);
        let mut obs = observations_at(&mut rng, c, 1, true, 90.0, 20);
        obs.extend(observations_at(&mut rng, c, 2, true, 100.0, 20));
        let idx =
            BusStopIndex::build(&obs, DenclueConfig::default(), SubclusterConfig::default())
                .unwrap();
        assert_eq!(idx.len(), 1);
        let stop = &idx.stops()[0];
        assert_eq!(stop.serving.len(), 2);
        assert_eq!(stop.observation_count, 40);
    }

    #[test]
    fn distinct_locations_make_distinct_stops() {
        let mut rng = StdRng::seed_from_u64(23);
        let c1 = GeoPoint::new_unchecked(53.34, -6.26);
        let c2 = c1.destination(90.0, 500.0);
        let mut obs = observations_at(&mut rng, c1, 1, true, 90.0, 20);
        obs.extend(observations_at(&mut rng, c2, 1, true, 90.0, 20));
        let idx =
            BusStopIndex::build(&obs, DenclueConfig::default(), SubclusterConfig::default())
                .unwrap();
        assert_eq!(idx.len(), 2);
        // Lookup near c2 resolves to the c2 stop.
        let near = idx.closest_stop(1, true, &c2.destination(0.0, 5.0)).unwrap();
        assert!(near.location.haversine_m(&c2) < 50.0);
    }

    #[test]
    fn unknown_line_falls_back_to_global_lookup() {
        let mut rng = StdRng::seed_from_u64(24);
        let c = GeoPoint::new_unchecked(53.33, -6.27);
        let obs = observations_at(&mut rng, c, 7, true, 45.0, 15);
        let idx =
            BusStopIndex::build(&obs, DenclueConfig::default(), SubclusterConfig::default())
                .unwrap();
        let got = idx.closest_stop(999, false, &c).unwrap();
        assert!(got.location.haversine_m(&c) < 50.0);
    }

    #[test]
    fn empty_observations_rejected() {
        let err =
            BusStopIndex::build(&[], DenclueConfig::default(), SubclusterConfig::default());
        assert!(matches!(err, Err(GeoError::EmptyInput { .. })));
    }

    #[test]
    fn invalid_angle_tolerance_rejected() {
        let mut rng = StdRng::seed_from_u64(25);
        let obs = observations_at(
            &mut rng,
            GeoPoint::new_unchecked(53.33, -6.27),
            1,
            true,
            0.0,
            5,
        );
        for bad in [0.0, -10.0, 200.0] {
            let err = BusStopIndex::build(
                &obs,
                DenclueConfig::default(),
                SubclusterConfig { angle_tolerance_deg: bad },
            );
            assert!(err.is_err(), "tolerance {bad} should be rejected");
        }
    }

    #[test]
    fn stop_ids_are_dense() {
        let mut rng = StdRng::seed_from_u64(26);
        let c1 = GeoPoint::new_unchecked(53.34, -6.26);
        let c2 = c1.destination(90.0, 400.0);
        let mut obs = observations_at(&mut rng, c1, 1, true, 90.0, 10);
        obs.extend(observations_at(&mut rng, c1, 1, false, 270.0, 10));
        obs.extend(observations_at(&mut rng, c2, 2, true, 0.0, 10));
        let idx =
            BusStopIndex::build(&obs, DenclueConfig::default(), SubclusterConfig::default())
                .unwrap();
        for (i, s) in idx.stops().iter().enumerate() {
            assert_eq!(s.id as usize, i);
            assert_eq!(idx.stop(s.id).unwrap().id, s.id);
        }
    }
}
