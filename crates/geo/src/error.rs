//! Error types for the spatial substrate.

use std::fmt;

/// Errors produced by the spatial substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// A coordinate was outside the valid WGS-84 range or not finite.
    InvalidCoordinate {
        /// The offending latitude.
        lat: f64,
        /// The offending longitude.
        lon: f64,
    },
    /// A bounding box was constructed with inverted corners.
    InvalidBoundingBox {
        /// What went wrong.
        reason: String,
    },
    /// A quadtree was configured with impossible parameters.
    InvalidQuadtreeConfig {
        /// What went wrong.
        reason: String,
    },
    /// A clustering run was configured with impossible parameters.
    InvalidClusteringConfig {
        /// What went wrong.
        reason: String,
    },
    /// A point lookup fell outside the indexed area.
    OutOfBounds {
        /// The probed latitude.
        lat: f64,
        /// The probed longitude.
        lon: f64,
    },
    /// An operation needed data that was not provided (e.g. clustering an
    /// empty observation set).
    EmptyInput {
        /// What was empty.
        what: &'static str,
    },
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::InvalidCoordinate { lat, lon } => {
                write!(f, "invalid coordinate: lat={lat}, lon={lon}")
            }
            GeoError::InvalidBoundingBox { reason } => {
                write!(f, "invalid bounding box: {reason}")
            }
            GeoError::InvalidQuadtreeConfig { reason } => {
                write!(f, "invalid quadtree configuration: {reason}")
            }
            GeoError::InvalidClusteringConfig { reason } => {
                write!(f, "invalid clustering configuration: {reason}")
            }
            GeoError::OutOfBounds { lat, lon } => {
                write!(f, "point (lat={lat}, lon={lon}) is outside the indexed area")
            }
            GeoError::EmptyInput { what } => write!(f, "empty input: {what}"),
        }
    }
}

impl std::error::Error for GeoError {}
