//! The region quadtree used for hierarchical spatial decomposition
//! (Section 4.1.1 of the paper, Figure 6).
//!
//! The tree is built by inserting *seed points* (important coordinates of
//! the city — e.g. main road segments) and splitting every region that
//! holds more than a configured maximum into four equal quadrants. Seed
//! points are rarely uniform, so the resulting tree is unbalanced, exactly
//! as the paper observes.
//!
//! Rules reference the decomposition in two ways (Section 4.1.1): by
//! **layer** (tree depth — layer 0 is the root covering the whole city) or
//! by an explicit **area of interest** (a bounding box). Both lookups are
//! supported here.

use crate::error::GeoError;
use crate::point::{BoundingBox, GeoPoint};
use serde::{Deserialize, Serialize};

/// Identifier of a region within the quadtree. Stable across lookups for
/// the lifetime of the tree; node ids index into the internal arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegionId(pub u32);

impl std::fmt::Display for RegionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Construction parameters for [`RegionQuadtree`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuadtreeConfig {
    /// Maximum number of seed points a region may hold before splitting.
    pub max_points_per_region: usize,
    /// Hard cap on tree depth to bound degenerate inputs (duplicated seed
    /// points would otherwise split forever).
    pub max_depth: u8,
}

impl Default for QuadtreeConfig {
    fn default() -> Self {
        QuadtreeConfig { max_points_per_region: 8, max_depth: 10 }
    }
}

/// One region (node) of the quadtree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Region {
    /// This region's id.
    pub id: RegionId,
    /// Spatial extent.
    pub bbox: BoundingBox,
    /// Tree depth; the root is layer 0.
    pub layer: u8,
    /// Parent region, `None` for the root.
    pub parent: Option<RegionId>,
    /// Child regions (`[SW, SE, NW, NE]`), empty for leaves.
    pub children: Vec<RegionId>,
    /// Number of seed points that fell in this region during construction.
    pub seed_count: usize,
}

impl Region {
    /// Whether this region is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// An unbalanced region quadtree over a geographic bounding box.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionQuadtree {
    nodes: Vec<Region>,
    root_bbox: BoundingBox,
    config: QuadtreeConfig,
    max_layer: u8,
}

impl RegionQuadtree {
    /// Builds the quadtree from seed points.
    ///
    /// Points outside `bbox` are rejected with [`GeoError::OutOfBounds`];
    /// the paper's seed points (main road segments) are all within the city
    /// extent by construction.
    pub fn build(
        bbox: BoundingBox,
        seeds: &[GeoPoint],
        config: QuadtreeConfig,
    ) -> Result<Self, GeoError> {
        if config.max_points_per_region == 0 {
            return Err(GeoError::InvalidQuadtreeConfig {
                reason: "max_points_per_region must be at least 1".into(),
            });
        }
        if config.max_depth == 0 {
            return Err(GeoError::InvalidQuadtreeConfig {
                reason: "max_depth must be at least 1".into(),
            });
        }
        for p in seeds {
            if !bbox.contains_inclusive(p) {
                return Err(GeoError::OutOfBounds { lat: p.lat, lon: p.lon });
            }
        }

        let mut tree = RegionQuadtree {
            nodes: vec![Region {
                id: RegionId(0),
                bbox,
                layer: 0,
                parent: None,
                children: Vec::new(),
                seed_count: seeds.len(),
            }],
            root_bbox: bbox,
            config,
            max_layer: 0,
        };

        // Recursive splitting, managed with an explicit stack of
        // (node, points-in-node) to avoid deep recursion.
        let mut stack: Vec<(RegionId, Vec<GeoPoint>)> = vec![(RegionId(0), seeds.to_vec())];
        while let Some((id, pts)) = stack.pop() {
            let (layer, bbox) = {
                let n = &tree.nodes[id.0 as usize];
                (n.layer, n.bbox)
            };
            if pts.len() <= config.max_points_per_region || layer >= config.max_depth {
                continue;
            }
            let quads = bbox.quadrants();
            let mut buckets: [Vec<GeoPoint>; 4] = Default::default();
            for p in pts {
                // contains() is half-open so interior points land in exactly
                // one quadrant; points on the outer north/east edge of the
                // root are assigned to the nearest quadrant.
                let mut placed = false;
                for (i, q) in quads.iter().enumerate() {
                    if q.contains(&p) {
                        buckets[i].push(p);
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    let i = usize::from(p.lat >= bbox.center().lat) * 2
                        + usize::from(p.lon >= bbox.center().lon);
                    buckets[i].push(p);
                }
            }
            for (i, q) in quads.iter().enumerate() {
                let child_id = RegionId(tree.nodes.len() as u32);
                tree.nodes.push(Region {
                    id: child_id,
                    bbox: *q,
                    layer: layer + 1,
                    parent: Some(id),
                    children: Vec::new(),
                    seed_count: buckets[i].len(),
                });
                tree.nodes[id.0 as usize].children.push(child_id);
                tree.max_layer = tree.max_layer.max(layer + 1);
                stack.push((child_id, std::mem::take(&mut buckets[i])));
            }
        }
        Ok(tree)
    }

    /// Bounding box covered by the tree.
    pub fn bbox(&self) -> BoundingBox {
        self.root_bbox
    }

    /// The configuration the tree was built with.
    pub fn config(&self) -> QuadtreeConfig {
        self.config
    }

    /// Deepest layer present in the tree.
    pub fn max_layer(&self) -> u8 {
        self.max_layer
    }

    /// Total number of regions (nodes) in the tree.
    pub fn region_count(&self) -> usize {
        self.nodes.len()
    }

    /// Looks up a region by id.
    pub fn region(&self, id: RegionId) -> Option<&Region> {
        self.nodes.get(id.0 as usize)
    }

    /// All regions at the given layer. Layer `k` only lists regions whose
    /// depth is exactly `k`; in an unbalanced tree a leaf at depth `j < k`
    /// covers its area for all deeper layers (see [`Self::locate_at_layer`]).
    pub fn regions_at_layer(&self, layer: u8) -> Vec<&Region> {
        self.nodes.iter().filter(|n| n.layer == layer).collect()
    }

    /// All leaf regions.
    pub fn leaves(&self) -> Vec<&Region> {
        self.nodes.iter().filter(|n| n.is_leaf()).collect()
    }

    /// The leaf region containing the point, or `None` if the point is
    /// outside the tree's extent.
    pub fn locate_leaf(&self, p: &GeoPoint) -> Option<&Region> {
        if !self.root_bbox.contains_inclusive(p) {
            return None;
        }
        let mut node = &self.nodes[0];
        'descend: while !node.is_leaf() {
            for &c in &node.children {
                let child = &self.nodes[c.0 as usize];
                if child.bbox.contains(p) || (child.bbox.contains_inclusive(p) && {
                    // Outer edge of the root: accept inclusive containment
                    // in the last (NE-most) matching child.
                    node.children.iter().all(|&o| {
                        o == c || !self.nodes[o.0 as usize].bbox.contains(p)
                    })
                }) {
                    node = child;
                    continue 'descend;
                }
            }
            // Numerically should not happen: quadrants tile the parent.
            return Some(node);
        }
        Some(node)
    }

    /// The region containing the point at the given layer. If the tree is
    /// shallower than `layer` at the point's location, the deepest
    /// enclosing region (a leaf) is returned — rules monitoring layer `k`
    /// treat a shallow leaf as its own descendant, matching the paper's
    /// hierarchical grouping (Section 4.2.2).
    pub fn locate_at_layer(&self, p: &GeoPoint, layer: u8) -> Option<&Region> {
        let leaf = self.locate_leaf(p)?;
        if leaf.layer <= layer {
            return Some(leaf);
        }
        let mut node = leaf;
        while node.layer > layer {
            let parent = node.parent.expect("non-root nodes have parents");
            node = &self.nodes[parent.0 as usize];
        }
        Some(node)
    }

    /// The chain of regions containing the point, from the root (layer 0)
    /// down to the leaf. This is what the AreaTracker bolt attaches to each
    /// bus trace (Section 4.3.2).
    pub fn locate_all_layers(&self, p: &GeoPoint) -> Vec<&Region> {
        let Some(leaf) = self.locate_leaf(p) else {
            return Vec::new();
        };
        let mut chain = Vec::with_capacity(leaf.layer as usize + 1);
        let mut node = leaf;
        loop {
            chain.push(node);
            match node.parent {
                Some(pid) => node = &self.nodes[pid.0 as usize],
                None => break,
            }
        }
        chain.reverse();
        chain
    }

    /// All leaf regions intersecting an explicit area of interest.
    pub fn leaves_in_area(&self, area: &BoundingBox) -> Vec<&Region> {
        let mut out = Vec::new();
        let mut stack = vec![RegionId(0)];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id.0 as usize];
            if !node.bbox.intersects(area) {
                continue;
            }
            if node.is_leaf() {
                out.push(node);
            } else {
                stack.extend(node.children.iter().copied());
            }
        }
        out
    }

    /// Iterates over all regions.
    pub fn iter(&self) -> impl Iterator<Item = &Region> {
        self.nodes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::DUBLIN_BBOX;

    fn grid_seeds(n: usize) -> Vec<GeoPoint> {
        // n × n grid of seeds inside Dublin, denser towards the centre.
        let mut pts = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let fi = (i as f64 + 0.5) / n as f64;
                let fj = (j as f64 + 0.5) / n as f64;
                // Square to pull seeds towards the SW (yields imbalance).
                let lat = DUBLIN_BBOX.min_lat
                    + fi * fi * (DUBLIN_BBOX.max_lat - DUBLIN_BBOX.min_lat);
                let lon = DUBLIN_BBOX.min_lon
                    + fj * fj * (DUBLIN_BBOX.max_lon - DUBLIN_BBOX.min_lon);
                pts.push(GeoPoint::new_unchecked(lat, lon));
            }
        }
        pts
    }

    #[test]
    fn build_splits_until_capacity() {
        let tree = RegionQuadtree::build(
            DUBLIN_BBOX,
            &grid_seeds(10),
            QuadtreeConfig { max_points_per_region: 4, max_depth: 12 },
        )
        .unwrap();
        for leaf in tree.leaves() {
            assert!(
                leaf.seed_count <= 4 || leaf.layer == 12,
                "leaf {} holds {} seeds at layer {}",
                leaf.id,
                leaf.seed_count,
                leaf.layer
            );
        }
    }

    #[test]
    fn unbalanced_seeds_make_unbalanced_tree() {
        let tree = RegionQuadtree::build(
            DUBLIN_BBOX,
            &grid_seeds(12),
            QuadtreeConfig { max_points_per_region: 4, max_depth: 12 },
        )
        .unwrap();
        let depths: Vec<u8> = tree.leaves().iter().map(|l| l.layer).collect();
        let min = depths.iter().min().unwrap();
        let max = depths.iter().max().unwrap();
        assert!(max > min, "skewed seeds should produce varying leaf depth");
    }

    #[test]
    fn every_point_maps_to_exactly_one_leaf() {
        let tree = RegionQuadtree::build(
            DUBLIN_BBOX,
            &grid_seeds(8),
            QuadtreeConfig::default(),
        )
        .unwrap();
        for p in grid_seeds(20) {
            let leaf = tree.locate_leaf(&p).expect("inside bbox");
            assert!(leaf.bbox.contains_inclusive(&p));
            assert!(leaf.is_leaf());
        }
    }

    #[test]
    fn locate_outside_returns_none() {
        let tree =
            RegionQuadtree::build(DUBLIN_BBOX, &grid_seeds(4), QuadtreeConfig::default()).unwrap();
        let p = GeoPoint::new_unchecked(54.0, -6.2);
        assert!(tree.locate_leaf(&p).is_none());
        assert!(tree.locate_at_layer(&p, 2).is_none());
    }

    #[test]
    fn layer_lookup_is_ancestor_of_leaf() {
        let tree = RegionQuadtree::build(
            DUBLIN_BBOX,
            &grid_seeds(10),
            QuadtreeConfig { max_points_per_region: 2, max_depth: 8 },
        )
        .unwrap();
        let p = GeoPoint::new_unchecked(53.30, -6.30);
        let leaf = tree.locate_leaf(&p).unwrap().id;
        for layer in 0..=tree.max_layer() {
            let r = tree.locate_at_layer(&p, layer).unwrap();
            assert!(r.layer <= layer || r.id == leaf);
            assert!(r.bbox.contains_inclusive(&p));
        }
        // Layer 0 is always the root.
        assert_eq!(tree.locate_at_layer(&p, 0).unwrap().id, RegionId(0));
    }

    #[test]
    fn locate_all_layers_is_root_to_leaf_chain() {
        let tree = RegionQuadtree::build(
            DUBLIN_BBOX,
            &grid_seeds(10),
            QuadtreeConfig { max_points_per_region: 2, max_depth: 8 },
        )
        .unwrap();
        let p = GeoPoint::new_unchecked(53.25, -6.40);
        let chain = tree.locate_all_layers(&p);
        assert!(!chain.is_empty());
        assert_eq!(chain[0].id, RegionId(0));
        assert!(chain.last().unwrap().is_leaf());
        for w in chain.windows(2) {
            assert_eq!(w[1].parent, Some(w[0].id));
            assert_eq!(w[1].layer, w[0].layer + 1);
        }
    }

    #[test]
    fn leaves_in_area_only_returns_intersecting() {
        let tree = RegionQuadtree::build(
            DUBLIN_BBOX,
            &grid_seeds(10),
            QuadtreeConfig { max_points_per_region: 2, max_depth: 8 },
        )
        .unwrap();
        let area = BoundingBox::new(53.30, -6.32, 53.36, -6.24).unwrap();
        let leaves = tree.leaves_in_area(&area);
        assert!(!leaves.is_empty());
        for l in &leaves {
            assert!(l.bbox.intersects(&area));
        }
        // The union of matching leaves covers the centre of the area.
        let c = area.center();
        assert!(leaves.iter().any(|l| l.bbox.contains_inclusive(&c)));
    }

    #[test]
    fn seed_outside_bbox_is_rejected() {
        let bad = vec![GeoPoint::new_unchecked(10.0, 10.0)];
        let err = RegionQuadtree::build(DUBLIN_BBOX, &bad, QuadtreeConfig::default());
        assert!(matches!(err, Err(GeoError::OutOfBounds { .. })));
    }

    #[test]
    fn zero_capacity_config_rejected() {
        let err = RegionQuadtree::build(
            DUBLIN_BBOX,
            &[],
            QuadtreeConfig { max_points_per_region: 0, max_depth: 4 },
        );
        assert!(matches!(err, Err(GeoError::InvalidQuadtreeConfig { .. })));
    }

    #[test]
    fn duplicate_seeds_bounded_by_max_depth() {
        // 100 identical points can never satisfy max_points_per_region=4;
        // the max_depth cap must stop the splitting.
        let p = GeoPoint::new_unchecked(53.33, -6.26);
        let seeds = vec![p; 100];
        let tree = RegionQuadtree::build(
            DUBLIN_BBOX,
            &seeds,
            QuadtreeConfig { max_points_per_region: 4, max_depth: 5 },
        )
        .unwrap();
        assert_eq!(tree.max_layer(), 5);
        let leaf = tree.locate_leaf(&p).unwrap();
        assert_eq!(leaf.seed_count, 100);
    }

    #[test]
    fn children_partition_parent_seed_counts() {
        let tree = RegionQuadtree::build(
            DUBLIN_BBOX,
            &grid_seeds(10),
            QuadtreeConfig { max_points_per_region: 4, max_depth: 10 },
        )
        .unwrap();
        for r in tree.iter() {
            if !r.is_leaf() {
                let sum: usize = r
                    .children
                    .iter()
                    .map(|&c| tree.region(c).unwrap().seed_count)
                    .sum();
                assert_eq!(sum, r.seed_count, "region {}", r.id);
            }
        }
    }
}
