//! Spatial substrate for the traffic management system.
//!
//! This crate provides the geometric building blocks the paper's off-line
//! computation component relies on (Section 4.1):
//!
//! * [`point`] — WGS-84 points, haversine distances, bearings and bounding
//!   boxes over the Dublin metropolitan area;
//! * [`quadtree`] — the **region quadtree** used for the hierarchical
//!   decomposition of the city map (Section 4.1.1, Figure 6): regions split
//!   into four equal quadrants until each holds at most a configured number
//!   of seed points, producing the (possibly unbalanced) layer structure the
//!   Esper rules reference;
//! * [`denclue`] — the **DENCLUE** density-based clustering algorithm
//!   (Hinneburg & Keim, KDD'98) applied to noisy bus-stop reports
//!   (Section 4.1.2): a Gaussian kernel is placed on every observation, each
//!   point hill-climbs to its *density attractor*, and attractors that lie
//!   close together are merged into one cluster;
//! * [`busstops`] — the angle-based sub-clustering that separates travel
//!   directions inside a DENCLUE cluster and the nearest-stop lookup tool.

pub mod busstops;
pub mod denclue;
pub mod error;
pub mod point;
pub mod quadtree;

pub use busstops::{BusStop, BusStopIndex, StopObservation};
pub use denclue::{Cluster, Denclue, DenclueConfig};
pub use error::GeoError;
pub use point::{BoundingBox, GeoPoint, DUBLIN_BBOX};
pub use quadtree::{QuadtreeConfig, Region, RegionId, RegionQuadtree};
