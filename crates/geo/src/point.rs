//! WGS-84 points, distances, bearings and bounding boxes.

use crate::error::GeoError;
use serde::{Deserialize, Serialize};

/// Mean Earth radius in metres (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Bounding box covering the Dublin metropolitan area the dataset spans
/// (Figures 4 and 6 of the paper show trajectories within this extent).
pub const DUBLIN_BBOX: BoundingBox = BoundingBox {
    min_lat: 53.20,
    min_lon: -6.45,
    max_lat: 53.42,
    max_lon: -6.05,
};

/// A WGS-84 geographic point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point, validating the coordinate ranges.
    pub fn new(lat: f64, lon: f64) -> Result<Self, GeoError> {
        if !lat.is_finite() || !lon.is_finite() || !(-90.0..=90.0).contains(&lat)
            || !(-180.0..=180.0).contains(&lon)
        {
            return Err(GeoError::InvalidCoordinate { lat, lon });
        }
        Ok(GeoPoint { lat, lon })
    }

    /// Creates a point without range validation. Intended for constants and
    /// generated data already known to be in range.
    pub const fn new_unchecked(lat: f64, lon: f64) -> Self {
        GeoPoint { lat, lon }
    }

    /// Great-circle distance to `other` in metres (haversine formula).
    pub fn haversine_m(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2)
            + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Initial bearing from `self` towards `other`, in degrees `[0, 360)`.
    ///
    /// This is the "average angle when entering the cluster" quantity used
    /// to split DENCLUE clusters by travel direction (Section 4.1.2).
    pub fn bearing_deg(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlon = lon2 - lon1;
        let y = dlon.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
        let deg = y.atan2(x).to_degrees();
        (deg + 360.0) % 360.0
    }

    /// Destination point after travelling `distance_m` metres on the given
    /// initial bearing (degrees). Used by the synthetic route generator.
    pub fn destination(&self, bearing_deg: f64, distance_m: f64) -> GeoPoint {
        let delta = distance_m / EARTH_RADIUS_M;
        let theta = bearing_deg.to_radians();
        let lat1 = self.lat.to_radians();
        let lon1 = self.lon.to_radians();
        let lat2 =
            (lat1.sin() * delta.cos() + lat1.cos() * delta.sin() * theta.cos()).asin();
        let lon2 = lon1
            + (theta.sin() * delta.sin() * lat1.cos())
                .atan2(delta.cos() - lat1.sin() * lat2.sin());
        GeoPoint {
            lat: lat2.to_degrees(),
            lon: ((lon2.to_degrees() + 540.0) % 360.0) - 180.0,
        }
    }

    /// Fast approximate squared planar distance in degrees², with longitude
    /// scaled by `cos(lat)`. Adequate for comparisons inside a city-sized
    /// extent, where it is monotone in the true distance.
    pub fn approx_dist2(&self, other: &GeoPoint) -> f64 {
        let scale = ((self.lat + other.lat) * 0.5).to_radians().cos();
        let dlat = self.lat - other.lat;
        let dlon = (self.lon - other.lon) * scale;
        dlat * dlat + dlon * dlon
    }
}

/// The smallest absolute difference between two bearings, in `[0, 180]`.
pub fn angle_diff_deg(a: f64, b: f64) -> f64 {
    let d = (a - b).rem_euclid(360.0);
    if d > 180.0 {
        360.0 - d
    } else {
        d
    }
}

/// Circular mean of a set of bearings in degrees, `[0, 360)`.
///
/// Returns `None` for an empty slice or when the directions cancel out
/// exactly (the mean is undefined in that case).
pub fn circular_mean_deg(angles: &[f64]) -> Option<f64> {
    if angles.is_empty() {
        return None;
    }
    let (mut s, mut c) = (0.0, 0.0);
    for a in angles {
        s += a.to_radians().sin();
        c += a.to_radians().cos();
    }
    if s.abs() < 1e-12 && c.abs() < 1e-12 {
        return None;
    }
    Some((s.atan2(c).to_degrees() + 360.0) % 360.0)
}

/// An axis-aligned geographic bounding box.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Southern edge, degrees latitude.
    pub min_lat: f64,
    /// Western edge, degrees longitude.
    pub min_lon: f64,
    /// Northern edge, degrees latitude.
    pub max_lat: f64,
    /// Eastern edge, degrees longitude.
    pub max_lon: f64,
}

impl BoundingBox {
    /// Creates a bounding box, validating corner ordering.
    pub fn new(min_lat: f64, min_lon: f64, max_lat: f64, max_lon: f64) -> Result<Self, GeoError> {
        if !(min_lat < max_lat && min_lon < max_lon)
            || [min_lat, min_lon, max_lat, max_lon].iter().any(|v| !v.is_finite())
        {
            return Err(GeoError::InvalidBoundingBox {
                reason: format!(
                    "corners must be finite and ordered: ({min_lat},{min_lon})..({max_lat},{max_lon})"
                ),
            });
        }
        Ok(BoundingBox { min_lat, min_lon, max_lat, max_lon })
    }

    /// Whether the point lies inside (min-inclusive, max-exclusive, so
    /// quadrants tile the parent without overlap).
    pub fn contains(&self, p: &GeoPoint) -> bool {
        p.lat >= self.min_lat && p.lat < self.max_lat && p.lon >= self.min_lon && p.lon < self.max_lon
    }

    /// Whether the point lies inside with both bounds inclusive. Used for
    /// the root region so the north/east box edges are not lost.
    pub fn contains_inclusive(&self, p: &GeoPoint) -> bool {
        p.lat >= self.min_lat
            && p.lat <= self.max_lat
            && p.lon >= self.min_lon
            && p.lon <= self.max_lon
    }

    /// The centre of the box.
    pub fn center(&self) -> GeoPoint {
        GeoPoint {
            lat: (self.min_lat + self.max_lat) * 0.5,
            lon: (self.min_lon + self.max_lon) * 0.5,
        }
    }

    /// Splits the box into four equal quadrants, ordered `[SW, SE, NW, NE]`.
    pub fn quadrants(&self) -> [BoundingBox; 4] {
        let c = self.center();
        [
            BoundingBox { min_lat: self.min_lat, min_lon: self.min_lon, max_lat: c.lat, max_lon: c.lon },
            BoundingBox { min_lat: self.min_lat, min_lon: c.lon, max_lat: c.lat, max_lon: self.max_lon },
            BoundingBox { min_lat: c.lat, min_lon: self.min_lon, max_lat: self.max_lat, max_lon: c.lon },
            BoundingBox { min_lat: c.lat, min_lon: c.lon, max_lat: self.max_lat, max_lon: self.max_lon },
        ]
    }

    /// Whether `other` intersects this box.
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.min_lat < other.max_lat
            && other.min_lat < self.max_lat
            && self.min_lon < other.max_lon
            && other.min_lon < self.max_lon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_known_distance() {
        // O'Connell Bridge to Heuston Station is roughly 2.4 km.
        let a = GeoPoint::new(53.3472, -6.2592).unwrap();
        let b = GeoPoint::new(53.3465, -6.2923).unwrap();
        let d = a.haversine_m(&b);
        assert!((1800.0..2800.0).contains(&d), "got {d}");
    }

    #[test]
    fn haversine_zero_for_same_point() {
        let a = GeoPoint::new(53.35, -6.26).unwrap();
        assert_eq!(a.haversine_m(&a), 0.0);
    }

    #[test]
    fn invalid_coordinates_rejected() {
        assert!(GeoPoint::new(91.0, 0.0).is_err());
        assert!(GeoPoint::new(0.0, 181.0).is_err());
        assert!(GeoPoint::new(f64::NAN, 0.0).is_err());
    }

    #[test]
    fn bearing_cardinal_directions() {
        let origin = GeoPoint::new(53.3, -6.3).unwrap();
        let north = GeoPoint::new(53.4, -6.3).unwrap();
        let east = GeoPoint::new(53.3, -6.2).unwrap();
        assert!(angle_diff_deg(origin.bearing_deg(&north), 0.0) < 1.0);
        assert!(angle_diff_deg(origin.bearing_deg(&east), 90.0) < 1.0);
    }

    #[test]
    fn destination_round_trip() {
        let origin = GeoPoint::new(53.33, -6.25).unwrap();
        let dest = origin.destination(45.0, 1000.0);
        let d = origin.haversine_m(&dest);
        assert!((d - 1000.0).abs() < 1.0, "distance was {d}");
        assert!(angle_diff_deg(origin.bearing_deg(&dest), 45.0) < 0.5);
    }

    #[test]
    fn angle_diff_wraps() {
        assert_eq!(angle_diff_deg(350.0, 10.0), 20.0);
        assert_eq!(angle_diff_deg(10.0, 350.0), 20.0);
        assert_eq!(angle_diff_deg(180.0, 0.0), 180.0);
    }

    #[test]
    fn circular_mean_handles_wraparound() {
        let m = circular_mean_deg(&[350.0, 10.0]).unwrap();
        assert!(angle_diff_deg(m, 0.0) < 1e-9, "mean was {m}");
        assert!(circular_mean_deg(&[]).is_none());
        // Opposite directions cancel out.
        assert!(circular_mean_deg(&[0.0, 180.0]).is_none());
    }

    #[test]
    fn bbox_quadrants_tile_parent() {
        let bb = DUBLIN_BBOX;
        let quads = bb.quadrants();
        let p = GeoPoint::new(53.30, -6.20).unwrap();
        let containing: Vec<_> = quads.iter().filter(|q| q.contains(&p)).collect();
        assert_eq!(containing.len(), 1, "each interior point is in exactly one quadrant");
        // Centre point belongs to exactly one quadrant (NE, by half-open rule).
        let c = bb.center();
        assert_eq!(quads.iter().filter(|q| q.contains(&c)).count(), 1);
    }

    #[test]
    fn bbox_rejects_inverted_corners() {
        assert!(BoundingBox::new(53.4, -6.0, 53.2, -6.4).is_err());
    }

    #[test]
    fn bbox_intersections() {
        let a = BoundingBox::new(0.0, 0.0, 2.0, 2.0).unwrap();
        let b = BoundingBox::new(1.0, 1.0, 3.0, 3.0).unwrap();
        let c = BoundingBox::new(2.5, 2.5, 3.5, 3.5).unwrap();
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }
}
