//! Facade crate re-exporting the whole traffic-insight workspace API.
pub use tms_batch as batch;
pub use tms_cep as cep;
pub use tms_core as core;
pub use tms_dsps as dsps;
pub use tms_geo as geo;
pub use tms_sim as sim;
pub use tms_storage as storage;
pub use tms_traffic as traffic;
