//! Causal-observability quickstart: run the traffic topology with tuple
//! lineage sampling every tree, then inspect the critical path, the
//! control-plane flight recorder, and a Chrome-loadable trace export.
//!
//! ```text
//! cargo run --release --example trace_quickstart
//! ```
//!
//! While it replays, the monitor also serves the scrape routes on
//! loopback port 9090 — from another shell:
//!
//! ```text
//! curl http://127.0.0.1:9090/trace -o trace.json   # chrome://tracing
//! curl http://127.0.0.1:9090/events                # flight recorder
//! ```
//!
//! After the run it writes `trace_quickstart.json` with the same Chrome
//! `trace_event` content rendered from the run report.

use std::time::Duration;
use traffic_insight::core::rules::{LocationSelector, RuleSpec};
use traffic_insight::core::system::{SystemConfig, TrafficSystem};
use traffic_insight::dsps::{lineage, LineageConfig, MonitorConfig};
use traffic_insight::traffic::{Attribute, FleetConfig, FleetGenerator, DAY_MS, HOUR_MS};

fn main() {
    let fleet = FleetConfig::small(2024);

    println!("generating history and bootstrapping...");
    let history_gen = FleetGenerator::new(fleet.clone(), 0).expect("valid fleet config");
    let seeds = history_gen.route_seed_points();
    let history: Vec<_> = history_gen.take_while(|t| t.timestamp_ms < 12 * HOUR_MS).collect();

    let config = SystemConfig {
        monitor: Some(MonitorConfig {
            window: Duration::from_secs(1),
            tracing: true,
            // Sample every tuple tree; production runs keep the default
            // 1% sample. Rings sized so this short replay can't drop.
            lineage: Some(LineageConfig { ring_capacity: 1 << 17, ..LineageConfig::full() }),
            expose: Some(9090),
            ..MonitorConfig::default()
        }),
        ..SystemConfig::default()
    };
    let system = TrafficSystem::bootstrap(traffic_insight::geo::DUBLIN_BBOX, &seeds, &history, config)
        .expect("bootstrap");

    let mut rule =
        RuleSpec::new("delay-leaves", Attribute::Delay, LocationSelector::QuadtreeLeaves, 10);
    rule.s = 2.0;

    println!("replaying day 1 morning rush with lineage sampling every tuple tree");
    println!("  (scrape live: curl http://127.0.0.1:9090/trace | /events | /metrics)");
    let live: Vec<_> = FleetGenerator::new(fleet, 1)
        .expect("valid fleet config")
        // Service starts at 06:00, so this replays the 06:00-10:00 rush.
        .take_while(|t| t.timestamp_ms < DAY_MS + 10 * HOUR_MS)
        .collect();
    let (_plan, report) = system.plan_and_run(live, &[rule], 2).expect("run");
    println!(
        "done: {} tuples processed, {} detections",
        report.metrics.iter().map(|w| w.throughput).sum::<u64>(),
        report.detections.len()
    );

    // ---- Critical-path attribution --------------------------------------
    let path = report.critical_path.as_ref().expect("lineage was on");
    println!(
        "\ncritical path over {} sampled trees ({} spans, {} dropped):",
        path.traces,
        path.spans,
        path.dropped_spans
    );
    for c in &path.components {
        println!(
            "  {:<16} queue {:>9}µs  compute {:>9}µs  replay {:>7}µs  ({} tuples)",
            c.component,
            c.queue_in_ns / 1_000,
            c.compute_ns / 1_000,
            c.replay_ns / 1_000,
            c.tuples
        );
    }
    if let Some(b) = &path.bottleneck {
        println!("  bottleneck: {b}");
    }

    // ---- Flight recorder -------------------------------------------------
    println!("\nflight recorder ({} control-plane events):", report.events.len());
    let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
    for e in &report.events {
        *counts.entry(e.kind.name()).or_default() += 1;
    }
    for (kind, n) in counts {
        println!("  {kind:<22} {n}");
    }

    // ---- Chrome export ---------------------------------------------------
    let chrome = lineage::render_chrome_trace(&report.traces, &report.trace_components);
    std::fs::write("trace_quickstart.json", &chrome).expect("writing trace_quickstart.json");
    println!(
        "\nwrote trace_quickstart.json ({} spans, {} KiB) — open in chrome://tracing",
        report.traces.len(),
        chrome.len() / 1024
    );
}
