//! Dynamic rules (Sections 4.1.3 and 4.3.1): the batch layer recomputes
//! per-location statistics, the storage medium publishes them, and the
//! running CEP engines swap their thresholds without a restart.
//!
//! ```text
//! cargo run --release --example dynamic_thresholds
//! ```
//!
//! The scenario: a road segment's "normal" delay level changes (think
//! roadworks finishing). Under the *old* thresholds the engine keeps
//! firing on traffic that is now perfectly normal; after the periodic
//! statistics job and `refresh_thresholds`, the same traffic is quiet and
//! only genuine anomalies fire.

use traffic_insight::core::rules::{LocationSelector, RuleSpec};
use traffic_insight::core::thresholds::{RetrievalMethod, RuleEngine};
use traffic_insight::storage::{DayType, StatRecord, TableStore, ThresholdStore};
use traffic_insight::traffic::{Attribute, BusTrace, EnrichedTrace, HOUR_MS};

fn trace(minute: u64, area: &str, delay: f64) -> EnrichedTrace {
    EnrichedTrace {
        trace: BusTrace {
            timestamp_ms: 9 * HOUR_MS + minute * 60_000,
            line_id: 46,
            direction: true,
            position: traffic_insight::geo::GeoPoint::new_unchecked(53.33, -6.26),
            delay_s: delay,
            congestion: false,
            reported_stop: None,
            at_stop: false,
            vehicle_id: 33001,
        },
        speed_kmh: Some(18.0),
        actual_delay_s: Some(2.0),
        areas: vec![area.to_string()],
        bus_stop: None,
    }
}

fn main() {
    let store = ThresholdStore::new(TableStore::new());

    // Initial statistics: during roadworks, R7's normal delay was high —
    // mean 300 s, stdv 60 s → threshold 360 s.
    store
        .publish(
            "delay",
            &[StatRecord {
                area_id: "R7".into(),
                hour: 9,
                day_type: DayType::Weekday,
                mean: 300.0,
                stdv: 60.0,
                count: 500,
            }],
        )
        .expect("publish");
    println!("initial thresholds: R7 fires above 300 + 1·60 = 360 s");

    let mut engine = RuleEngine::new(RetrievalMethod::ThresholdStream, store.clone(), None);
    let rule = RuleSpec::new("delay-watch", Attribute::Delay, LocationSelector::QuadtreeLeaves, 5);
    engine.install_rule(&rule, ["R7".to_string()]).expect("install");
    let sink = engine.detections();

    // Morning one: delays around 400 s (roadworks levels) — abnormal
    // against the 360 s threshold, so the rule fires.
    for m in 0..10 {
        engine.send_trace(&trace(m, "R7", 380.0 + (m % 3) as f64 * 30.0)).expect("send");
    }
    println!("before refresh: {} detections for roadworks-level delays", sink.lock().len());

    // The periodic batch job runs over fresh history: the roadworks are
    // over, normal delay dropped to mean 60 s, stdv 20 s.
    store
        .publish(
            "delay",
            &[StatRecord {
                area_id: "R7".into(),
                hour: 9,
                day_type: DayType::Weekday,
                mean: 60.0,
                stdv: 20.0,
                count: 500,
            }],
        )
        .expect("publish");
    engine.refresh_thresholds().expect("refresh");
    println!("statistics recomputed: R7 now fires above 60 + 1·20 = 80 s");

    let before = sink.lock().len();
    // Normal traffic at the new level: quiet.
    for m in 10..20 {
        engine.send_trace(&trace(m, "R7", 55.0 + (m % 4) as f64 * 5.0)).expect("send");
    }
    println!(
        "after refresh: {} new detections for normal traffic (expected 0)",
        sink.lock().len() - before
    );

    // A genuine anomaly under the new regime: 150 s delays.
    let before = sink.lock().len();
    for m in 20..28 {
        engine.send_trace(&trace(m, "R7", 150.0)).expect("send");
    }
    let fired = sink.lock().len() - before;
    println!("a real incident (150 s delays) fires {fired} detections");
    let last = sink.lock().last().cloned().expect("incident detected");
    println!(
        "  e.g. {} at {}: observed {:.1} s vs threshold {:.1} s",
        last.rule,
        last.location,
        last.observed,
        last.threshold.unwrap_or(f64::NAN),
    );
}
