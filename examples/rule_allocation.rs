//! The start-up optimization components in isolation (Section 4.2): the
//! latency estimation model, Algorithm 1 (rule partitioning) and
//! Algorithm 2 (rules allocation), plus the XML topology front end.
//!
//! ```text
//! cargo run --release --example rule_allocation
//! ```

use traffic_insight::core::allocation::{allocate, round_robin, system_rate, Grouping};
use traffic_insight::core::latency::{EstimationModel, RuleLoad};
use traffic_insight::core::partitioning::{partition_rule, RegionRate};
use traffic_insight::core::rules::{LocationSelector, RuleSpec};
use traffic_insight::dsps::parse_topology_xml;
use traffic_insight::traffic::Attribute;

fn main() {
    // ---- The estimation model (Section 4.1.4, Figure 7) -----------------
    let model = EstimationModel::default_paper_shaped();
    println!("latency estimation model (Function 1):");
    for (l, t) in [(1usize, 48usize), (100, 48), (100, 2400), (1000, 2400)] {
        let ms = model.rule_latency(RuleLoad { window: l, thresholds: t }).unwrap();
        println!("  rule(window {l:>4}, thresholds {t:>4}) -> {ms:.3} ms/tuple");
    }
    let one = model.rule_latency(RuleLoad { window: 100, thresholds: 480 }).unwrap();
    println!(
        "Function 2 fold: 1 rule {:.3} ms, 4 rules {:.3} ms, 10 rules {:.3} ms",
        model.engine_latency(&[one]).unwrap(),
        model.engine_latency(&[one; 4]).unwrap(),
        model.engine_latency(&[one; 10]).unwrap(),
    );
    let crowded = model.node_adjusted(&[2.0, 2.0, 2.0]).unwrap();
    println!("Function 3: three 2 ms engines co-located -> {:.2} ms each\n", crowded[0]);

    // ---- Algorithm 1: partition a rule's regions -------------------------
    // A skewed city: the centre regions carry most of the traffic.
    let regions: Vec<RegionRate> = (0..12)
        .map(|i| RegionRate {
            region: format!("R{i}"),
            rate: if i < 3 { 900.0 } else { 100.0 },
        })
        .collect();
    let partition = partition_rule(&regions, 4).unwrap();
    println!("Algorithm 1: 12 skewed regions over 4 engines");
    for (e, (assigned, rate)) in
        partition.assignments.iter().zip(&partition.rates).enumerate()
    {
        println!("  engine {e}: {:>6.0} tuples/s <- {assigned:?}", rate);
    }
    println!("  imbalance (max/min rate): {:.2}\n", partition.imbalance());

    // ---- Algorithm 2: allocate engines over groupings --------------------
    let grouping = |name: &str, windows: &[usize], regions: usize, rate: f64| Grouping {
        name: name.into(),
        layers: vec![0],
        rules: windows
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                RuleSpec::new(
                    format!("{name}-{i}"),
                    Attribute::Delay,
                    LocationSelector::QuadtreeLeaves,
                    w,
                )
            })
            .collect(),
        regions: (0..regions)
            .map(|i| RegionRate { region: format!("{name}{i}"), rate: rate / regions as f64 })
            .collect(),
        thresholds: vec![regions * 48; windows.len()],
    };
    let groupings = vec![
        grouping("heavy", &[1000, 1000, 100], 64, 6_000.0),
        grouping("light", &[1, 10], 64, 6_000.0),
    ];
    for n in [4usize, 10, 20] {
        let ours = allocate(&model, &groupings, n).unwrap();
        let rr = round_robin(&groupings, n).unwrap();
        println!(
            "Algorithm 2 with {n:>2} engines: ours {:?} (system sustains {:.0}%), round-robin {:?} ({:.0}%)",
            ours.engines,
            system_rate(&model, &groupings, &ours).unwrap() * 100.0,
            rr.engines,
            system_rate(&model, &groupings, &rr).unwrap() * 100.0,
        );
    }

    // ---- XML topologies (Section 3.2) ------------------------------------
    let xml = r#"
<topology name="traffic">
  <spout name="busReader" type="BusReaderSpout" tasks="2"/>
  <bolt name="preprocess" type="PreProcessBolt" tasks="2">
    <subscribe source="busReader" grouping="fields" key="vehicle"/>
  </bolt>
  <bolt name="esper" type="EsperBolt" tasks="8">
    <subscribe source="preprocess" grouping="direct"/>
  </bolt>
  <rules>
    <rule>delay:leaves:100</rule>
    <rule>speed:stops:10:2.0</rule>
  </rules>
</topology>"#;
    let spec = parse_topology_xml(xml).unwrap();
    let rules = traffic_insight::core::system::TrafficSystem::rules_from_xml_spec(&spec).unwrap();
    println!("\nXML topology {:?}: {} spouts, {} bolts, {} rules", spec.name, spec.spouts.len(), spec.bolts.len(), rules.len());
    for r in &rules {
        println!("  rule {}: {:?} over {:?}, window {}, weight {}", r.name, r.attribute, r.location, r.window_length, r.weight);
    }
}
