//! The CEP engine on its own: register streams, write EPL, feed events —
//! the Esper-style API underneath the traffic system (Section 2.1.2).
//!
//! ```text
//! cargo run --release --example cep_standalone
//! ```

use traffic_insight::cep::{Engine, Event, EventType, FieldType};

fn main() {
    let mut engine = Engine::new();
    engine
        .register_type(
            EventType::with_fields(
                "trade",
                &[
                    ("symbol", FieldType::Str),
                    ("price", FieldType::Float),
                    ("size", FieldType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();

    // A windowed aggregate with GROUP BY / HAVING, plus INSERT INTO
    // composition: large average prices feed a second stream whose rule
    // raises alerts. Streams with non-numeric fields must be registered
    // before the INSERT INTO statement that feeds them.
    engine
        .register_type(
            EventType::with_fields(
                "pricey",
                &[("symbol", FieldType::Str), ("avg_price", FieldType::Float)],
            )
            .unwrap(),
        )
        .unwrap();
    engine
        .create_statement_silent(
            "INSERT INTO pricey \
             SELECT w.symbol AS symbol, avg(w.price) AS avg_price \
             FROM trade.std:groupwin(symbol).win:length(3) AS w \
             GROUP BY w.symbol \
             HAVING avg(w.price) > 100",
        )
        .unwrap();
    engine
        .create_statement(
            "SELECT symbol, avg_price FROM pricey",
            Box::new(|_, rows| {
                for row in rows {
                    println!(
                        "  alert: {} averaging {}",
                        row.get("symbol").unwrap(),
                        row.get("avg_price").unwrap()
                    );
                }
            }),
        )
        .unwrap();

    let ty = engine.event_type("trade").unwrap().clone();
    let feed = [
        ("ACME", 95.0),
        ("ACME", 103.0),
        ("ACME", 110.0), // avg 102.7 -> alert
        ("WIDG", 20.0),
        ("WIDG", 22.0),
        ("ACME", 120.0), // window slides: avg 111 -> alert
        ("WIDG", 21.0),  // quiet stock stays quiet
    ];
    println!("feeding {} trades:", feed.len());
    for (i, (symbol, price)) in feed.iter().enumerate() {
        let ev = Event::from_pairs(
            &ty,
            i as u64 * 1000,
            &[
                ("symbol", (*symbol).into()),
                ("price", (*price).into()),
                ("size", 100i64.into()),
            ],
        )
        .unwrap();
        engine.send_event(ev).unwrap();
    }
    let stats = engine.stats();
    println!(
        "engine processed {} events, emitted {} rows over {} firings",
        stats.events_in, stats.rows_out, stats.firings
    );
}
