//! Quickstart: boot the whole traffic management system on a small
//! synthetic fleet and watch it detect abnormal delays.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The pipeline mirrors the paper's Figure 3: one day of historical
//! traces feeds the off-line component (quadtree, bus stops, MapReduce
//! statistics → thresholds); the start-up optimizer partitions and
//! allocates the rules over CEP engines; the on-line topology (Figure 8)
//! then replays a live day with an injected incident.

use traffic_insight::core::rules::{LocationSelector, RuleSpec};
use traffic_insight::core::system::{SystemConfig, TrafficSystem};
use traffic_insight::traffic::{Attribute, FleetConfig, FleetGenerator, Incident, DAY_MS, HOUR_MS};

fn main() {
    let fleet = FleetConfig::small(2024);

    // ---- Off-line: learn "normal" from day 0 (a Monday) ----------------
    println!("generating one day of history...");
    let history_gen = FleetGenerator::new(fleet.clone(), 0).expect("valid fleet config");
    let seeds = history_gen.route_seed_points();
    let history: Vec<_> = history_gen.take_while(|t| t.timestamp_ms < 12 * HOUR_MS).collect();
    println!("  {} historical traces", history.len());

    let system = TrafficSystem::bootstrap(
        traffic_insight::geo::DUBLIN_BBOX,
        &seeds,
        &history,
        SystemConfig::default(),
    )
    .expect("bootstrap");
    println!(
        "  quadtree: {} regions over {} layers; {} recovered bus stops",
        system.artifacts.spatial.quadtree.region_count(),
        system.artifacts.spatial.quadtree.max_layer(),
        system.artifacts.spatial.stops.len(),
    );

    // ---- Rules: the paper's generic template ---------------------------
    let mut delay_rule = RuleSpec::new(
        "delay-leaves",
        Attribute::Delay,
        LocationSelector::QuadtreeLeaves,
        10,
    );
    delay_rule.s = 2.0; // fire above mean + 2·stdv
    let mut stops_rule =
        RuleSpec::new("delay-stops", Attribute::Delay, LocationSelector::BusStops, 10);
    stops_rule.s = 2.0;
    let rules = vec![delay_rule, stops_rule];

    // ---- On-line: day 1 (Tuesday) with an accident ----------------------
    let probe = FleetGenerator::new(fleet.clone(), 1).expect("valid fleet config");
    let route = &probe.routes()[0];
    let accident_site = route.points[route.points.len() / 2];
    let incident = Incident {
        center: accident_site,
        radius_m: 1200.0,
        start_ms: DAY_MS + 8 * HOUR_MS,
        end_ms: DAY_MS + 10 * HOUR_MS,
        severity: 0.05,
    };
    println!(
        "replaying day 1 with an accident at ({:.4}, {:.4}) from 08:00 to 10:00...",
        accident_site.lat, accident_site.lon
    );
    let live: Vec<_> = FleetGenerator::with_incidents(fleet, 1, vec![incident])
        .expect("valid fleet config")
        .take_while(|t| t.timestamp_ms < DAY_MS + 11 * HOUR_MS)
        .collect();

    let (plan, report) = system.plan_and_run(live, &rules, 3).expect("run");
    println!(
        "  start-up optimizer: {} grouping(s), engines per grouping {:?}",
        plan.groupings.len(),
        plan.allocation.engines
    );

    // ---- Results ---------------------------------------------------------
    println!("\n{} detections:", report.detections.len());
    for d in report.detections.iter().take(12) {
        println!(
            "  [{}] {} at {}: observed {:.1} vs threshold {}",
            format_hhmm(d.timestamp_ms),
            d.rule,
            d.location,
            d.observed,
            d.threshold.map(|t| format!("{t:.1}")).unwrap_or_else(|| "-".into()),
        );
    }
    if report.detections.len() > 12 {
        println!("  ... and {} more", report.detections.len() - 12);
    }
    // Per-hour histogram: the 08:00–10:00 accident should dominate.
    let mut per_hour = [0usize; 24];
    for d in &report.detections {
        per_hour[((d.timestamp_ms % DAY_MS) / HOUR_MS) as usize] += 1;
    }
    println!("
detections per hour:");
    for (h, n) in per_hour.iter().enumerate() {
        if *n > 0 {
            println!("  {h:02}:00  {n:>6}  {}", "#".repeat((n / 50).min(60)));
        }
    }
    // Spouts count emissions; bolts count processed tuples.
    println!("\ncomponent throughput (lifetime):");
    for m in &report.metrics {
        let (count, what) =
            if m.throughput > 0 { (m.throughput, "processed") } else { (m.emitted, "emitted") };
        println!(
            "  {:<16} {:>9} tuples {}{}",
            m.component,
            count,
            what,
            m.avg_latency
                .map(|l| format!(", avg {:?}/tuple", l))
                .unwrap_or_default()
        );
    }
}

fn format_hhmm(ts_ms: u64) -> String {
    let in_day = ts_ms % DAY_MS;
    format!("{:02}:{:02}", in_day / HOUR_MS, (in_day % HOUR_MS) / 60_000)
}
