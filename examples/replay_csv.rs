//! Dataset-file workflow: generate a slice of the synthetic Dublin fleet,
//! persist it as CSV (the format the paper's BusReader spout consumes),
//! read it back, and query the storage medium with the *literal SQL* of
//! the paper's Listing 2.
//!
//! ```text
//! cargo run --release --example replay_csv
//! ```

use std::io::Cursor;
use traffic_insight::storage::{StatRecord, DayType, TableStore, ThresholdQuery, ThresholdStore};
use traffic_insight::traffic::csv::{read_traces, write_traces};
use traffic_insight::traffic::{FleetConfig, FleetGenerator, HOUR_MS};

fn main() {
    // ---- Generate and persist a morning of traces -----------------------
    let fleet = FleetConfig { buses: 30, lines: 6, seed: 5, ..FleetConfig::default() };
    let traces: Vec<_> = FleetGenerator::new(fleet, 0)
        .expect("valid fleet")
        .take_while(|t| t.timestamp_ms < 8 * HOUR_MS)
        .collect();
    let mut csv = Vec::new();
    let written = write_traces(&traces, &mut csv).expect("CSV encodes");
    println!(
        "wrote {written} traces to CSV ({} KB — the paper's dataset runs 160 MB/day at full scale)",
        csv.len() / 1024
    );

    // ---- Read them back (the BusReader spout's job) ----------------------
    let read = read_traces(&mut Cursor::new(&csv)).expect("CSV decodes");
    assert_eq!(read.len(), traces.len());
    println!("read {} traces back; first: {:?}", read.len(), read[0]);

    // ---- Listing 2, verbatim, through the SQL front end ------------------
    let store = ThresholdStore::new(TableStore::new());
    store
        .publish(
            "delay",
            &[
                StatRecord {
                    area_id: "R7".into(),
                    hour: 8,
                    day_type: DayType::Weekday,
                    mean: 120.0,
                    stdv: 35.0,
                    count: 400,
                },
                StatRecord {
                    area_id: "R9".into(),
                    hour: 8,
                    day_type: DayType::Weekday,
                    mean: 45.0,
                    stdv: 12.0,
                    count: 250,
                },
            ],
        )
        .expect("publish");
    let q = ThresholdQuery { attribute: "delay".into(), s: 1.0 };
    println!("\nListing 2 via SQL (s = 1):");
    for row in store.thresholds_sql(&q).expect("SQL path") {
        println!(
            "  {} @ {:02}:00 ({:?}) -> threshold {:.1} s",
            row.area_id, row.hour, row.day_type, row.threshold
        );
    }
    // The typed path produces the same rows.
    assert_eq!(store.thresholds(&q).unwrap(), store.thresholds_sql(&q).unwrap());
    println!("(typed path and SQL path agree)");
}
