//! Offline stand-in for the `proptest` crate.
//!
//! Same testing model — strategies generate random inputs, `prop_assert*`
//! report failures as `Err` so every case's cleanup runs — minus
//! shrinking: a failing case prints its inputs (via the macro's Debug
//! formatting of arguments) instead of a minimized counterexample. The
//! RNG is seeded from the test name, so failures reproduce exactly on
//! re-run.

pub mod test_runner {
    /// Run-loop configuration; only `cases` is honoured here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    #[derive(Debug)]
    pub enum TestCaseError {
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(msg) => write!(f, "{msg}"),
            }
        }
    }

    /// xoshiro256++ seeded from the test's name: deterministic per test,
    /// different across tests.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf29ce484222325u64; // FNV-1a over the name
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100000001b3);
            }
            let mut s = [0u64; 4];
            for slot in &mut s {
                seed = seed.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                *slot = z ^ (z >> 31);
            }
            TestRng { s }
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, 1)` with 53 bits of randomness.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (self.start as i128 + r as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (start as i128 + r as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start as f64
                        + rng.unit_f64() * (self.end as f64 - self.start as f64);
                    if v as $t >= self.end { self.start } else { v as $t }
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    /// String literals act as regex-ish string strategies. Only the
    /// `.{lo,hi}` shape the repo uses is interpreted; anything else
    /// falls back to short arbitrary strings.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 16));
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len).map(|_| crate::arbitrary::random_char(rng)).collect()
        }
    }

    /// Parses `.{lo,hi}` patterns; `None` for anything else.
    fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
        let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = rest.split_once(',')?;
        let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
        (lo <= hi).then_some((lo, hi))
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub trait Arbitrary {
        type Strategy: Strategy<Value = Self>;

        fn arbitrary() -> Self::Strategy;
    }

    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;

        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    /// ASCII-weighted so generated text exercises tokenizers, with a
    /// tail of arbitrary Unicode scalars for the nasty cases.
    pub(crate) fn random_char(rng: &mut TestRng) -> char {
        match rng.below(10) {
            0..=6 => (0x20 + rng.below(0x5f) as u32) as u8 as char,
            7 => (rng.below(0x20) as u8) as char,
            _ => loop {
                if let Some(c) = char::from_u32(rng.below(0x110000) as u32) {
                    break c;
                }
            },
        }
    }

    pub struct AnyChar;

    impl Strategy for AnyChar {
        type Value = char;

        fn generate(&self, rng: &mut TestRng) -> char {
            random_char(rng)
        }
    }

    impl Arbitrary for char {
        type Strategy = AnyChar;

        fn arbitrary() -> AnyChar {
            AnyChar
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for [`vec`]; built from the range forms tests use.
    pub trait SizeBounds {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeBounds for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeBounds for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    impl SizeBounds for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    pub struct VecStrategy<S, B> {
        element: S,
        size: B,
    }

    pub fn vec<S: Strategy, B: SizeBounds>(element: S, size: B) -> VecStrategy<S, B> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, B: SizeBounds> Strategy for VecStrategy<S, B> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    /// `Some` three times out of four, `None` otherwise (mirrors real
    /// proptest's Some-biased default).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
}

/// The test-definition macro. Each `fn name(arg in strategy, ...)` body
/// becomes a `#[test]` that runs `config.cases` random cases; the body is
/// wrapped in a closure returning `Result` so `prop_assert*` failures
/// carry out cleanly, then reported with the generated inputs (no
/// shrinking in this shim).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let strategies = ($($strat,)+);
                for case in 0..config.cases {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    );
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            case + 1, config.cases, e, inputs
                        );
                    }
                }
            }
        )*
    };
}
