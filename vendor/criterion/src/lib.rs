//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the measurement discipline that matters — warm-up phase, many
//! samples, median-of-samples reporting (robust to descheduling spikes)
//! — and the group/`Bencher` API the repo's benches use. No HTML
//! reports, no statistical regression testing. `--test` (what
//! `cargo test --benches` passes) runs each benchmark once; a positional
//! argument filters benchmarks by substring, as with real criterion.

use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            filter: None,
            test_mode: false,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Reads the harness arguments cargo passes through: `--test` for
    /// test mode, a bare string as a name filter; other criterion flags
    /// are accepted and ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" => {}
                s if s.starts_with("--") => {
                    // Flags with a value (e.g. --save-baseline x): skip it.
                    if !s.contains('=') {
                        let _ = args.next();
                    }
                }
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name.to_string(), f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, id: String, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: if self.test_mode { 1 } else { self.sample_size },
            measurement_time: if self.test_mode {
                Duration::ZERO
            } else {
                self.measurement_time
            },
            warm_up_time: if self.test_mode { Duration::ZERO } else { self.warm_up_time },
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&id);
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, name: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name.into().0);
        self.criterion.run_one(id, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into().0);
        self.criterion.run_one(id, |b| f(b, input));
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, also yielding an iterations/second estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            std::hint::black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let warm_elapsed = warm_start.elapsed().max(Duration::from_nanos(1));
        let per_iter = warm_elapsed.as_secs_f64() / warm_iters as f64;
        // Size each sample so all samples fit the measurement budget.
        let budget = self.measurement_time.as_secs_f64().max(0.001);
        let iters_per_sample =
            ((budget / self.sample_size as f64 / per_iter).round() as u64).max(1);
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.samples_ns.push(ns);
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<52} (no samples)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        let lo = sorted[sorted.len() / 20];
        let hi = sorted[sorted.len() - 1 - sorted.len() / 20];
        println!(
            "{id:<52} time: [{} {} {}]",
            format_ns(lo),
            format_ns(median),
            format_ns(hi)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Re-export spot real criterion keeps it in; benches import it from
/// `std::hint` directly, but keep the path available.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
