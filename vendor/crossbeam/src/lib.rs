//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` bounded MPMC channels with the same
//! disconnect semantics the repo relies on: cloneable senders *and*
//! receivers, blocking `send`, `recv_timeout`, and `try_recv`, with
//! `Disconnected` reported once all peers on the other side are gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        capacity: usize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Creates a bounded MPMC channel with the given capacity (≥ 1).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        make_channel(capacity.max(1))
    }

    /// Creates an unbounded MPMC channel (capacity limited only by
    /// memory; `send` never blocks).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make_channel(usize::MAX)
    }

    fn make_channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { inner: inner.clone() }, Receiver { inner })
    }

    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like crossbeam, Debug is independent of T so `.unwrap()`/`.expect()`
    // on send results never demands T: Debug.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Sender<T> {
        /// Blocks while the queue is full; errors when every receiver is
        /// gone (returning the unsent message, like crossbeam).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if state.receivers == 0 {
                    return Err(SendError(msg));
                }
                if state.queue.len() < self.inner.capacity {
                    state.queue.push_back(msg);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                state = self
                    .inner
                    .not_full
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            state.senders += 1;
            drop(state);
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            if state.senders == 0 {
                self.inner.not_empty.notify_all();
            }
        }
    }

    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Receiver<T> {
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(msg) = state.queue.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .inner
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _result) = self
                    .inner
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers += 1;
            drop(state);
            Receiver { inner: self.inner.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers -= 1;
            if state.receivers == 0 {
                self.inner.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = bounded(4);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_reported_after_drain() {
            let (tx, rx) = bounded(4);
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.try_recv(), Ok(7));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn bounded_blocks_until_consumed() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(1));
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(2));
            t.join().unwrap();
        }
    }
}
