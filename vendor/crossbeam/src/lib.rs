//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` bounded MPMC channels with the same
//! disconnect semantics the repo relies on: cloneable senders *and*
//! receivers, blocking `send`, `recv_timeout`, and `try_recv`, with
//! `Disconnected` reported once all peers on the other side are gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        capacity: usize,
        not_empty: Condvar,
        not_full: Condvar,
        // Select support: wakers parked on this channel. `has_wakers` lets
        // the send fast path skip the waker lock when nobody is selecting.
        wakers: Mutex<Vec<Arc<SelectWaker>>>,
        has_wakers: AtomicBool,
    }

    impl<T> Inner<T> {
        fn notify_wakers(&self) {
            // SeqCst pairs with the SeqCst store in `register`: if a selector
            // polled the queue before this send's push, its store to
            // `has_wakers` is visible here and we take the slow path.
            if !self.has_wakers.load(Ordering::SeqCst) {
                return;
            }
            let wakers = self.wakers.lock().unwrap_or_else(|e| e.into_inner());
            for w in wakers.iter() {
                w.notify();
            }
        }
    }

    /// Creates a bounded MPMC channel with the given capacity (≥ 1).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        make_channel(capacity.max(1))
    }

    /// Creates an unbounded MPMC channel (capacity limited only by
    /// memory; `send` never blocks).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make_channel(usize::MAX)
    }

    fn make_channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            wakers: Mutex::new(Vec::new()),
            has_wakers: AtomicBool::new(false),
        });
        (Sender { inner: inner.clone() }, Receiver { inner })
    }

    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like crossbeam, Debug is independent of T so `.unwrap()`/`.expect()`
    // on send results never demands T: Debug.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Sender<T> {
        /// Blocks while the queue is full; errors when every receiver is
        /// gone (returning the unsent message, like crossbeam).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if state.receivers == 0 {
                    return Err(SendError(msg));
                }
                if state.queue.len() < self.inner.capacity {
                    state.queue.push_back(msg);
                    self.inner.not_empty.notify_one();
                    drop(state);
                    self.inner.notify_wakers();
                    return Ok(());
                }
                state = self
                    .inner
                    .not_full
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            state.senders += 1;
            drop(state);
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            let disconnected = state.senders == 0;
            if disconnected {
                self.inner.not_empty.notify_all();
            }
            drop(state);
            if disconnected {
                // A selector waiting on this channel must observe the
                // disconnect (its `is_ready` reports true once senders hit 0).
                self.inner.notify_wakers();
            }
        }
    }

    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Receiver<T> {
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(msg) = state.queue.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .inner
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _result) = self
                    .inner
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers += 1;
            drop(state);
            Receiver { inner: self.inner.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers -= 1;
            if state.receivers == 0 {
                self.inner.not_full.notify_all();
            }
        }
    }

    /// Parked-selector handle: one per `Select` wait, registered with every
    /// watched channel and notified on send or sender disconnect.
    pub struct SelectWaker {
        signaled: Mutex<bool>,
        condvar: Condvar,
    }

    impl Default for SelectWaker {
        fn default() -> Self {
            SelectWaker { signaled: Mutex::new(false), condvar: Condvar::new() }
        }
    }

    impl SelectWaker {
        fn notify(&self) {
            let mut signaled = self.signaled.lock().unwrap_or_else(|e| e.into_inner());
            *signaled = true;
            self.condvar.notify_all();
        }

        /// Blocks until notified (or the deadline passes). Returns `false`
        /// only on deadline expiry; consumes the signal on wakeup.
        fn wait(&self, deadline: Option<Instant>) -> bool {
            let mut signaled = self.signaled.lock().unwrap_or_else(|e| e.into_inner());
            while !*signaled {
                match deadline {
                    None => {
                        signaled = self
                            .condvar
                            .wait(signaled)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            return false;
                        }
                        let (guard, _timed_out) = self
                            .condvar
                            .wait_timeout(signaled, d - now)
                            .unwrap_or_else(|e| e.into_inner());
                        signaled = guard;
                    }
                }
            }
            *signaled = false;
            true
        }
    }

    /// Type-erased view of a channel endpoint a `Select` can wait on.
    pub trait SelectHandle {
        fn is_ready(&self) -> bool;
        fn register(&self, waker: &Arc<SelectWaker>);
        fn unregister(&self, waker: &Arc<SelectWaker>);
    }

    impl<T> SelectHandle for Receiver<T> {
        fn is_ready(&self) -> bool {
            let state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            !state.queue.is_empty() || state.senders == 0
        }

        fn register(&self, waker: &Arc<SelectWaker>) {
            let mut wakers = self.inner.wakers.lock().unwrap_or_else(|e| e.into_inner());
            wakers.push(waker.clone());
            self.inner.has_wakers.store(true, Ordering::SeqCst);
        }

        fn unregister(&self, waker: &Arc<SelectWaker>) {
            let mut wakers = self.inner.wakers.lock().unwrap_or_else(|e| e.into_inner());
            wakers.retain(|w| !Arc::ptr_eq(w, waker));
            self.inner.has_wakers.store(!wakers.is_empty(), Ordering::SeqCst);
        }
    }

    /// Returned by [`Select::ready_timeout`] when no operation became ready
    /// within the timeout.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ReadyTimeoutError;

    /// Blocking readiness selector over receive operations, mirroring the
    /// subset of `crossbeam_channel::Select` the runtime uses: add receivers
    /// with [`recv`](Select::recv), then [`ready`](Select::ready) /
    /// [`ready_timeout`](Select::ready_timeout) to sleep until one of them
    /// has a message or is disconnected. Like the real crate, readiness is a
    /// hint: the caller retries with `try_recv` and may find the channel
    /// empty again.
    pub struct Select<'a> {
        handles: Vec<&'a dyn SelectHandle>,
    }

    impl Default for Select<'_> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<'a> Select<'a> {
        pub fn new() -> Self {
            Select { handles: Vec::new() }
        }

        /// Adds a receive operation, returning its index within the select.
        pub fn recv<T>(&mut self, r: &'a Receiver<T>) -> usize {
            self.handles.push(r);
            self.handles.len() - 1
        }

        /// Blocks until some operation is ready; returns its index.
        pub fn ready(&mut self) -> usize {
            assert!(!self.handles.is_empty(), "no operations have been added to `Select`");
            self.wait(None).expect("untimed select wait cannot time out")
        }

        /// Blocks until some operation is ready or the timeout expires.
        pub fn ready_timeout(&mut self, timeout: Duration) -> Result<usize, ReadyTimeoutError> {
            assert!(!self.handles.is_empty(), "no operations have been added to `Select`");
            self.wait(Some(Instant::now() + timeout)).ok_or(ReadyTimeoutError)
        }

        fn poll(&self) -> Option<usize> {
            self.handles.iter().position(|h| h.is_ready())
        }

        fn wait(&self, deadline: Option<Instant>) -> Option<usize> {
            if let Some(i) = self.poll() {
                return Some(i);
            }
            // Register-then-repoll avoids the lost wakeup: a send that lands
            // after this second poll sees the registered waker and notifies.
            let waker = Arc::new(SelectWaker::default());
            for h in &self.handles {
                h.register(&waker);
            }
            let found = loop {
                if let Some(i) = self.poll() {
                    break Some(i);
                }
                if !waker.wait(deadline) {
                    break self.poll();
                }
            };
            for h in &self.handles {
                h.unregister(&waker);
            }
            found
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = bounded(4);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_reported_after_drain() {
            let (tx, rx) = bounded(4);
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.try_recv(), Ok(7));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn bounded_blocks_until_consumed() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(1));
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(2));
            t.join().unwrap();
        }

        #[test]
        fn select_reports_the_ready_receiver() {
            let (_tx_a, rx_a) = bounded::<u32>(4);
            let (tx_b, rx_b) = bounded::<u32>(4);
            tx_b.send(9).unwrap();
            let mut sel = Select::new();
            let ia = sel.recv(&rx_a);
            let ib = sel.recv(&rx_b);
            assert_eq!(ia, 0);
            assert_eq!(sel.ready(), ib);
            assert_eq!(rx_b.try_recv(), Ok(9));
        }

        #[test]
        fn select_times_out_when_nothing_is_ready() {
            let (_tx, rx) = bounded::<u32>(4);
            let mut sel = Select::new();
            sel.recv(&rx);
            assert_eq!(
                sel.ready_timeout(Duration::from_millis(20)),
                Err(ReadyTimeoutError)
            );
        }

        #[test]
        fn select_wakes_on_send_from_another_thread() {
            let (tx, rx) = bounded::<u32>(4);
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                tx.send(5).unwrap();
            });
            let mut sel = Select::new();
            sel.recv(&rx);
            // Much longer than the sender's delay: only a wakeup (not the
            // timeout) can return this quickly.
            let started = Instant::now();
            assert_eq!(sel.ready_timeout(Duration::from_secs(10)), Ok(0));
            assert!(started.elapsed() < Duration::from_secs(5));
            assert_eq!(rx.try_recv(), Ok(5));
            t.join().unwrap();
        }

        #[test]
        fn select_wakes_on_disconnect() {
            let (tx, rx) = bounded::<u32>(4);
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                drop(tx);
            });
            let mut sel = Select::new();
            sel.recv(&rx);
            assert_eq!(sel.ready_timeout(Duration::from_secs(10)), Ok(0));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            t.join().unwrap();
        }
    }
}
