//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! Implements the subset the repo uses: `rand::rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::random_range` over integer and
//! float ranges. The generator is xoshiro256++ seeded through SplitMix64
//! — deterministic for a given seed, statistically fine for test-data
//! generation and benchmarks (nothing here is cryptographic).

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

/// Types [`Rng::random_range`] can draw uniformly. The blanket
/// `SampleRange<T> for Range<T>` impl below mirrors real rand's
/// structure so numeric-literal ranges unify with the usage site's
/// expected type during inference.
pub trait UniformSample: Copy + PartialOrd {
    fn sample_uniform(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_uniform(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "empty range in random_range");
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_uniform(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self {
                assert!(lo < hi || (inclusive && lo <= hi), "empty range in random_range");
                // 53 bits of randomness mapped to [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = (lo as f64 + unit * (hi as f64 - lo as f64)) as $t;
                // Guard against rounding up to an excluded endpoint.
                if !inclusive && v >= hi { lo } else { v }
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Range shapes accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: UniformSample> SampleRange<T> for std::ops::Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "empty range in random_range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: UniformSample> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in random_range");
        T::sample_uniform(start, end, true, rng)
    }
}

pub trait Rng: RngCore {
    fn random_range<T: UniformSample, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same family real `rand` uses for small fast
    /// RNGs. Not the identical stream as upstream `StdRng` (ChaCha12),
    /// which only matters if fixtures baked upstream streams in — none
    /// did, since the workspace has never built against upstream here.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            StdRng { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1_000_000), b.random_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.5f64..9.5);
            assert!((-2.5..9.5).contains(&f));
            let i = rng.random_range(-50i64..50);
            assert!((-50..50).contains(&i));
        }
    }

    #[test]
    fn covers_full_span() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
