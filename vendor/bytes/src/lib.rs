//! Offline stand-in for the `bytes` crate.
//!
//! Grown from the original `Arc<[u8]>` stub into the slicing subset the
//! repo uses:
//!
//! * [`Bytes`] — an immutable view `(Arc<Vec<u8>>, offset, len)` into a
//!   shared buffer. `Clone`, [`Bytes::slice`], [`Bytes::split_to`] and
//!   [`Bytes::advance`] are all refcount-bump + cursor arithmetic; the
//!   underlying bytes are never copied. This is what lets a network frame
//!   be decoded by *viewing* regions of the receive buffer instead of
//!   copying each payload out.
//! * [`BytesMut`] — a unique-writer append buffer that can cheaply
//!   [`BytesMut::split_to`] finished prefixes off as aliased `Bytes` and
//!   keep writing. Writing after a split copies the remaining tail into a
//!   fresh allocation (`make_unique`), so outstanding views are never
//!   invalidated — the price is paid only when a split actually aliased
//!   the buffer.
//! * [`BufferPool`] — a freelist of retired allocations so steady-state
//!   encode loops reuse capacity instead of hitting the allocator per
//!   frame.
//!
//! Not implemented (nothing in the repo needs them): the `Buf`/`BufMut`
//! traits, vectored IO, inline small-string optimization.

use std::sync::Arc;

/// A cheaply cloneable, sliceable, immutable view into a shared buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty view (no allocation of note).
    pub fn new() -> Self {
        Bytes { data: Arc::new(Vec::new()), off: 0, len: 0 }
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn as_ref(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// A sub-view of `self` — shares the allocation, no copy.
    ///
    /// # Panics
    /// When the range is out of bounds or inverted.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end, "slice range inverted");
        assert!(range.end <= self.len, "slice range out of bounds");
        Bytes { data: Arc::clone(&self.data), off: self.off + range.start, len: range.end - range.start }
    }

    /// Splits the first `n` bytes off as their own view, leaving `self`
    /// with the rest. Both views share the allocation.
    ///
    /// # Panics
    /// When `n > self.len()`.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len, "split_to out of bounds");
        let head = Bytes { data: Arc::clone(&self.data), off: self.off, len: n };
        self.off += n;
        self.len -= n;
        head
    }

    /// Drops the first `n` bytes from the view.
    ///
    /// # Panics
    /// When `n > self.len()`.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.len, "advance out of bounds");
        self.off += n;
        self.len -= n;
    }

    /// Hands the backing allocation to `f` when this view is the *only*
    /// reference to it and covers it entirely — the buffer-reuse hook
    /// [`BufferPool::recycle`] uses. Returns `false` (and does nothing)
    /// otherwise.
    fn try_unwrap(self, f: impl FnOnce(Vec<u8>)) -> bool {
        let whole = self.off == 0 && self.len == self.data.len();
        match Arc::try_unwrap(self.data) {
            Ok(v) if whole => {
                f(v);
                true
            }
            _ => false,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes { data: Arc::new(v), off: 0, len }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        Bytes::as_ref(self)
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        Bytes::as_ref(self)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        Bytes::as_ref(self) == Bytes::as_ref(other)
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        Bytes::as_ref(self) == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        Bytes::as_ref(self) == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        Bytes::as_ref(self).hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in Bytes::as_ref(self) {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// An append buffer with cheap prefix split-off.
///
/// Invariants: the written region is `storage[read..]`; every write path
/// first ensures the `Arc` is unique (`make_unique`), so outstanding
/// [`Bytes`] views split off earlier are never mutated under the reader.
pub struct BytesMut {
    storage: Arc<Vec<u8>>,
    /// Start of the live (not yet split-off / consumed) region.
    read: usize,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { storage: Arc::new(Vec::new()), read: 0 }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { storage: Arc::new(Vec::with_capacity(cap)), read: 0 }
    }

    /// Wraps an existing allocation (cleared), reusing its capacity.
    pub fn from_vec(mut v: Vec<u8>) -> Self {
        v.clear();
        BytesMut { storage: Arc::new(v), read: 0 }
    }

    /// Length of the live region.
    pub fn len(&self) -> usize {
        self.storage.len() - self.read
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ensures this writer owns its allocation exclusively: after a
    /// `split_to`/`freeze` handed views out, the live tail is copied into
    /// a fresh buffer so those views stay immutable. When no view aliases
    /// the storage this is free.
    fn make_unique(&mut self) {
        if Arc::get_mut(&mut self.storage).is_none() {
            let fresh = self.storage[self.read..].to_vec();
            self.storage = Arc::new(fresh);
            self.read = 0;
        }
    }

    /// Mutable access to the backing vec; callers must hold the unique-
    /// writer invariant (`make_unique` first).
    fn vec_mut(&mut self) -> &mut Vec<u8> {
        Arc::get_mut(&mut self.storage).expect("make_unique must precede writes")
    }

    /// Reserves room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.make_unique();
        self.vec_mut().reserve(additional);
    }

    pub fn put_slice(&mut self, src: &[u8]) {
        self.make_unique();
        self.vec_mut().extend_from_slice(src);
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.put_slice(src);
    }

    pub fn put_u8(&mut self, v: u8) {
        self.make_unique();
        self.vec_mut().push(v);
    }

    pub fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    pub fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Splits the first `n` live bytes off as an immutable [`Bytes`] view
    /// — zero-copy; the next write to `self` relocates the remaining tail
    /// instead of touching the view.
    ///
    /// # Panics
    /// When `n > self.len()`.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = Bytes { data: Arc::clone(&self.storage), off: self.read, len: n };
        self.read += n;
        head
    }

    /// Drops the first `n` live bytes (a consumed prefix no one needs).
    ///
    /// # Panics
    /// When `n > self.len()`.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.read += n;
    }

    /// Mutable access to the live region, e.g. to patch a length/checksum
    /// header after the body was written. Ensures unique ownership first,
    /// so no outstanding view can observe the mutation.
    pub fn as_mut(&mut self) -> &mut [u8] {
        self.make_unique();
        let read = self.read;
        &mut self.vec_mut()[read..]
    }

    /// Converts the whole live region into an immutable [`Bytes`] view
    /// without copying.
    pub fn freeze(self) -> Bytes {
        let len = self.len();
        Bytes { data: self.storage, off: self.read, len }
    }

    /// Clears the buffer for reuse. When no views alias the storage the
    /// allocation's capacity is kept.
    pub fn clear(&mut self) {
        if let Some(v) = Arc::get_mut(&mut self.storage) {
            v.clear();
        } else {
            self.storage = Arc::new(Vec::new());
        }
        self.read = 0;
    }
}

impl Default for BytesMut {
    fn default() -> Self {
        BytesMut::new()
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.storage[self.read..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut(len={})", self.len())
    }
}

/// A bounded freelist of retired buffer allocations.
///
/// Encode loops `acquire` a [`BytesMut`], fill it, `freeze`/`split_to`
/// views for the transport, and `recycle` views once the last reference
/// drains — the allocation (with its grown capacity) goes back on the
/// shelf instead of to the allocator.
pub struct BufferPool {
    shelf: std::sync::Mutex<Vec<Vec<u8>>>,
    max: usize,
}

impl BufferPool {
    /// A pool keeping at most `max` retired allocations.
    pub fn new(max: usize) -> Self {
        BufferPool { shelf: std::sync::Mutex::new(Vec::new()), max }
    }

    /// A writer backed by a pooled allocation when one is available.
    pub fn acquire(&self) -> BytesMut {
        match self.shelf.lock().unwrap().pop() {
            Some(v) => BytesMut::from_vec(v),
            None => BytesMut::new(),
        }
    }

    /// Attempts to reclaim a drained view's allocation. Only the *last*
    /// whole-buffer reference can be reclaimed; partial or still-aliased
    /// views are simply dropped. Returns whether the allocation was
    /// pooled.
    pub fn recycle(&self, b: Bytes) -> bool {
        let mut pooled = false;
        let accepted = b.try_unwrap(|mut v| {
            let mut shelf = self.shelf.lock().unwrap();
            if shelf.len() < self.max {
                v.clear();
                shelf.push(v);
                pooled = true;
            }
        });
        accepted && pooled
    }

    /// Buffers currently on the shelf.
    pub fn idle(&self) -> usize {
        self.shelf.lock().unwrap().len()
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool::new(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_compares() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(Bytes::copy_from_slice(&[1, 2, 3]), b);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn split_and_advance_cursor_arithmetic() {
        let mut b = Bytes::from((0u8..10).collect::<Vec<u8>>());
        let head = b.split_to(4);
        assert_eq!(&head[..], &[0, 1, 2, 3]);
        assert_eq!(&b[..], &[4, 5, 6, 7, 8, 9]);
        b.advance(2);
        assert_eq!(&b[..], &[6, 7, 8, 9]);
        let mid = b.slice(1..3);
        assert_eq!(&mid[..], &[7, 8]);
        // Degenerate cursors.
        let empty = b.split_to(0);
        assert!(empty.is_empty());
        let rest = b.split_to(b.len());
        assert_eq!(&rest[..], &[6, 7, 8, 9]);
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_past_end_panics() {
        let mut b = Bytes::from(vec![1u8, 2]);
        let _ = b.split_to(3);
    }

    #[test]
    fn bytes_mut_accumulates_and_freezes() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(0xAB);
        m.put_u32_le(0xDEAD_BEEF);
        m.put_u64_le(42);
        m.put_slice(b"xyz");
        assert_eq!(m.len(), 1 + 4 + 8 + 3);
        let frozen = m.freeze();
        assert_eq!(frozen[0], 0xAB);
        assert_eq!(&frozen[1..5], &0xDEAD_BEEFu32.to_le_bytes());
        assert_eq!(&frozen[5..13], &42u64.to_le_bytes());
        assert_eq!(&frozen[13..], b"xyz");
    }

    #[test]
    fn split_views_survive_later_writes() {
        // The aliasing property the frame encoder depends on: a frame
        // split off the encode buffer must stay intact while the encoder
        // keeps appending the next frame.
        let mut m = BytesMut::new();
        m.put_slice(b"frame-one");
        let one = m.split_to(9);
        m.put_slice(b"frame-two");
        let two = m.split_to(9);
        m.put_slice(b"garbage-overwrite-attempt");
        assert_eq!(&one[..], b"frame-one");
        assert_eq!(&two[..], b"frame-two");
    }

    #[test]
    fn bytes_mut_advance_consumes_prefix() {
        let mut m = BytesMut::new();
        m.put_slice(&[1, 2, 3, 4, 5]);
        m.advance(2);
        assert_eq!(&m[..], &[3, 4, 5]);
        let head = m.split_to(1);
        assert_eq!(&head[..], &[3]);
        assert_eq!(&m[..], &[4, 5]);
    }

    #[test]
    fn pool_recycles_only_unique_whole_buffers() {
        let pool = BufferPool::new(4);
        // Whole, unique view: reclaimed.
        let mut m = pool.acquire();
        m.put_slice(b"abcd");
        let v = m.freeze();
        assert!(pool.recycle(v));
        assert_eq!(pool.idle(), 1);
        // Aliased view: refused (clone still outstanding).
        let mut m = pool.acquire();
        assert_eq!(pool.idle(), 0, "acquire reuses the shelf");
        m.put_slice(b"efgh");
        let v = m.freeze();
        let alias = v.clone();
        assert!(!pool.recycle(v));
        // Partial view: refused even when unique.
        drop(alias);
        let mut m = pool.acquire();
        m.put_slice(b"ijkl");
        let mut v = m.freeze();
        let _head = v.split_to(2);
        assert!(!pool.recycle(v));
    }

    #[test]
    fn pool_bounds_its_shelf() {
        let pool = BufferPool::new(1);
        let a = Bytes::from(vec![1u8]);
        let b = Bytes::from(vec![2u8]);
        assert!(pool.recycle(a));
        assert!(!pool.recycle(b), "shelf full: allocation dropped");
        assert_eq!(pool.idle(), 1);
    }
}
