//! Offline stand-in for the `bytes` crate.
//!
//! `Bytes` here is an `Arc<[u8]>`: cheap `Clone` (refcount bump), `Deref`
//! to `[u8]`, and the constructors the repo uses (`From<Vec<u8>>`,
//! `copy_from_slice`). No split/advance cursor API — nothing in the repo
//! needs zero-copy slicing yet.

use std::sync::Arc;

#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.data == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_compares() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(Bytes::copy_from_slice(&[1, 2, 3]), b);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }
}
