//! Offline stand-in for `serde_derive`.
//!
//! Real serde_derive rides on `syn`/`quote`, neither of which is
//! available offline, so this parses the item's token stream by hand.
//! It supports what the workspace actually derives on: non-generic
//! structs (named, tuple, unit) and enums (unit, tuple, named-field
//! variants), with no `#[serde(...)]` attributes. Anything fancier gets
//! a `compile_error!` pointing here rather than silently-wrong codegen.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut toks = input.into_iter().peekable();
    // Outer attributes and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            return Err(format!("generic type {name} is not supported by the offline serde_derive shim"));
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unexpected struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("unexpected enum body: {other:?}")),
            };
            Ok(Item::Enum { name, variants: parse_variants(body)? })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Parses `{ field: Type, ... }` bodies, returning field names. Types are
/// skipped with `<`/`>` depth tracking so commas inside generics don't
/// split fields.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip field attributes (doc comments) and visibility.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match toks.next() {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        }
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, got {other:?}")),
        }
        // Skip the type up to a top-level comma.
        let mut angle_depth = 0i32;
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle_depth += 1;
                    toks.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    toks.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    toks.next();
                    break;
                }
                Some(_) => {
                    toks.next();
                }
                None => break,
            }
        }
    }
    Ok(names)
}

/// Counts fields in a tuple struct/variant body by top-level commas.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle_depth = 0i32;
    let mut saw_tokens = false;
    for tok in body {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        count += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip variant attributes (doc comments).
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                toks.next();
            } else {
                break;
            }
        }
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream())?;
                toks.next();
                Fields::Named(names)
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            other => return Err(format!("expected `,` between variants, got {other:?}")),
        }
    }
    Ok(variants)
}

fn serialize_impl(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::value::Value::Map(vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let entries: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::value::Value::Seq(vec![{}])", entries.join(", "))
                }
                Fields::Unit => {
                    format!("::serde::value::Value::Str(\"{name}\".to_string())")
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::value::Value {{ {body} }}\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::value::Value::Str(\"{vn}\".to_string())"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!(
                                    "::serde::value::Value::Seq(vec![{}])",
                                    items.join(", ")
                                )
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::value::Value::Map(vec![(\"{vn}\".to_string(), {inner})])",
                                binds.join(", ")
                            )
                        }
                        Fields::Named(field_names) => {
                            let binds = field_names.join(", ");
                            let entries: Vec<String> = field_names
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::value::Value::Map(vec![(\"{vn}\".to_string(), ::serde::value::Value::Map(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::value::Value {{\
                         match self {{ {} }}\
                     }}\
                 }}",
                arms.join(", ")
            )
        }
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => serialize_impl(&item).parse().expect("generated Serialize impl parses"),
        Err(msg) => format!("compile_error!(\"serde_derive shim: {msg}\");")
            .parse()
            .expect("error token stream parses"),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(Item::Struct { name, .. }) | Ok(Item::Enum { name, .. }) => {
            format!("impl ::serde::Deserialize for {name} {{}}")
                .parse()
                .expect("generated Deserialize impl parses")
        }
        Err(msg) => format!("compile_error!(\"serde_derive shim: {msg}\");")
            .parse()
            .expect("error token stream parses"),
    }
}
