//! Offline stand-in for the `serde` crate.
//!
//! Serialization here goes through a single JSON-shaped [`value::Value`]
//! tree rather than serde's visitor machinery: `Serialize::to_value`
//! builds the tree, `serde_json` renders it. `Deserialize` exists so
//! derives compile; nothing in the repo deserializes yet, so it carries
//! no methods. The `derive` feature re-exports the companion proc-macros,
//! mirroring real serde's layout.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    /// A JSON-shaped value tree. `Map` keeps insertion order so rendered
    /// output is stable across runs.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        I64(i64),
        U64(u64),
        F64(f64),
        Str(String),
        Seq(Vec<Value>),
        Map(Vec<(String, Value)>),
    }
}

use value::Value;

pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Marker trait backing `#[derive(Deserialize)]`; no repo code parses
/// serialized data back yet, so there is nothing to implement.
pub trait Deserialize: Sized {}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_ser_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f32 {}
impl Deserialize for f64 {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

/// Maps become JSON objects; non-string keys are rendered through their
/// serialized form (JSON has no non-string keys, same flattening real
/// serde_json applies to integer keys).
fn key_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::Bool(b) => b.to_string(),
        Value::I64(n) => n.to_string(),
        Value::U64(n) => n.to_string(),
        Value::F64(n) => n.to_string(),
        Value::Null => "null".to_string(),
        Value::Seq(items) => {
            let parts: Vec<String> = items.iter().map(key_string).collect();
            format!("({})", parts.join(","))
        }
        Value::Map(entries) => {
            let parts: Vec<String> =
                entries.iter().map(|(k, v)| format!("{k}:{}", key_string(v))).collect();
            format!("{{{}}}", parts.join(","))
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter().map(|(k, v)| (key_string(&k.to_value()), v.to_value())).collect(),
        )
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
