//! Offline stand-in for `serde_json`: pretty/compact JSON rendering of
//! the serde shim's [`Value`] tree.

pub use serde::value::Value;

#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // Match serde_json: integral floats render with ".0".
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{n:.1}"));
                } else {
                    out.push_str(&n.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => write_compound(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1)
        }),
        Value::Map(entries) => {
            write_compound(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, val) = &entries[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_pretty() {
        let v = Value::Map(vec![
            ("name".to_string(), Value::Str("fig10".to_string())),
            (
                "xs".to_string(),
                Value::Seq(vec![Value::I64(1), Value::F64(2.5), Value::F64(3.0)]),
            ),
            ("ok".to_string(), Value::Bool(true)),
        ]);
        let s = to_string_pretty(&SerWrap(v)).unwrap();
        assert_eq!(
            s,
            "{\n  \"name\": \"fig10\",\n  \"xs\": [\n    1,\n    2.5,\n    3.0\n  ],\n  \"ok\": true\n}"
        );
    }

    struct SerWrap(Value);

    impl serde::Serialize for SerWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
