//! Property-based tests (proptest) on the core invariants.

use proptest::prelude::*;
use traffic_insight::cep::{Engine, Event, EventType, FieldType};
use traffic_insight::core::latency::PolyModel;
use traffic_insight::core::partitioning::{partition_rule, RegionRate};
use traffic_insight::geo::{GeoPoint, QuadtreeConfig, RegionQuadtree, DUBLIN_BBOX};
use traffic_insight::traffic::csv::{from_csv_line, to_csv_line};
use traffic_insight::traffic::BusTrace;

fn dublin_point() -> impl Strategy<Value = GeoPoint> {
    (
        DUBLIN_BBOX.min_lat..DUBLIN_BBOX.max_lat,
        DUBLIN_BBOX.min_lon..DUBLIN_BBOX.max_lon,
    )
        .prop_map(|(lat, lon)| GeoPoint::new_unchecked(lat, lon))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quadtree: every in-bounds point maps to exactly one leaf, and the
    /// layer lookup always returns an ancestor of that leaf.
    #[test]
    fn quadtree_point_location(
        seeds in prop::collection::vec(dublin_point(), 1..80),
        probes in prop::collection::vec(dublin_point(), 1..40),
        cap in 1usize..8,
    ) {
        let tree = RegionQuadtree::build(
            DUBLIN_BBOX,
            &seeds,
            QuadtreeConfig { max_points_per_region: cap, max_depth: 8 },
        ).unwrap();
        for p in &probes {
            let leaf = tree.locate_leaf(p).expect("in bounds");
            prop_assert!(leaf.is_leaf());
            prop_assert!(leaf.bbox.contains_inclusive(p));
            // Exactly one leaf contains the point (half-open tiling).
            let containing = tree.leaves().iter().filter(|l| l.bbox.contains(p)).count();
            prop_assert!(containing <= 1);
            // The chain is consistent.
            let chain = tree.locate_all_layers(p);
            prop_assert_eq!(chain.last().unwrap().id, leaf.id);
            for w in chain.windows(2) {
                prop_assert_eq!(w[1].parent, Some(w[0].id));
            }
        }
    }

    /// Algorithm 1: every region assigned exactly once, and the heaviest
    /// engine carries at most (ideal average + heaviest single region) —
    /// the classic greedy-balancing bound.
    #[test]
    fn partition_balance_bound(
        rates in prop::collection::vec(0.1f64..1000.0, 1..120),
        engines in 1usize..12,
    ) {
        let regions: Vec<RegionRate> = rates
            .iter()
            .enumerate()
            .map(|(i, &rate)| RegionRate { region: format!("R{i}"), rate })
            .collect();
        let p = partition_rule(&regions, engines).unwrap();
        // Exactly-once assignment.
        let assigned: usize = p.assignments.iter().map(Vec::len).sum();
        prop_assert_eq!(assigned, regions.len());
        // Rates accounted for.
        let total: f64 = rates.iter().sum();
        let sum: f64 = p.rates.iter().sum();
        prop_assert!((sum - total).abs() < 1e-6 * total.max(1.0));
        // Greedy bound.
        let ideal = total / engines as f64;
        let max_region = rates.iter().cloned().fold(0.0, f64::max);
        let max_engine = p.rates.iter().cloned().fold(0.0, f64::max);
        prop_assert!(
            max_engine <= ideal + max_region + 1e-9,
            "max engine {} exceeds ideal {} + max region {}", max_engine, ideal, max_region
        );
    }

    /// Polynomial regression recovers exact linear data, regardless of the
    /// coefficients.
    #[test]
    fn polyfit_recovers_linear_models(
        c0 in -100.0f64..100.0,
        c1 in -10.0f64..10.0,
        c2 in -10.0f64..10.0,
    ) {
        let mut samples = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                let (x1, x2) = (i as f64 * 3.0, j as f64 * 7.0);
                samples.push((vec![x1, x2], c0 + c1 * x1 + c2 * x2));
            }
        }
        let m = PolyModel::fit(&samples, 1).unwrap();
        prop_assert!(m.mean_abs_error(&samples).unwrap() < 1e-6);
        let probe = m.predict(&[50.0, 50.0]).unwrap();
        let truth = c0 + c1 * 50.0 + c2 * 50.0;
        prop_assert!((probe - truth).abs() < 1e-5 * (1.0 + truth.abs()));
    }

    /// Bus trace CSV round-trips for arbitrary in-range values.
    #[test]
    fn trace_csv_round_trip(
        ts in 0u64..2_000_000_000,
        line in 0u32..100,
        direction in any::<bool>(),
        p in dublin_point(),
        delay in -600.0f64..3600.0,
        congestion in any::<bool>(),
        stop in prop::option::of(0u32..10_000),
        at_stop in any::<bool>(),
        vehicle in 0u32..50_000,
    ) {
        let t = BusTrace {
            timestamp_ms: ts,
            line_id: line,
            direction,
            position: p,
            delay_s: delay,
            congestion,
            reported_stop: stop,
            at_stop,
            vehicle_id: vehicle,
        };
        let parsed = from_csv_line(&to_csv_line(&t), 1).unwrap();
        prop_assert_eq!(parsed.timestamp_ms, t.timestamp_ms);
        prop_assert_eq!(parsed.line_id, t.line_id);
        prop_assert_eq!(parsed.direction, t.direction);
        prop_assert_eq!(parsed.reported_stop, t.reported_stop);
        prop_assert_eq!(parsed.vehicle_id, t.vehicle_id);
        prop_assert!((parsed.delay_s - t.delay_s).abs() < 0.01);
        prop_assert!((parsed.position.lat - t.position.lat).abs() < 1e-5);
        prop_assert!((parsed.position.lon - t.position.lon).abs() < 1e-5);
    }

    /// CEP length windows: after any event sequence, a `win:length(n)`
    /// statement's count never exceeds n per group, and the reported
    /// average equals the true average over the last n values of the
    /// group.
    #[test]
    fn cep_window_average_matches_reference(
        values in prop::collection::vec((0u8..3, -100.0f64..100.0), 1..60),
        n in 1usize..8,
    ) {
        let mut engine = Engine::new();
        engine.register_type(EventType::with_fields(
            "s",
            &[("location", FieldType::Str), ("v", FieldType::Float)],
        ).unwrap()).unwrap();
        let results = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let sink = results.clone();
        engine.create_statement(
            &format!(
                "SELECT w.location AS location, avg(w.v) AS m, count(*) AS n \
                 FROM s.std:groupwin(location).win:length({n}) AS w GROUP BY w.location"
            ),
            Box::new(move |_, rows| {
                for r in rows {
                    sink.lock().push((
                        r.get("location").unwrap().to_string(),
                        r.get("m").unwrap().as_f64().unwrap(),
                        r.get("n").unwrap().as_f64().unwrap(),
                    ));
                }
            }),
        ).unwrap();
        let ty = engine.event_type("s").unwrap().clone();
        let mut reference: std::collections::HashMap<String, Vec<f64>> = Default::default();
        for (i, (loc, v)) in values.iter().enumerate() {
            let loc = format!("L{loc}");
            engine.send_event(Event::from_pairs(
                &ty,
                i as u64,
                &[("location", loc.as_str().into()), ("v", (*v).into())],
            ).unwrap()).unwrap();
            reference.entry(loc.clone()).or_default().push(*v);

            let got = results.lock().pop().expect("one result per event");
            results.lock().clear();
            let window = reference.get(&loc).unwrap();
            let tail: Vec<f64> = window.iter().rev().take(n).cloned().collect();
            let want = tail.iter().sum::<f64>() / tail.len() as f64;
            prop_assert_eq!(&got.0, &loc);
            prop_assert!((got.1 - want).abs() < 1e-9, "avg {} vs {}", got.1, want);
            prop_assert!(got.2 as usize <= n, "count exceeds window");
        }
    }
}
