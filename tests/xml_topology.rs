//! Integration: the XML topology front end (Section 3.2) driving the
//! start-up optimizer — "the user must submit only a spout for specifying
//! the input source along with the rules she wishes to execute".

use traffic_insight::core::system::{SystemConfig, TrafficSystem};
use traffic_insight::dsps::parse_topology_xml;
use traffic_insight::geo::DUBLIN_BBOX;
use traffic_insight::traffic::{FleetConfig, FleetGenerator, HOUR_MS};

const XML: &str = r#"<?xml version="1.0"?>
<topology name="dublin-traffic">
  <spout name="busReader" type="BusReaderSpout" tasks="2"/>
  <bolt name="preprocess" type="PreProcessBolt" tasks="2">
    <subscribe source="busReader" grouping="fields" key="vehicle"/>
  </bolt>
  <bolt name="esper" type="EsperBolt" tasks="4">
    <subscribe source="preprocess" grouping="direct"/>
  </bolt>
  <rules>
    <rule>delay:leaves:10:1.5</rule>
    <rule>delay:stops:10</rule>
    <rule>speed:leaves:100</rule>
  </rules>
</topology>"#;

#[test]
fn xml_rules_drive_the_startup_optimizer() {
    let spec = parse_topology_xml(XML).unwrap();
    assert_eq!(spec.name, "dublin-traffic");
    assert_eq!(spec.bolts.len(), 2);

    let mut rules = TrafficSystem::rules_from_xml_spec(&spec).unwrap();
    assert_eq!(rules.len(), 3);
    assert_eq!(rules[0].weight, 1.5);
    // Higher sensitivity keeps the test focused on plumbing, not noise.
    for r in &mut rules {
        r.s = 2.5;
    }

    let fleet = FleetConfig { buses: 20, lines: 5, seed: 7, ..FleetConfig::default() };
    let gen = FleetGenerator::new(fleet, 0).unwrap();
    let seeds = gen.route_seed_points();
    let history: Vec<_> = gen.take_while(|t| t.timestamp_ms < 9 * HOUR_MS).collect();
    let system =
        TrafficSystem::bootstrap(DUBLIN_BBOX, &seeds, &history, SystemConfig::default()).unwrap();

    // Engines follow the XML's esper task count.
    let esper_tasks = spec.bolts.iter().find(|b| b.name == "esper").unwrap().parallelism.tasks;
    let plan = system.startup_plan(&rules, esper_tasks).unwrap();
    assert_eq!(plan.allocation.engines.iter().sum::<usize>(), 4);
    // Every rule appears in at least one engine's plan.
    for rule in &rules {
        let present = plan
            .engine_plan
            .per_engine
            .iter()
            .flatten()
            .any(|(spec, locations)| spec.name == rule.name && !locations.is_empty());
        assert!(present, "rule {} missing from the engine plan", rule.name);
    }
}

#[test]
fn malformed_xml_rules_are_rejected() {
    let bad = r#"<topology name="t">
      <spout name="s" type="T"/>
      <rules><rule>delay:everywhere:10</rule></rules>
    </topology>"#;
    let spec = parse_topology_xml(bad).unwrap();
    assert!(TrafficSystem::rules_from_xml_spec(&spec).is_err());
}
