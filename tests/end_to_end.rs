//! Cross-crate integration: the full Figure 3 pipeline through the
//! `traffic-insight` facade — fleet generator → off-line computation
//! (quadtree, stops, MapReduce statistics) → start-up optimization →
//! Figure 8 topology on the threaded DSPS → detections in the storage
//! medium.

use traffic_insight::core::rules::{LocationSelector, RuleSpec};
use traffic_insight::core::system::{AllocationStrategy, SystemConfig, TrafficSystem};
use traffic_insight::core::thresholds::RetrievalMethod;
use traffic_insight::geo::DUBLIN_BBOX;
use traffic_insight::traffic::{
    Attribute, BusTrace, FleetConfig, FleetGenerator, Incident, DAY_MS, HOUR_MS,
};

fn fleet() -> FleetConfig {
    FleetConfig { buses: 24, lines: 6, seed: 99, ..FleetConfig::default() }
}

fn history() -> (Vec<BusTrace>, Vec<traffic_insight::geo::GeoPoint>) {
    let g = FleetGenerator::new(fleet(), 0).unwrap();
    let seeds = g.route_seed_points();
    let traces: Vec<BusTrace> = g.take_while(|t| t.timestamp_ms < 10 * HOUR_MS).collect();
    (traces, seeds)
}

fn rules(s: f64) -> Vec<RuleSpec> {
    let mut leaves =
        RuleSpec::new("delay-leaves", Attribute::Delay, LocationSelector::QuadtreeLeaves, 10);
    leaves.s = s;
    let mut stops = RuleSpec::new("delay-stops", Attribute::Delay, LocationSelector::BusStops, 10);
    stops.s = s;
    vec![leaves, stops]
}

fn live_day_with_incident() -> Vec<BusTrace> {
    let probe = FleetGenerator::new(fleet(), 1).unwrap();
    let route = &probe.routes()[0];
    let center = route.points[route.points.len() / 2];
    let incident = Incident {
        center,
        radius_m: 1500.0,
        start_ms: DAY_MS + 7 * HOUR_MS,
        end_ms: DAY_MS + 9 * HOUR_MS,
        severity: 0.04,
    };
    FleetGenerator::with_incidents(fleet(), 1, vec![incident])
        .unwrap()
        .take_while(|t| t.timestamp_ms < DAY_MS + 9 * HOUR_MS)
        .collect()
}

#[test]
fn incident_detections_flow_to_storage() {
    let (history, seeds) = history();
    let system =
        TrafficSystem::bootstrap(DUBLIN_BBOX, &seeds, &history, SystemConfig::default()).unwrap();
    let (plan, report) = system.plan_and_run(live_day_with_incident(), &rules(2.5), 4).unwrap();

    assert_eq!(plan.engine_plan.engines(), 4);
    assert!(!report.detections.is_empty(), "the incident must surface");
    // Detections live in the storage medium too (EventsStorer bolt).
    let stored = system.store.with_table("detected_events", |t| t.len()).unwrap();
    assert_eq!(stored, report.detections.len());
    // Incident-window detections dominate the pre-incident background.
    let in_window = report
        .detections
        .iter()
        .filter(|d| d.timestamp_ms >= DAY_MS + 7 * HOUR_MS)
        .count();
    assert!(
        in_window * 2 > report.detections.len(),
        "incident window holds the majority: {in_window}/{}",
        report.detections.len()
    );
    // Pipeline conservation: every spout tuple passed through preprocess.
    // (Spouts count *emissions*; bolts count processed tuples.)
    let get = |c: &str| {
        report
            .metrics
            .iter()
            .find(|m| m.component == c)
            .map(|m| m.throughput)
            .unwrap_or(0)
    };
    let reader = report.metrics.iter().find(|m| m.component == "busReader").unwrap();
    assert_eq!(reader.throughput, 0, "spouts have no process() path to count");
    assert_eq!(reader.emitted, get("preprocess"));
    assert_eq!(get("preprocess"), get("areaTracker"));
    assert_eq!(get("areaTracker"), get("busStopsTracker"));
    assert_eq!(get("eventsStorer"), report.detections.len() as u64);
}

/// The ISSUE acceptance scenario: a chaos-enabled run (light preset) with
/// tracing on must report per-component end-to-end percentiles and queue
/// gauges, and the Esper component must emit a predicted-vs-observed
/// drift ratio exportable as JSON Lines.
#[test]
fn chaos_run_with_tracing_reports_latency_and_drift() {
    use traffic_insight::sim::{ChaosSpec, MonitorSpec};

    let chaos = ChaosSpec::light();
    let monitor = MonitorSpec::traced(500);
    let (history, seeds) = history();
    let config = SystemConfig {
        monitor: Some(monitor.monitor_config()),
        reliability: Some(chaos.reliability_config()),
        chaos: Some(chaos.fault_config()),
        ..SystemConfig::default()
    };
    let system = TrafficSystem::bootstrap(DUBLIN_BBOX, &seeds, &history, config).unwrap();
    let live: Vec<BusTrace> = live_day_with_incident().into_iter().take(6000).collect();
    let (_, report) = system.plan_and_run(live, &rules(2.5), 3).unwrap();

    // End-to-end latency: reliability mode records one completion per
    // acked root at the spout, with ordered percentiles.
    let reader = report.metrics.iter().find(|m| m.component == "busReader").unwrap();
    assert!(reader.acked > 0);
    assert_eq!(
        reader.e2e.count(),
        reader.acked,
        "one completion latency per acked root"
    );
    let (p50, p95, p99) =
        (reader.e2e.p50().unwrap(), reader.e2e.p95().unwrap(), reader.e2e.p99().unwrap());
    assert!(p50 <= p95 && p95 <= p99, "percentiles must be ordered: {p50:?} {p95:?} {p99:?}");

    // Queue gauges: every bolt's input channel reports its capacity.
    let esper = report.metrics.iter().find(|m| m.component == "esper").unwrap();
    assert!(esper.queue_capacity > 0, "tracing registers queue gauges");

    // Drift: the Figure 7 prediction tracked against observed windows,
    // exported as JSONL.
    assert!(!report.drift.is_empty(), "tracing runs emit drift samples");
    for d in &report.drift {
        assert!(d.ratio.is_finite() && d.ratio > 0.0, "bad ratio: {d:?}");
    }
    let jsonl = report.drift_jsonl();
    assert_eq!(jsonl.lines().count(), report.drift.len());
    assert!(jsonl.lines().all(|l| l.starts_with('{') && l.contains("\"ratio\":")));
}

/// The retrieval methods implement one semantics: fed the *same ordered*
/// trace stream (single engine, no thread interleaving), threshold-stream
/// and multiple-rules must fire identically. (At topology level arrival
/// order is nondeterministic across runs, so exact equality is only
/// well-defined here.)
#[test]
fn threshold_stream_and_multiple_rules_detect_identically() {
    use traffic_insight::core::offline;
    use traffic_insight::core::thresholds::RuleEngine;
    use traffic_insight::traffic::Preprocessor;

    let (history, seeds) = history();
    let config = SystemConfig::default();
    let system = TrafficSystem::bootstrap(DUBLIN_BBOX, &seeds, &history, config).unwrap();
    let spatial = &system.artifacts.spatial;
    let store = system.artifacts.thresholds.clone();

    // One engine monitoring everything, same enriched stream, two methods.
    let monitored: Vec<String> = spatial
        .resolve(&LocationSelector::QuadtreeLeaves)
        .into_iter()
        .chain(spatial.resolve(&LocationSelector::BusStops))
        .collect();
    let run = |method: RetrievalMethod| {
        let mut engine = RuleEngine::new(method, store.clone(), None);
        for rule in rules(2.5) {
            engine.install_rule(&rule, monitored.iter().cloned()).unwrap();
        }
        let sink = engine.detections();
        let mut pre = Preprocessor::new();
        for t in live_day_with_incident().into_iter().take(6000) {
            let e = offline::enrich(&mut pre, spatial, t);
            engine.send_trace(&e).unwrap();
        }
        let out = sink.lock().clone();
        out
    };
    let stream = run(RetrievalMethod::ThresholdStream);
    let multi = run(RetrievalMethod::MultipleRules);
    assert!(!stream.is_empty(), "rules must fire on the incident");
    let key = |d: &traffic_insight::core::thresholds::Detection| {
        (d.rule.clone(), d.location.clone(), d.timestamp_ms)
    };
    let a: Vec<_> = stream.iter().map(key).collect();
    let b: Vec<_> = multi.iter().map(key).collect();
    assert_eq!(a, b, "methods disagree on detections");
}

#[test]
fn round_robin_and_proposed_strategies_both_run() {
    let (history, seeds) = history();
    let live: Vec<BusTrace> = live_day_with_incident()
        .into_iter()
        .take(4000)
        .collect();
    for strategy in [AllocationStrategy::Proposed, AllocationStrategy::RoundRobin] {
        let config = SystemConfig { strategy, ..SystemConfig::default() };
        let system = TrafficSystem::bootstrap(DUBLIN_BBOX, &seeds, &history, config).unwrap();
        let plan = system.startup_plan(&rules(2.5), 4).unwrap();
        assert_eq!(plan.allocation.engines.iter().sum::<usize>(), 4);
        let report = system.run(live.clone(), &plan, None).unwrap();
        let esper = report.metrics.iter().find(|m| m.component == "esper").unwrap();
        assert!(esper.throughput > 0, "{strategy:?}: esper saw traffic");
    }
}

#[test]
fn recompute_statistics_republishes_thresholds() {
    let (history, seeds) = history();
    let mut system =
        TrafficSystem::bootstrap(DUBLIN_BBOX, &seeds, &history, SystemConfig::default()).unwrap();
    let q = traffic_insight::storage::ThresholdQuery { attribute: "delay".into(), s: 1.0 };
    let before = system.artifacts.thresholds.thresholds(&q).unwrap();
    assert!(!before.is_empty());
    // Fresh history from a different day refreshes the snapshot.
    let fresh: Vec<BusTrace> = FleetGenerator::new(fleet(), 2)
        .unwrap()
        .take_while(|t| t.timestamp_ms < 2 * DAY_MS + 10 * HOUR_MS)
        .collect();
    system.recompute_statistics(&fresh).unwrap();
    let after = system.artifacts.thresholds.thresholds(&q).unwrap();
    assert!(!after.is_empty());
    assert_ne!(before, after, "a different day produces different statistics");
}
