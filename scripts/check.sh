#!/usr/bin/env bash
# Full local gate: release build, workspace tests, strict clippy.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
