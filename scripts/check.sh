#!/usr/bin/env bash
# Full local gate: release build, workspace tests, strict clippy.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
# --workspace: with a root [package] present, a bare `cargo test` would
# only run the root crate's suites.
cargo test -q --workspace
# The chaos integration suite is the reliability layer's acceptance bar:
# seeded panics + drops with recovery on must reproduce the failure-free
# output after dedup (see crates/dsps/tests/reliability.rs).
cargo test -p tms-dsps --test reliability
# The observability suite is the tracing layer's acceptance bar: e2e
# completion histograms in both delivery modes, queue gauges under
# backlog, and prompt monitor shutdown (see crates/dsps/tests/observability.rs).
cargo test -p tms-dsps --test observability
# The profiling suite is the profiler/exposition layer's acceptance bar:
# profile sources flowing into sampled windows as deltas, and the loopback
# scrape endpoint serving Prometheus text + JSON mid-run
# (see crates/dsps/tests/profiling.rs).
cargo test -p tms-dsps --test profiling
# The batching suite is the micro-batched data plane's acceptance bar:
# batched delivery must reproduce per-tuple output exactly across every
# grouping, compose with chaos recovery, keep tuple-granular metrics, and
# drain unconditionally at EOS (see crates/dsps/tests/batching.rs).
cargo test -p tms-dsps --test batching
# The sharing suite is the shared-evaluation planner's acceptance bar:
# cluster formation, rule churn against shared state, cost rejections,
# profile accounting, and mid-stream toggles (see crates/cep/tests/sharing.rs),
# plus the differential property that shared ≡ unshared ≡ rescan.
cargo test -p tms-cep --test sharing --test differential
# The elastic suite is the re-partitioning control loop's acceptance bar:
# a hotspot stream must trigger live migrations without a restart, a
# migrated run must equal a never-migrated one exactly, and chaos-mode
# migrations must recover under at-least-once (see crates/dsps/tests/elastic.rs).
cargo test -p tms-dsps --test elastic
# The recovery suite is the durability layer's acceptance bar: CRC-framed
# snapshot+changelog round-trips, torn-tail truncation, compaction at
# snapshot, and a killed-and-restarted topology resuming byte-identical
# to an uninterrupted run (see crates/dsps/tests/recovery.rs).
cargo test -p tms-dsps --test recovery
# The lineage suite is the causal observability layer's acceptance bar:
# critical-path attribution naming a deliberately throttled bolt, tuple
# trees staying connected across restart+replay, concurrent scrapes of
# every route surviving hanging clients, and a dark /trace when lineage
# is off (see crates/dsps/tests/lineage.rs).
cargo test -p tms-dsps --test lineage
# The distributed suite is the multi-process runtime's acceptance bar:
# 2-worker batched == per-tuple parity across every grouping, at-least-once
# recovery over a lossy TCP link, supervised restart and migration installs
# crossing the process boundary, a 3-worker mesh chain, and remote counters
# in the merged scrape (see crates/dsps/tests/distributed.rs).
cargo test -p tms-dsps --test distributed
# The kappa/determinism bar lives in tms-core: in-stream statistics
# matching the batch job, batched == per-tuple detection parity under
# multi-task parallelism, resequencer ordering, and threshold ages
# surviving supervised restarts under chaos.
cargo test -p tms-core -- kappa resequencer batched_run_detects durable_restarts
# Smoke-mode perf guard: the 10-rule Table 6 workload in shared mode must
# stay within 2x of the committed snapshot's ms/tuple.
cargo run --release -p tms-bench --bin experiments -- bench_guard
# Staleness guard: the committed BENCH_staleness.json must show kappa-path
# threshold staleness <=100ms p99 against batch-period minutes on the
# ablation, and a live kappa re-run must stay refresh-bounded.
cargo run --release -p tms-bench --bin experiments -- staleness_guard
# Elastic acceptance guard: the committed BENCH_rebalance.json must record
# >=1 completed migration with post-rebalance imbalance under the bound,
# and a live re-run must reproduce both.
cargo run --release -p tms-bench --bin experiments -- rebalance_guard
# Lineage overhead guard: the committed BENCH_trace_overhead.json must
# show a <=10% tax for the default 1% sample and a lineage-off data plane
# within noise of the monitor-off baseline; a live smoke re-run must keep
# the sampled hot path cheap.
cargo run --release -p tms-bench --bin experiments -- lineage_guard
# Scale-out guard: the committed BENCH_scaleout.json must carry rows for
# 1/2/4 workers with tuples conserved at every scale (and >=3x at 4
# workers when it was taken on a >=4-core box); a live 2-worker smoke run
# must deliver every tuple across the process boundary.
cargo run --release -p tms-bench --bin experiments -- scaleout_guard
cargo clippy --workspace -- -D warnings
